"""E23 — Pipelined epoch-ordered parallelism: scaling and identity.

Extension experiment (beyond the paper, towards the ROADMAP's
"as fast as the hardware allows" north star): measures the
``PipelinedPartitionedEngine`` — columnar batches routed to long-lived
workers, output released in sealed-epoch order — against the two
in-tree references:

* the serial ``PartitionedEngine`` (the semantics oracle: the pipeline
  must reproduce its flat emission sequence **exactly**, at every
  worker count and disorder rate);
* the E16 barrier ``ParallelPartitionedEngine`` (the close-time pool
  design the pipeline supersedes: no output until end-of-stream, one
  pickle of every partition's full event backlog per close).

Expected shape: the pipeline streams sealed matches mid-run (arrival
latency far below the barrier engine's end-of-stream cliff) and its
throughput scales with workers on multi-core hosts.  On a single-CPU
host — or under the GIL with the thread backend — speedup hovers near
1x and the table reports that honestly; the **identity claim is
asserted unconditionally** in every cell, the **speedup claim only on
hosts with >= 8 CPUs** (recorded in the JSON either way).

Claims (the CI ``--check`` gate):

* every (workers, disorder) cell's ordered match-key sequence is
  byte-identical to the serial oracle's (``identity_violations == 0``);
* ``workers=1`` is the serial engine (same sequence, same stats path);
* on hosts with >= 8 CPUs, the pipeline at 8 workers beats the barrier
  engine at 8 workers by >= 3x wall time.

Writes ``BENCH_e23.json`` at the repo root (machine-readable) next to
the rendered table under ``benchmarks/results/``.

CLI: ``python benchmarks/bench_e23_pipeline_scaling.py [--quick] [--check]``.
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

import pytest

from repro import ParallelPartitionedEngine, PartitionedEngine, PipelinedPartitionedEngine
from repro.metrics import render_table
from repro.streams import NoDisorder, RandomDelayModel
from repro.workloads import SyntheticWorkload

from common import write_result

EVENTS = 6000
MAX_DELAY = 40
DISORDER_RATES = [0.0, 0.2, 0.4]
WORKER_COUNTS = [1, 2, 4, 8]
REPEATS = 3
SPEEDUP_WORKERS = 8  # the barrier-vs-pipeline claim is pinned here
SPEEDUP_MIN_CPUS = 8  # ... and only asserted on hosts this wide
JSON_PATH = Path(__file__).parent.parent / "BENCH_e23.json"


def _arrival(rate: float, events: int = EVENTS):
    disorder = (
        NoDisorder() if rate == 0.0 else RandomDelayModel(rate, MAX_DELAY, seed=3)
    )
    workload = SyntheticWorkload(
        query_length=3,
        event_count=events,
        within=40,
        partitions=8,
        disorder=disorder,
        seed=4,
    )
    __, arrival = workload.generate()
    return workload.query, arrival


def _key_sequence(engine, arrival):
    """Feed per-event (the streaming discipline), return the ordered
    match-key sequence plus wall time and how many matches surfaced
    before close (the pipeline's mid-run streaming evidence)."""
    start = time.perf_counter()
    streamed = 0
    keys = []
    for event in arrival:
        for match in engine.feed(event):
            keys.append(match.key())
            streamed += 1
    for match in engine.close():
        keys.append(match.key())
    seconds = time.perf_counter() - start
    return keys, seconds, streamed


def _canonical(keys) -> bytes:
    """The byte form the identity claim compares (order-sensitive)."""
    return repr(keys).encode("utf-8")


def _best(build, arrival, repeats):
    best = None
    for _ in range(repeats):
        keys, seconds, streamed = _key_sequence(build(), arrival)
        if best is None or seconds < best[1]:
            best = (keys, seconds, streamed)
    return best


def run_experiment(quick: bool = False) -> str:
    events = 1500 if quick else EVENTS
    rates = [0.3] if quick else DISORDER_RATES
    worker_counts = [1, 2] if quick else WORKER_COUNTS
    backend = "thread" if quick else "process"
    repeats = 1 if quick else REPEATS

    cells = []
    barrier_rows = []
    identity_violations = 0
    for rate in rates:
        query, arrival = _arrival(rate, events)
        oracle_keys, serial_s, _ = _best(
            lambda: PartitionedEngine(query, k=MAX_DELAY), arrival, repeats
        )
        oracle_bytes = _canonical(oracle_keys)
        for workers in worker_counts:
            keys, seconds, streamed = _best(
                lambda: PipelinedPartitionedEngine(
                    query, k=MAX_DELAY, workers=workers, backend=backend
                ),
                arrival,
                repeats,
            )
            identical = _canonical(keys) == oracle_bytes
            if not identical:
                identity_violations += 1
            cells.append(
                {
                    "disorder_rate": rate,
                    "workers": workers,
                    "backend": "serial" if workers == 1 else backend,
                    "seconds": round(seconds, 4),
                    "events_per_sec": int(len(arrival) / seconds),
                    "speedup_vs_serial": round(serial_s / seconds, 2),
                    "streamed_before_close": streamed,
                    "matches": len(keys),
                    "identical_to_serial": identical,
                }
            )
        # Barrier reference at the claim's worker count (or the sweep's
        # widest in quick mode): same arrival, same backend family.
        barrier_workers = (
            SPEEDUP_WORKERS if SPEEDUP_WORKERS in worker_counts else worker_counts[-1]
        )
        barrier_best = None
        for _ in range(repeats):
            engine = ParallelPartitionedEngine(
                query, k=MAX_DELAY, workers=barrier_workers, backend=backend
            )
            start = time.perf_counter()
            engine.run(list(arrival))
            barrier_s = time.perf_counter() - start
            if barrier_best is None or barrier_s < barrier_best:
                barrier_best = barrier_s
        pipeline_s = next(
            c["seconds"] for c in cells
            if c["disorder_rate"] == rate and c["workers"] == barrier_workers
        )
        barrier_rows.append(
            {
                "disorder_rate": rate,
                "workers": barrier_workers,
                "barrier_seconds": round(barrier_best, 4),
                "pipeline_seconds": pipeline_s,
                "pipeline_vs_barrier": round(barrier_best / pipeline_s, 2),
            }
        )

    payload = {
        "experiment": "e23_pipeline_scaling",
        "quick": quick,
        "cpu_count": os.cpu_count() or 1,
        "workload": {
            "events": events,
            "disorder_rates": rates,
            "max_delay": MAX_DELAY,
            "k": MAX_DELAY,
            "within": 40,
            "partitions": 8,
        },
        "backend": backend,
        "identity_violations": identity_violations,
        "cells": cells,
        "barrier": barrier_rows,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    text = render_table(
        f"E23 — pipeline scaling vs serial oracle (n={events}, K={MAX_DELAY}, "
        f"backend={backend}, cpus={payload['cpu_count']})",
        ["disorder", "workers", "backend", "seconds", "events_per_sec",
         "speedup_vs_serial", "streamed", "matches", "identical"],
        [[c["disorder_rate"], c["workers"], c["backend"], c["seconds"],
          c["events_per_sec"], c["speedup_vs_serial"],
          c["streamed_before_close"], c["matches"],
          "yes" if c["identical_to_serial"] else "NO"] for c in cells],
        note="identical = ordered match-key sequence byte-equal to the serial "
             "PartitionedEngine; streamed = matches surfaced before close "
             "(the barrier engine streams 0)",
    )
    text += render_table(
        "E23b — pipeline vs E16 barrier engine (same workers, same backend)",
        ["disorder", "workers", "barrier s", "pipeline s", "pipeline_vs_barrier"],
        [[r["disorder_rate"], r["workers"], r["barrier_seconds"],
          r["pipeline_seconds"], r["pipeline_vs_barrier"]] for r in barrier_rows],
        note="single-CPU hosts bound both designs; the >=3x claim is gated "
             f"on cpu_count >= {SPEEDUP_MIN_CPUS} and recorded honestly here",
    )
    return write_result("e23_pipeline_scaling", text)


def _assert_claims(payload) -> None:
    assert payload["identity_violations"] == 0, (
        f"pipeline output diverged from the serial oracle: {payload['cells']}"
    )
    for cell in payload["cells"]:
        assert cell["identical_to_serial"], f"non-identical cell: {cell}"
    if (
        not payload["quick"]
        and payload["cpu_count"] >= SPEEDUP_MIN_CPUS
        and any(r["workers"] == SPEEDUP_WORKERS for r in payload["barrier"])
    ):
        worst = min(
            r["pipeline_vs_barrier"]
            for r in payload["barrier"]
            if r["workers"] == SPEEDUP_WORKERS
        )
        assert worst >= 3.0, (
            f"pipeline at {SPEEDUP_WORKERS} workers only {worst}x the barrier "
            f"engine on a {payload['cpu_count']}-CPU host (claim: >= 3x)"
        )


def test_e23_report(benchmark):
    text = benchmark.pedantic(lambda: run_experiment(quick=True), rounds=1, iterations=1)
    print(text)
    assert "E23" in text and "E23b" in text
    _assert_claims(json.loads(JSON_PATH.read_text(encoding="utf-8")))


@pytest.mark.parametrize("engine_name", ["serial", "pipeline2"])
def test_e23_kernel(benchmark, engine_name):
    """Timing kernel: serial oracle vs 2-worker pipeline, one pass."""
    query, arrival = _arrival(0.3, 1500)

    def kernel():
        if engine_name == "serial":
            engine = PartitionedEngine(query, k=MAX_DELAY)
        else:
            engine = PipelinedPartitionedEngine(
                query, k=MAX_DELAY, workers=2, backend="thread"
            )
        for element in arrival:
            engine.feed(element)
        engine.close()
        return len(engine.results)

    benchmark(kernel)


def check_claim() -> None:
    """Assert the recorded scaling/identity claims (CI gate)."""
    payload = json.loads(JSON_PATH.read_text(encoding="utf-8"))
    _assert_claims(payload)
    widest = max(c["workers"] for c in payload["cells"])
    best = max(
        c["speedup_vs_serial"] for c in payload["cells"] if c["workers"] == widest
    )
    print(
        f"claim holds: {len(payload['cells'])} cells identical to the serial "
        f"oracle, best speedup {best}x at {widest} workers on "
        f"{payload['cpu_count']} CPU(s)"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small smoke configuration for CI (thread backend, 2 workers)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit nonzero) when a recorded claim does not hold",
    )
    args = parser.parse_args()
    print(run_experiment(quick=args.quick))
    if args.check:
        check_claim()
    sys.exit(0)
