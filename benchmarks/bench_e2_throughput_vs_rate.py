"""E2 — Throughput vs disorder rate, all engine strategies.

Reconstructs the figure comparing processing cost as the fraction of
out-of-order events grows, on identical arrival traces.

Expected shape: at 0% disorder the out-of-order engine matches the
in-order baseline (its disorder machinery idles); its cost degrades
gracefully with rate (sorted-splice insertions + extra construction
triggers); buffer-and-sort pays a constant heap overhead at every rate.
Counters (partial combinations explored) are reported alongside wall
time as the hardware-free proxy.
"""

import pytest

from repro.bench import make_engine, run_cell
from repro.metrics import render_series
from repro.streams import RandomDelayModel
from repro.workloads import SyntheticWorkload

from common import write_result

RATES = [0.0, 0.1, 0.2, 0.3, 0.5]
MAX_DELAY = 40
EVENTS = 6000
ENGINES = ["inorder", "ooo", "reorder", "aggressive"]


def _arrival(rate: float):
    disorder = RandomDelayModel(rate, MAX_DELAY, seed=3) if rate else None
    workload = SyntheticWorkload(
        query_length=3,
        event_count=EVENTS,
        within=40,
        partitions=8,
        disorder=disorder,
        seed=4,
    )
    __, arrival = workload.generate()
    return workload.query, arrival


def run_experiment() -> str:
    throughput = {name: [] for name in ENGINES}
    partials = {name: [] for name in ENGINES}
    for rate in RATES:
        query, arrival = _arrival(rate)
        for name in ENGINES:
            cell = run_cell(make_engine(name, query, k=MAX_DELAY), arrival)
            throughput[name].append(int(cell["events_per_sec"]))
            partials[name].append(cell["partial_combinations"])
    text = render_series(
        f"E2a — throughput (events/sec, wall) vs disorder rate, n={EVENTS}",
        "rate",
        RATES,
        throughput,
        note="relative positions matter; absolute eps is host-dependent",
    )
    text += render_series(
        "E2b — construction work (partial combinations explored) vs disorder rate",
        "rate",
        RATES,
        partials,
        note="hardware-independent CPU proxy",
    )
    return write_result("e2_throughput_vs_rate", text)


def test_e2_report(benchmark):
    text = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print(text)
    assert "E2a" in text and "E2b" in text


@pytest.mark.parametrize("engine_name", ENGINES)
@pytest.mark.parametrize("rate", [0.0, 0.3])
def test_e2_kernel(benchmark, engine_name, rate):
    """Timing kernel per (engine, disorder rate) cell."""
    query, arrival = _arrival(rate)

    def kernel():
        engine = make_engine(engine_name, query, k=MAX_DELAY)
        engine.feed_many(arrival)
        engine.close()
        return len(engine.results)

    benchmark(kernel)
