"""E6 — Scan & construction optimisations on vs off.

Reconstructs the optimisation ablation ("optimizations for sequence
scan and construction ... to minimize CPU cost"):

* scan optimisation — the feasibility probe that skips construction
  when no completion can exist (generalising the in-order rule of
  triggering only on final-step arrivals);
* construction optimisation — binary-searched timestamp ranges over the
  sorted stacks instead of full-stack scans.

Expected shape: the probe eliminates the vast majority of construction
triggers (every non-final-step arrival in mostly-ordered streams); the
range cuts shrink partial-combination exploration by orders of
magnitude at selective predicates; results are bit-identical throughout.
"""

import pytest

from repro import OutOfOrderEngine
from repro.bench import run_cell
from repro.metrics import render_table
from repro.streams import RandomDelayModel
from repro.workloads import SyntheticWorkload

from common import write_result

EVENTS = 6000
K = 30

CONFIGS = {
    "both on": (True, True),
    "scan off": (False, True),
    "construction off": (True, False),
    "both off": (False, False),
}


def _arrival():
    workload = SyntheticWorkload(
        query_length=4,
        event_count=EVENTS,
        within=80,
        partitions=12,
        disorder=RandomDelayModel(0.2, K, seed=11),
        seed=12,
    )
    __, arrival = workload.generate()
    return workload.query, arrival


def run_experiment() -> str:
    query, arrival = _arrival()
    rows = []
    result_sets = set()
    for label, (scan_on, construction_on) in CONFIGS.items():
        engine = OutOfOrderEngine(
            query, k=K, optimize_scan=scan_on, optimize_construction=construction_on
        )
        cell = run_cell(engine, arrival)
        result_sets.add(frozenset(engine.result_set()))
        rows.append(
            [
                label,
                cell["construction_triggers"],
                cell["skipped_by_probe"],
                cell["partial_combinations"],
                cell["predicate_evaluations"],
                round(cell["seconds"], 3),
                cell["matches"],
            ]
        )
    assert len(result_sets) == 1  # optimisations never change results
    text = render_table(
        f"E6 — optimisation ablation (SEQ(4), n={EVENTS}, 20% disorder)",
        ["config", "triggers", "skipped_by_probe", "partials", "pred_evals", "wall_s", "matches"],
        rows,
        note="identical result sets verified across all four configurations",
    )
    return write_result("e6_optimizations", text)


def test_e6_report(benchmark):
    text = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print(text)
    rows = {}
    for line in text.splitlines():
        for label in CONFIGS:
            if line.strip().startswith(label):
                rows[label] = line.replace(label, "").split()
    triggers = {k: int(v[0].replace(",", "")) for k, v in rows.items()}
    partials = {k: int(v[2].replace(",", "")) for k, v in rows.items()}
    # The probe slashes triggers; range cuts slash partials; together
    # they cut total exploration by well over half.
    assert triggers["both on"] < triggers["scan off"] / 2
    assert partials["both on"] < partials["construction off"] / 1.5
    assert partials["both on"] < partials["both off"] / 2


@pytest.mark.parametrize("config", list(CONFIGS))
def test_e6_kernel(benchmark, config):
    query, arrival = _arrival()
    scan_on, construction_on = CONFIGS[config]

    def kernel():
        engine = OutOfOrderEngine(
            query, k=K, optimize_scan=scan_on, optimize_construction=construction_on
        )
        engine.feed_many(arrival)
        engine.close()
        return len(engine.results)

    benchmark(kernel)
