"""E3 — Result latency vs disorder bound K.

Reconstructs the latency figure: how long does a correct answer wait,
as a function of the promised disorder bound?

* buffer-and-sort delays *every* event by up to K, so its result
  latency grows ~linearly with K even when actual disorder is mild;
* the native out-of-order engine emits positive-pattern matches the
  instant they complete (latency 0 regardless of K) and holds only
  negation-guarded results, whose wait also scales with K but applies
  to far fewer results;
* the aggressive extension removes even that wait, paying in
  revocations (measured in E11).

Latency is measured in *events read between evidence-complete and
emission* (arrival latency), the host-independent definition.
"""

import pytest

from repro.bench import make_engine
from repro.metrics import render_series, summarize_arrival_latency
from repro.streams import RandomDelayModel
from repro.workloads import SyntheticWorkload

from common import write_result

KS = [10, 20, 40, 80, 160]
TRUE_DELAY = 10  # actual disorder never exceeds this
EVENTS = 5000


def _workload(negated: bool):
    return SyntheticWorkload(
        query_length=3,
        event_count=EVENTS,
        within=60,
        partitions=8,
        disorder=RandomDelayModel(0.3, TRUE_DELAY, seed=5),
        negated_step=1 if negated else None,
        include_negatives=0.05,
        seed=6,
    )


def _latency(engine_name: str, workload, arrival, k: int) -> float:
    engine = make_engine(engine_name, workload.query, k=k)
    engine.feed_many(arrival)
    engine.close()
    return summarize_arrival_latency(engine.emissions, arrival).mean


def run_experiment() -> str:
    positive = _workload(False)
    __, arrival_pos = positive.generate()
    negated = _workload(True)
    __, arrival_neg = negated.generate()

    series_pos = {"ooo": [], "reorder": [], "aggressive": []}
    series_neg = {"ooo": [], "reorder": [], "aggressive": []}
    for k in KS:
        for name in series_pos:
            series_pos[name].append(round(_latency(name, positive, arrival_pos, k), 2))
            series_neg[name].append(round(_latency(name, negated, arrival_neg, k), 2))
    text = render_series(
        f"E3a — mean result latency (events) vs K, positive pattern (true delay <= {TRUE_DELAY})",
        "K",
        KS,
        series_pos,
        note="buffer-and-sort pays for its pessimism; native engine does not",
    )
    text += render_series(
        "E3b — mean result latency (events) vs K, negation pattern",
        "K",
        KS,
        series_neg,
        note="conservative negation waits ~K; aggressive emits at 0 and compensates",
    )
    return write_result("e3_latency_vs_k", text)


def test_e3_report(benchmark):
    text = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print(text)
    rows = [
        line.split()
        for line in text.splitlines()
        if line.strip() and line.strip()[0].isdigit()
    ]
    pos_rows = rows[: len(KS)]
    # ooo positive latency is 0 at every K; reorder grows with K.
    assert all(float(row[1]) == 0.0 for row in pos_rows)
    reorder_latencies = [float(row[2]) for row in pos_rows]
    assert reorder_latencies[-1] > reorder_latencies[0] * 3
    # aggressive emits everything immediately on both patterns.
    neg_rows = rows[len(KS) :]
    assert all(float(row[3]) == 0.0 for row in neg_rows)


@pytest.mark.parametrize("engine_name", ["ooo", "reorder"])
def test_e3_kernel(benchmark, engine_name):
    workload = _workload(False)
    __, arrival = workload.generate()

    def kernel():
        engine = make_engine(engine_name, workload.query, k=80)
        engine.feed_many(arrival)
        engine.close()
        return len(engine.results)

    benchmark(kernel)
