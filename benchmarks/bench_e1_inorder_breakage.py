"""E1 — Correctness of the state of the art under disorder.

Reconstructs the paper's motivating measurement: feed the same event
set to the SASE-style in-order engine at increasing disorder rates and
report recall/precision against the offline oracle.  The out-of-order
engine is included as the fixed-at-1.0 reference line.

Expected shape: in-order recall degrades steeply with disorder rate;
with negation queries its precision also drops (premature emissions);
the out-of-order engine stays at 1.0/1.0 throughout.
"""

import pytest

from repro import InOrderEngine, OutOfOrderEngine
from repro.bench import oracle_truth, run_cell
from repro.metrics import render_series
from repro.streams import RandomDelayModel
from repro.workloads import SyntheticWorkload

from common import write_result

RATES = [0.0, 0.05, 0.1, 0.2, 0.3, 0.5]
MAX_DELAY = 40
EVENTS = 4000


def _workload(rate: float, negated: bool = False) -> SyntheticWorkload:
    disorder = RandomDelayModel(rate, MAX_DELAY, seed=1) if rate else None
    return SyntheticWorkload(
        query_length=3,
        event_count=EVENTS,
        within=40,
        partitions=8,
        disorder=disorder,
        negated_step=1 if negated else None,
        seed=2,
    )


def run_experiment() -> str:
    sections = []
    for negated, label in ((False, "SEQ(T1,T2,T3)"), (True, "SEQ(T1,!N,T2,T3)")):
        inorder_recall, inorder_precision, ooo_recall = [], [], []
        for rate in RATES:
            workload = _workload(rate, negated)
            ordered, arrival = workload.generate()
            truth = oracle_truth(workload.query, ordered)
            in_cell = run_cell(InOrderEngine(workload.query), arrival, truth)
            ooo_cell = run_cell(
                OutOfOrderEngine(workload.query, k=MAX_DELAY), arrival, truth
            )
            inorder_recall.append(round(in_cell["recall"], 3))
            inorder_precision.append(round(in_cell["precision"], 3))
            ooo_recall.append(round(ooo_cell["recall"], 3))
        sections.append(
            render_series(
                f"E1 — in-order engine vs oracle, {label}, delay<=K={MAX_DELAY}",
                "disorder_rate",
                RATES,
                {
                    "inorder_recall": inorder_recall,
                    "inorder_precision": inorder_precision,
                    "ooo_recall": ooo_recall,
                },
                note="paper claim: state of the art misses/incorrectly emits under disorder",
            )
        )
    return write_result("e1_inorder_breakage", "\n".join(sections))


def test_e1_report(benchmark):
    text = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Qualitative claims pinned: breakage grows, our engine stays exact.
    rows = [
        line.split()
        for line in text.splitlines()
        if line.strip() and line.strip()[0].isdigit()
    ]
    first_recall = float(rows[0][1])
    last_recall = float(rows[len(RATES) - 1][1])
    assert first_recall == 1.0
    assert last_recall < 0.8
    assert all(float(row[3]) == 1.0 for row in rows)  # ooo_recall column
    print(text)


@pytest.mark.parametrize("engine_name", ["inorder", "ooo"])
def test_e1_kernel(benchmark, engine_name):
    """Representative kernel: one full pass at 20% disorder."""
    workload = _workload(0.2)
    __, arrival = workload.generate()

    def kernel():
        if engine_name == "inorder":
            engine = InOrderEngine(workload.query)
        else:
            engine = OutOfOrderEngine(workload.query, k=MAX_DELAY)
        engine.run(arrival)
        return len(engine.results)

    benchmark(kernel)
