"""E18 — Observability overhead and emission-latency histograms.

Not a paper figure: this experiment prices the runtime observability
layer (PR "obs") on the E2 workload (synthetic 3-step query, 30%
disorder) and demonstrates its payoff.

* **E18a — hot-path overhead.**  Four feeding disciplines, best of
  REPEATS passes each:

  - ``pre_pr``   — an honest control: ``Engine.feed`` with the ``_obs``
    branch surgically removed, i.e. the hot path as it was before this
    PR landed;
  - ``disabled`` — the shipped default (``_obs is None`` check only);
  - ``metrics``  — counters + histograms enabled, no tracing;
  - ``tracing``  — full per-element span recording.

  Claim: the disabled path costs **< 3%** over the pre-PR control.
  Instrumented paths are honestly slower (they route through the
  mirrored ``Observability.feed``) — recorded, not hidden.

* **E18b — emission latency vs out-of-order rate.**  With metrics
  enabled, sweep the disorder rate and render the
  ``repro_emission_latency_ts`` histogram per rate: more disorder means
  matches complete further (in ts units) behind the newest event seen,
  so mass shifts into higher buckets.

Writes ``BENCH_e18.json`` at the repo root next to the rendered tables
in ``benchmarks/results/``.  ``--quick`` runs a smaller configuration
with a looser overhead bound (single-pass timing on CI is noisy).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.engine import OutOfOrderEngine, ValidationPolicy
from repro.core.errors import EngineStateError
from repro.core.event import admission_error, is_event, malformed_reason
from repro.metrics import render_histogram, render_table
from repro.obs import MetricsRegistry, Tracer
from repro.streams import RandomDelayModel
from repro.workloads import SyntheticWorkload

from common import write_result

JSON_PATH = Path(__file__).parent.parent / "BENCH_e18.json"

RATE = 0.3
MAX_DELAY = 40
EVENTS = 6000
SWEEP_RATES = [0.0, 0.2, 0.4]
# Overhead is a ratio of two wall-clock times; best-of-n measures the
# cost floor on a shared machine, which is what the <3% claim is about.
REPEATS = 5


class _PrePRControl(OutOfOrderEngine):
    """The engine exactly as shipped before this PR: no ``_obs`` guard.

    ``feed`` below is the previous ``Engine.feed`` body verbatim minus
    the two observability lines, so the a/b comparison isolates the one
    attribute check the disabled path adds.
    """

    def feed(self, element):
        if self._closed:
            raise EngineStateError(f"{type(self).__name__} is closed")
        if malformed_reason(element) is not None:
            if self.validation is ValidationPolicy.QUARANTINE:
                self.stats.events_quarantined += 1
                return []
            raise admission_error(element)
        if is_event(element):
            self._arrival += 1
            self.stats.events_in += 1
            emitted = self._process_event(element)
        else:
            self.stats.punctuations_in += 1
            emitted = self._on_punctuation(element)
        self.stats.note_state_size(self.state_size())
        return emitted


def _arrival(events: int = EVENTS, rate: float = RATE):
    workload = SyntheticWorkload(
        query_length=3,
        event_count=events,
        within=40,
        partitions=8,
        disorder=RandomDelayModel(rate, MAX_DELAY, seed=3),
        seed=4,
    )
    __, arrival = workload.generate()
    return workload.query, arrival


def _build(mode: str, query):
    if mode == "pre_pr":
        return _PrePRControl(query, k=MAX_DELAY)
    engine = OutOfOrderEngine(query, k=MAX_DELAY)
    if mode == "metrics":
        engine.enable_observability(metrics=MetricsRegistry())
    elif mode == "tracing":
        engine.enable_observability(
            tracer=Tracer(capacity=4096), metrics=MetricsRegistry()
        )
    return engine


def _timed_cell(mode: str, query, arrival, repeats: int):
    best = float("inf")
    for _ in range(repeats):
        engine = _build(mode, query)
        start = time.perf_counter()
        for element in arrival:
            engine.feed(element)
        engine.close()
        best = min(best, time.perf_counter() - start)
    return best, len(engine.results)


def _overhead_sweep(query, arrival, repeats: int):
    rows = []
    control_seconds = None
    for mode in ("pre_pr", "disabled", "metrics", "tracing"):
        seconds, matches = _timed_cell(mode, query, arrival, repeats)
        if control_seconds is None:
            control_seconds = seconds
        rows.append(
            {
                "mode": mode,
                "seconds": seconds,
                "events_per_sec": int(len(arrival) / seconds),
                "overhead_x": round(seconds / control_seconds, 4),
                "matches": matches,
            }
        )
    reference = rows[0]["matches"]
    assert all(row["matches"] == reference for row in rows), (
        "observability changed results: " + repr([r["matches"] for r in rows])
    )
    return rows


def _latency_sweep(events: int):
    """Emission-latency histograms per disorder rate (metrics enabled)."""
    cells = []
    for rate in SWEEP_RATES:
        query, arrival = _arrival(events, rate)
        registry = MetricsRegistry()
        engine = OutOfOrderEngine(query, k=MAX_DELAY)
        engine.enable_observability(metrics=registry)
        for element in arrival:
            engine.feed(element)
        engine.close()
        histogram = registry.get("repro_emission_latency_ts")
        cells.append(
            {
                "rate": rate,
                "matches": len(engine.results),
                "histogram": {
                    "bounds": list(histogram.bounds),
                    "counts": list(histogram.counts),
                    "total": histogram.total,
                    "count": histogram.count,
                },
                "summary": histogram.summary(),
                "rendered": render_histogram(
                    f"E18b — emission latency (ts units), disorder rate={rate}",
                    histogram,
                    note=f"rate={rate} matches={len(engine.results)}",
                ),
            }
        )
    return cells


def run_experiment(quick: bool = False) -> str:
    events = 1500 if quick else EVENTS
    repeats = 2 if quick else REPEATS
    bound = 1.10 if quick else 1.03

    query, arrival = _arrival(events)
    overhead_rows = _overhead_sweep(query, arrival, repeats)
    latency_cells = _latency_sweep(events)

    payload = {
        "experiment": "e18",
        "quick": quick,
        "events": events,
        "disorder_rate": RATE,
        "k": MAX_DELAY,
        "overhead_bound": bound,
        "overhead": overhead_rows,
        "latency": [
            {key: cell[key] for key in ("rate", "matches", "histogram", "summary")}
            for cell in latency_cells
        ],
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    text = render_table(
        f"E18a — observability overhead vs pre-PR hot path (ooo engine, "
        f"n={events}, rate={RATE}, K={MAX_DELAY})",
        ["mode", "seconds", "events_per_sec", "overhead_x", "matches"],
        [
            [r["mode"], round(r["seconds"], 4), r["events_per_sec"],
             r["overhead_x"], r["matches"]]
            for r in overhead_rows
        ],
        note=f"claim: disabled < {bound}x pre_pr; identical result sets "
             "asserted per mode",
    )
    for cell in latency_cells:
        text += cell["rendered"]
    return write_result("e18_observability", text)


def test_e18_report(benchmark):
    text = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print(text)
    assert "E18a" in text and "E18b" in text
    payload = json.loads(JSON_PATH.read_text(encoding="utf-8"))
    disabled = next(r for r in payload["overhead"] if r["mode"] == "disabled")
    assert disabled["overhead_x"] < payload["overhead_bound"], (
        f"disabled observability costs {disabled['overhead_x']:.4f}x the "
        f"pre-PR hot path, expected < {payload['overhead_bound']}x"
    )
    # More disorder -> matches complete further behind the stream head,
    # so mean emission latency must be monotone in the disorder rate.
    means = [cell["summary"]["mean"] for cell in payload["latency"]]
    assert means == sorted(means), f"latency means not monotone: {means}"


def test_e18_kernel(benchmark):
    """Timing kernel: one fully instrumented pass (metrics + tracing)."""
    query, arrival = _arrival(EVENTS // 4)

    def kernel():
        engine = _build("tracing", query)
        for element in arrival:
            engine.feed(element)
        engine.close()
        return len(engine.results)

    benchmark(kernel)


def check_claim() -> None:
    """Assert the disabled-path bound recorded in the payload (CI gate)."""
    payload = json.loads(JSON_PATH.read_text(encoding="utf-8"))
    disabled = next(r for r in payload["overhead"] if r["mode"] == "disabled")
    if disabled["overhead_x"] >= payload["overhead_bound"]:
        raise SystemExit(
            f"disabled observability costs {disabled['overhead_x']:.4f}x the "
            f"pre-PR hot path, expected < {payload['overhead_bound']}x"
        )
    print(
        f"claim holds: disabled path {disabled['overhead_x']:.4f}x "
        f"< {payload['overhead_bound']}x pre-PR control"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small smoke configuration for CI (looser overhead bound)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit nonzero) when the disabled-path claim does not hold",
    )
    args = parser.parse_args()
    print(run_experiment(quick=args.quick))
    if args.check:
        check_claim()
    sys.exit(0)
