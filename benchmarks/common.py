"""Shared infrastructure for the experiment benchmarks (E1–E12).

Every ``bench_eN_*.py`` file reproduces one table or figure from the
paper's evaluation (reconstructed — see DESIGN.md's source-text caveat).
Each defines:

* a ``run_experiment()`` function that performs the full sweep and
  returns the rendered table/series text (also written to
  ``benchmarks/results/eN_<name>.txt`` so results survive the run);
* one or more ``test_eN_*`` functions using the pytest-benchmark
  fixture, timing the experiment's *representative kernel* (a single
  engine pass) so ``pytest benchmarks/ --benchmark-only`` yields a
  comparable timing table across engines/configurations;
* a ``test_eN_report`` that executes the sweep once, writes the result
  file, and asserts the experiment's *qualitative claim* (who wins, by
  what shape), so a regression in the reproduced result fails the run.

Run everything and print all tables:  python benchmarks/run_all.py
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> str:
    """Persist a rendered experiment table; returns the text unchanged."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text, encoding="utf-8")
    return text
