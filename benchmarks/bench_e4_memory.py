"""E4 — Memory consumption (retained state) vs disorder bound and window.

Reconstructs the memory figure.  State is measured in retained elements
(stack instances + negatives + pending + reorder buffer), the quantity
the paper's purge algorithms control.

Expected shape: state grows with K for both correct strategies, but
buffer-and-sort additionally holds its O(rate × K) reorder buffer on
top of engine state, so its curve sits strictly above the native
engine's and diverges as K grows.  Window size moves both curves
together (more live partial matches).
"""

import pytest

from repro.bench import make_engine
from repro.metrics import render_series
from repro.streams import RandomDelayModel
from repro.workloads import SyntheticWorkload

from common import write_result

KS = [10, 40, 160, 640]
WINDOWS = [20, 40, 80, 160]
EVENTS = 6000
TRUE_DELAY = 10


def _arrival(within: int):
    workload = SyntheticWorkload(
        query_length=3,
        event_count=EVENTS,
        within=within,
        partitions=8,
        disorder=RandomDelayModel(0.3, TRUE_DELAY, seed=7),
        seed=8,
    )
    __, arrival = workload.generate()
    return workload.query, arrival


def _peak(engine_name: str, query, arrival, k: int) -> int:
    engine = make_engine(engine_name, query, k=k)
    engine.feed_many(arrival)
    engine.close()
    return engine.stats.peak_state_size


def run_experiment() -> str:
    query, arrival = _arrival(within=60)
    by_k = {"ooo": [], "reorder": []}
    for k in KS:
        for name in by_k:
            by_k[name].append(_peak(name, query, arrival, k))
    text = render_series(
        f"E4a — peak retained state vs disorder bound K (W=60, true delay <= {TRUE_DELAY})",
        "K",
        KS,
        by_k,
        note="reorder buffer grows with K even when actual disorder is small",
    )

    by_w = {"ooo": [], "reorder": []}
    for within in WINDOWS:
        query_w, arrival_w = _arrival(within)
        for name in by_w:
            by_w[name].append(_peak(name, query_w, arrival_w, k=40))
    text += render_series(
        "E4b — peak retained state vs window W (K=40)",
        "W",
        WINDOWS,
        by_w,
        note="window scales live-partial-match state for every strategy",
    )
    return write_result("e4_memory", text)


def test_e4_report(benchmark):
    text = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print(text)
    rows = [
        line.split()
        for line in text.splitlines()
        if line.strip() and line.strip()[0].isdigit()
    ]
    k_rows = rows[: len(KS)]
    ooo = [float(row[1].replace(",", "")) for row in k_rows]
    reorder = [float(row[2].replace(",", "")) for row in k_rows]
    # reorder state dominates and diverges with K; ooo grows much slower.
    assert all(r >= o for o, r in zip(ooo, reorder))
    assert reorder[-1] / max(reorder[0], 1) > (ooo[-1] / max(ooo[0], 1))
    # window rows: monotone growth for both engines.
    w_rows = rows[len(KS) :]
    w_ooo = [float(row[1].replace(",", "")) for row in w_rows]
    assert w_ooo == sorted(w_ooo)


@pytest.mark.parametrize("k", [10, 640])
def test_e4_kernel(benchmark, k):
    query, arrival = _arrival(within=60)

    def kernel():
        engine = make_engine("ooo", query, k=k)
        engine.feed_many(arrival)
        engine.close()
        return engine.stats.peak_state_size

    benchmark(kernel)
