"""E9 — Window size sweep: state and throughput.

Reconstructs the window figure: ``WITHIN`` directly scales how long
instances stay purgeable-not-yet, hence live state and join fan-out.

Expected shape: peak state grows ~linearly with W (events per window);
throughput decays as construction joins over larger stack ranges; the
out-of-order engine tracks the in-order baseline's curve with a bounded
offset (the K-retention tax) at every W.
"""

import pytest

from repro.bench import make_engine, run_cell
from repro.metrics import render_series
from repro.streams import RandomDelayModel
from repro.workloads import SyntheticWorkload

from common import write_result

WINDOWS = [20, 40, 80, 160, 320]
EVENTS = 5000
K = 20


def _arrival(within: int):
    workload = SyntheticWorkload(
        query_length=3,
        event_count=EVENTS,
        within=within,
        partitions=10,
        disorder=RandomDelayModel(0.2, K, seed=17),
        seed=18,
    )
    __, arrival = workload.generate()
    return workload.query, arrival


def run_experiment() -> str:
    peak = {"inorder": [], "ooo": []}
    eps = {"inorder": [], "ooo": []}
    matches = []
    for within in WINDOWS:
        query, arrival = _arrival(within)
        for name in peak:
            cell = run_cell(make_engine(name, query, k=K), arrival)
            peak[name].append(cell["peak_state"])
            eps[name].append(int(cell["events_per_sec"]))
            if name == "ooo":
                matches.append(cell["matches"])
    text = render_series(
        f"E9a — peak retained state vs window W (n={EVENTS}, 20% disorder, K={K})",
        "W",
        WINDOWS,
        peak,
        note="state ~ events-per-window; ooo adds a bounded K-retention tax",
    )
    text += render_series(
        "E9b — throughput (events/sec) vs window W",
        "W",
        WINDOWS,
        {**eps, "matches": matches},
        note="larger windows mean larger join ranges and more results",
    )
    return write_result("e9_window", text)


def test_e9_report(benchmark):
    text = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print(text)
    rows = [
        line.split()
        for line in text.splitlines()
        if line.strip() and line.strip()[0].isdigit()
    ]
    state_rows = rows[: len(WINDOWS)]
    ooo_state = [float(r[2].replace(",", "")) for r in state_rows]
    inorder_state = [float(r[1].replace(",", "")) for r in state_rows]
    assert ooo_state == sorted(ooo_state)  # monotone in W
    # bounded offset: ooo never needs more than ~3x baseline state here
    assert all(o <= 3 * max(i, 1) + 3 * K for i, o in zip(inorder_state, ooo_state))


@pytest.mark.parametrize("within", [20, 320])
def test_e9_kernel(benchmark, within):
    query, arrival = _arrival(within)

    def kernel():
        engine = make_engine("ooo", query, k=K)
        engine.feed_many(arrival)
        engine.close()
        return len(engine.results)

    benchmark(kernel)
