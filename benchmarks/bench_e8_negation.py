"""E8 — Negation queries under disorder.

Reconstructs the negation table: the conservative sealing mechanism is
where out-of-order support earns correctness that the in-order
architecture cannot provide at any cost.

Expected shape: in-order precision drops with disorder rate (premature
emissions that a late negative would have blocked) and recall drops
too; the out-of-order engine stays exact, paying a bounded emission
delay (≈K); the aggressive engine is exact *net of revocations* with
zero delay.
"""

import pytest

from repro.bench import make_engine, run_cell
from repro.metrics import render_table
from repro.streams import RandomDelayModel
from repro.workloads import SyntheticWorkload

from common import write_result

RATES = [0.0, 0.1, 0.3, 0.5]
K = 30
EVENTS = 5000


def _workload(rate: float):
    disorder = RandomDelayModel(rate, K, seed=15) if rate else None
    return SyntheticWorkload(
        query_length=3,
        event_count=EVENTS,
        within=50,
        partitions=6,
        disorder=disorder,
        negated_step=1,
        include_negatives=0.15,
        seed=16,
    )


def run_experiment() -> str:
    from repro.bench import oracle_truth

    rows = []
    for rate in RATES:
        workload = _workload(rate)
        ordered, arrival = workload.generate()
        truth = oracle_truth(workload.query, ordered)
        for name in ("inorder", "ooo", "aggressive"):
            engine = make_engine(name, workload.query, k=K)
            cell = run_cell(engine, arrival, truth)
            rows.append(
                [
                    rate,
                    name,
                    round(cell["recall"], 3),
                    round(cell["precision"], 3),
                    round(cell["lat_arrival_mean"], 1),
                    cell["revocations"],
                ]
            )
    text = render_table(
        f"E8 — negation under disorder (SEQ(T1,!N,T2,T3), n={EVENTS}, K={K})",
        ["rate", "engine", "recall", "precision", "mean_latency", "revocations"],
        rows,
        note="aggressive is judged on net output (emissions minus revocations)",
    )
    return write_result("e8_negation", text)


def test_e8_report(benchmark):
    text = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print(text)
    rows = [
        line.split()
        for line in text.splitlines()
        if line.strip() and line.strip()[0].isdigit() and len(line.split()) == 6
    ]
    for row in rows:
        rate, engine, recall, precision = float(row[0]), row[1], float(row[2]), float(row[3])
        if engine in ("ooo", "aggressive"):
            assert recall == 1.0 and precision == 1.0, row
        elif rate >= 0.3:
            assert recall < 1.0 or precision < 1.0, row
    # in-order precision at the top rate must show false positives
    top_inorder = [r for r in rows if r[1] == "inorder" and float(r[0]) == 0.5]
    assert float(top_inorder[0][3]) < 1.0


@pytest.mark.parametrize("engine_name", ["ooo", "aggressive"])
def test_e8_kernel(benchmark, engine_name):
    workload = _workload(0.3)
    __, arrival = workload.generate()

    def kernel():
        engine = make_engine(engine_name, workload.query, k=K)
        engine.feed_many(arrival)
        engine.close()
        return len(engine.results)

    benchmark(kernel)
