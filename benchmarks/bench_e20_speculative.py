"""E20 — Speculative emission and adaptive-K on netsim disorder bursts.

Not a paper figure: this experiment prices the PR "speculative emission
with retraction + adaptive-K controller" on the physically motivated
disorder the netsim layer produces — a star of sources where one node
suffers outages, so the sink sees calm jitter punctuated by bursts of
stale events at each recovery.  The query is a negated chain, so every
match must wait for its seal under the pessimistic protocol: sealed
emission latency is lower-bounded by K between punctuations.

Three engines consume the identical arrival trace (sparse, oracle-valid
punctuations every ``PUNCT_EVERY`` events):

* **fixed** — pessimistic ``OutOfOrderEngine`` at the trace's observed
  disorder bound (the burst-inflated K a one-shot calibration locks in);
* **fixed+spec** — the same K with speculative emission: the sealed
  stream must stay byte-identical, the speculative stream trades a
  bounded retraction rate for near-zero emission lead time;
* **adaptive** — speculative with an :class:`AdaptiveKController`
  warm-started at the fixed bound; the controller decays K between
  bursts and re-grows it when the late-drop rate threatens the quality
  target.

Claims (the CI ``--check`` gate):

1. the speculative sealed stream is byte-identical to the pessimistic
   one (same K), and the speculative stream converges to it net of
   retractions;
2. the adaptive controller's sealed mean occurrence latency is strictly
   below fixed-K's on the burst trace, at an equal-or-better retraction
   rate;
3. adaptive recall stays at or above the configured quality target.

Writes ``BENCH_e20.json`` at the repo root next to the rendered tables
in ``benchmarks/results/``.  ``--quick`` runs a smaller configuration.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.engine import OutOfOrderEngine
from repro.core.event import Event, Punctuation
from repro.core.oracle import OfflineOracle
from repro.metrics import render_table
from repro.metrics.latency import summarize_occurrence_latency
from repro.metrics.quality import compare_keys
from repro.netsim import FailureSchedule, UniformLatency, simulate_star
from repro.streams import AdaptiveKController, validate_punctuation
from repro.workloads import chain_query

from common import write_result

JSON_PATH = Path(__file__).parent.parent / "BENCH_e20.json"

EVENTS = 8000
WITHIN = 60
PARTITIONS = 4
SOURCES = 4
PUNCT_EVERY = 512
NEGATIVE_RATE = 0.12
QUALITY_TARGET = 0.99
#: Adaptive recall is allowed to pay for its latency win with bounded
#: late-drops (the controller's quality floor binds per epoch, and the
#: burst epochs deliberately exceed the allowance before K re-grows).
RECALL_FLOOR = 0.9
#: One flaky source: two outages, recoveries flood the sink with stale
#: events — the bursty signature that inflates a one-shot K calibration.
OUTAGES = [(2000, 2400), (5000, 5350)]


def _occurrence_stream(events: int, seed: int):
    """Occurrence-ordered events for the negated chain query."""
    import random

    rng = random.Random(seed)
    alphabet = ["T1", "T2", "T3", "X1"]
    stream = []
    for ts in range(1, events + 1):
        etype = "N" if rng.random() < NEGATIVE_RATE else rng.choice(alphabet)
        stream.append(Event(etype, ts, {"part": rng.randint(1, PARTITIONS)}))
    return stream


def _burst_trace(events: int, seed: int):
    """(occurrence order, arrival order with sparse punctuations, required K).

    The occurrence stream is split round-robin across ``SOURCES`` star
    sources (per-source order preserved); one source fails per
    ``OUTAGES`` and holds its traffic until recovery.  Punctuations are
    inserted by lookahead — ``ts = min(remaining occurrence ts) - 1`` —
    so each is valid by construction, and sparse enough that K (not the
    punctuation stream) governs sealing latency in between.
    """
    occurrence = _occurrence_stream(events, seed)
    streams = {f"s{i}": occurrence[i::SOURCES] for i in range(SOURCES)}
    failures = FailureSchedule()
    scale = events / EVENTS
    for start, end in OUTAGES:
        failures.add_outage("s1", int(start * scale), int(end * scale))
    result = simulate_star(
        streams, lambda i: UniformLatency(1, 40), failures=failures, seed=seed
    )
    arrival = result.arrival_order
    required = result.observed_disorder_bound()

    elements = []
    last_punct = -1
    for index, event in enumerate(arrival):
        elements.append(event)
        if (index + 1) % PUNCT_EVERY == 0:
            remaining = arrival[index + 1 :]
            horizon = (min(e.ts for e in remaining) - 1) if remaining else event.ts
            if horizon > last_punct:
                elements.append(Punctuation(horizon))
                last_punct = horizon
    validate_punctuation(elements)
    return occurrence, elements, required


def _sealed_trail(engine):
    """The ordered sealed emission stream, down to detection order."""
    return [(m.key(), m.detected_at) for m in engine.results]


def _speculative_lead(engine):
    """Mean clock lead of speculation over the seal, in ts units."""
    log = engine.speculation
    sealed_at = {}
    for record in engine.emissions:
        sealed_at.setdefault(record.match.key(), record.emitted_clock)
    leads = [
        sealed_at[r.match.key()] - r.emitted_clock
        for r in log.emissions
        if r.match.key() in sealed_at
    ]
    return sum(leads) / len(leads) if leads else 0.0


def _cell(name, engine, elements, truth_keys):
    engine.feed_many(elements)
    engine.close()
    occurrence = summarize_occurrence_latency(engine.emissions)
    quality = compare_keys(truth_keys, engine.result_set())
    row = {
        "name": name,
        "k_final": engine.clock.k,
        "matches": len(engine.results),
        "sealed_lat_mean": round(occurrence.mean, 3),
        "sealed_lat_p99": round(occurrence.p99, 3),
        "late_dropped": engine.stats.late_dropped,
        "recall": round(quality.recall, 4),
        "precision": round(quality.precision, 4),
        "speculative": engine.stats.speculative_emitted,
        "retractions": engine.stats.retractions_issued,
        "retraction_rate": 0.0,
        "spec_lead_mean": 0.0,
        "refreezes": 0,
    }
    if engine.speculation is not None:
        row["retraction_rate"] = round(engine.speculation.retraction_rate(), 4)
        row["spec_lead_mean"] = round(_speculative_lead(engine), 3)
        row["net_convergent"] = engine.speculation.net_keys() == engine.result_set()
    if engine._controller is not None:
        row["refreezes"] = engine._controller.adjustments
    return row


def run_experiment(quick: bool = False) -> str:
    events = 2500 if quick else EVENTS
    query = chain_query(3, WITHIN, partitioned=True, negated_step=1, name="e20chain")
    occurrence, elements, required_bound = _burst_trace(events, seed=11)
    truth = OfflineOracle(query).evaluate_set(occurrence)

    fixed = OutOfOrderEngine(query, k=required_bound)
    fixed_spec = OutOfOrderEngine(query, k=required_bound, speculative=True)
    controller = AdaptiveKController(
        quality_target=QUALITY_TARGET,
        initial_k=required_bound,
        min_epoch_events=PUNCT_EVERY // 4,
    )
    adaptive = OutOfOrderEngine(
        query, k=required_bound, speculative=True, controller=controller
    )

    rows = [
        _cell("fixed", fixed, elements, truth),
        _cell("fixed+spec", fixed_spec, elements, truth),
        _cell("adaptive", adaptive, elements, truth),
    ]
    identical = _sealed_trail(fixed) == _sealed_trail(fixed_spec)

    payload = {
        "experiment": "e20",
        "quick": quick,
        "events": events,
        "within": WITHIN,
        "sources": SOURCES,
        "punct_every": PUNCT_EVERY,
        "required_k": required_bound,
        "quality_target": QUALITY_TARGET,
        "recall_floor": RECALL_FLOOR,
        "oracle_matches": len(truth),
        "sealed_identical": identical,
        "cells": rows,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    text = render_table(
        f"E20 — speculative emission + adaptive-K on a netsim burst trace "
        f"(n={events}, W={WITHIN}, required K={required_bound}, "
        f"punctuation every {PUNCT_EVERY})",
        ["engine", "K_final", "matches", "seal_lat_mean", "seal_lat_p99",
         "late_drop", "recall", "spec", "retract", "r_rate", "lead", "refreezes"],
        [
            [r["name"], r["k_final"], r["matches"], r["sealed_lat_mean"],
             r["sealed_lat_p99"], r["late_dropped"], r["recall"],
             r["speculative"], r["retractions"], r["retraction_rate"],
             r["spec_lead_mean"], r["refreezes"]]
            for r in rows
        ],
        note="claims: sealed streams byte-identical (fixed vs fixed+spec); "
             "adaptive seals strictly faster than fixed-K at equal-or-better "
             f"retraction rate; adaptive recall ≥ {RECALL_FLOOR}",
    )
    return write_result("e20_speculative", text)


def _assert_claims(payload: dict) -> None:
    if not payload["sealed_identical"]:
        raise SystemExit("speculative sealed stream diverged from pessimistic")
    cells = {row["name"]: row for row in payload["cells"]}
    fixed, spec, adaptive = cells["fixed"], cells["fixed+spec"], cells["adaptive"]
    for row in (spec, adaptive):
        if not row.get("net_convergent", False):
            raise SystemExit(
                f"{row['name']}: speculative stream net of retractions does "
                "not converge to the sealed result set"
            )
    if adaptive["sealed_lat_mean"] >= fixed["sealed_lat_mean"]:
        raise SystemExit(
            f"adaptive sealed latency {adaptive['sealed_lat_mean']} not below "
            f"fixed-K {fixed['sealed_lat_mean']}"
        )
    if adaptive["retraction_rate"] > spec["retraction_rate"]:
        raise SystemExit(
            f"adaptive retraction rate {adaptive['retraction_rate']} worse "
            f"than fixed-K speculative {spec['retraction_rate']}"
        )
    if adaptive["recall"] < payload["recall_floor"]:
        raise SystemExit(
            f"adaptive recall {adaptive['recall']} below the "
            f"{payload['recall_floor']} floor"
        )
    if fixed["recall"] < 1.0 or fixed["precision"] < 1.0:
        raise SystemExit("pessimistic fixed-K engine is not oracle-exact")


def test_e20_report(benchmark):
    text = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print(text)
    assert "E20" in text
    payload = json.loads(JSON_PATH.read_text(encoding="utf-8"))
    _assert_claims(payload)
    # The qualitative story: speculation leads the seal by a positive
    # margin, and the controller actually moved the bound.
    cells = {row["name"]: row for row in payload["cells"]}
    assert cells["fixed+spec"]["spec_lead_mean"] > 0
    assert cells["adaptive"]["refreezes"] > 0


def check_claim() -> None:
    """Assert the recorded latency/retraction/identity claims (CI gate)."""
    payload = json.loads(JSON_PATH.read_text(encoding="utf-8"))
    _assert_claims(payload)
    cells = {row["name"]: row for row in payload["cells"]}
    print(
        f"claim holds: adaptive seals at {cells['adaptive']['sealed_lat_mean']} "
        f"vs fixed-K {cells['fixed']['sealed_lat_mean']} mean ts, retraction "
        f"rate {cells['adaptive']['retraction_rate']} ≤ "
        f"{cells['fixed+spec']['retraction_rate']}, sealed streams identical"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small smoke configuration for CI",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit nonzero) when a recorded claim does not hold",
    )
    args = parser.parse_args()
    print(run_experiment(quick=args.quick))
    if args.check:
        check_claim()
    sys.exit(0)
