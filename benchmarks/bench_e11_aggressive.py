"""E11 — Aggressive vs conservative: the revocation trade-off.

Reconstructs the extension study (the paper's future-work direction,
fully developed in the authors' ICDE 2009 follow-up): optimistic
emission buys zero latency at the price of compensation traffic that
grows with disorder.

Expected shape: revocations rise with the disorder rate; conservative
latency is flat (~K-determined); both remain exactly correct *net*;
the operator's choice is a latency-vs-churn dial, not a correctness one.
"""

import pytest

from repro import AggressiveEngine, OutOfOrderEngine
from repro.bench import oracle_truth
from repro.metrics import render_table, summarize_arrival_latency
from repro.streams import RandomDelayModel
from repro.workloads import SyntheticWorkload

from common import write_result

RATES = [0.0, 0.1, 0.2, 0.4]
K = 30
EVENTS = 5000


def _workload(rate: float):
    disorder = RandomDelayModel(rate, K, seed=21) if rate else None
    return SyntheticWorkload(
        query_length=3,
        event_count=EVENTS,
        within=50,
        partitions=6,
        disorder=disorder,
        negated_step=1,
        include_negatives=0.15,
        seed=22,
    )


def run_experiment() -> str:
    rows = []
    for rate in RATES:
        workload = _workload(rate)
        ordered, arrival = workload.generate()
        truth = oracle_truth(workload.query, ordered)

        conservative = OutOfOrderEngine(workload.query, k=K)
        conservative.run(list(arrival))
        aggressive = AggressiveEngine(workload.query, k=K)
        aggressive.run(list(arrival))

        cons_latency = summarize_arrival_latency(conservative.emissions, arrival)
        aggr_latency = summarize_arrival_latency(aggressive.emissions, arrival)
        churn = (
            len(aggressive.revocations) / len(aggressive.results)
            if aggressive.results
            else 0.0
        )
        rows.append(
            [
                rate,
                round(cons_latency.mean, 1),
                round(aggr_latency.mean, 1),
                len(aggressive.revocations),
                round(churn, 4),
                conservative.result_set() == truth,
                aggressive.net_result_set() == truth,
            ]
        )
    text = render_table(
        f"E11 — aggressive vs conservative (negation query, n={EVENTS}, K={K})",
        ["rate", "cons_latency", "aggr_latency", "revocations", "churn", "cons_exact", "aggr_exact"],
        rows,
        note="churn = revocations per emitted match; both strategies exact",
    )
    return write_result("e11_aggressive", text)


def test_e11_report(benchmark):
    text = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print(text)
    rows = [
        line.split()
        for line in text.splitlines()
        if line.strip() and line.strip()[0].isdigit()
    ]
    revocations = [int(r[3].replace(",", "")) for r in rows]
    assert revocations[0] == 0  # no disorder, no compensation
    assert max(revocations[1:]) > 0  # disorder produces compensation traffic
    assert all(r[5] == "yes" and r[6] == "yes" for r in rows)
    aggr_latency = [float(r[2]) for r in rows]
    cons_latency = [float(r[1]) for r in rows]
    assert all(a <= c for a, c in zip(aggr_latency, cons_latency))


@pytest.mark.parametrize("strategy", ["conservative", "aggressive"])
def test_e11_kernel(benchmark, strategy):
    workload = _workload(0.2)
    __, arrival = workload.generate()

    def kernel():
        if strategy == "conservative":
            engine = OutOfOrderEngine(workload.query, k=K)
        else:
            engine = AggressiveEngine(workload.query, k=K)
        engine.feed_many(arrival)
        engine.close()
        return len(engine.results)

    benchmark(kernel)
