"""E10 — End-to-end motivating application: RFID shoplifting detection.

Reconstructs the application-level evaluation: the full pipeline from
store activity through per-reader network links (with an outage) to
pattern detection, comparing all strategies on detection quality,
alert latency, and state.

Expected shape: out-of-order and buffer-and-sort both reach perfect
detection; the in-order baseline both misses thefts and raises false
alarms; buffer-and-sort pays the latency/buffer tax; the aggressive
extension alerts fastest with a handful of revocations.
"""

from repro.bench import make_engine
from repro.core.oracle import OfflineOracle
from repro.metrics import compare_keys, render_table, summarize_arrival_latency
from repro.netsim import FailureSchedule, UniformLatency, simulate_star
from repro.workloads import RfidStoreGenerator, shoplifting_query

from common import write_result

ITEMS = 400


def _pipeline():
    trace = RfidStoreGenerator(
        items=ITEMS, shoplift_rate=0.06, browse_rate=0.2, dwell=1500,
        arrival_span=60_000, seed=19,
    ).generate()
    failures = FailureSchedule()
    failures.add_outage("COUNTER_READ", 20_000, 24_000)
    simulated = simulate_star(
        trace.by_reader, lambda i: UniformLatency(0, 200), failures=failures, seed=20
    )
    return trace, simulated


def run_experiment() -> str:
    trace, simulated = _pipeline()
    arrival = simulated.arrival_order
    k = simulated.observed_disorder_bound()
    query = shoplifting_query(within=2000)
    truth = OfflineOracle(query).evaluate_set(trace.merged)

    rows = []
    for name in ("inorder", "ooo", "reorder", "aggressive"):
        engine = make_engine(name, query, k=k)
        engine.feed_many(arrival)
        engine.close()
        produced = (
            engine.net_result_set()
            if hasattr(engine, "net_result_set")
            else engine.result_set()
        )
        report = compare_keys(truth, produced)
        latency = summarize_arrival_latency(engine.emissions, arrival)
        rows.append(
            [
                name,
                len(engine.results),
                round(report.recall, 3),
                round(report.precision, 3),
                round(latency.mean, 1),
                engine.stats.peak_state_size,
                engine.stats.revocations,
            ]
        )
    text = render_table(
        f"E10 — RFID shoplifting end-to-end ({len(truth)} true thefts, "
        f"counter outage 20k-24k, measured K={k})",
        ["engine", "alerts", "recall", "precision", "mean_latency", "peak_state", "revoked"],
        rows,
        note="netsim-driven disorder: wireless jitter + a counter-reader outage",
    )
    return write_result("e10_rfid", text)


def test_e10_report(benchmark):
    text = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print(text)
    rows = {
        line.split()[0]: line.split()
        for line in text.splitlines()
        if line.strip().split() and line.strip().split()[0] in
        ("inorder", "ooo", "reorder", "aggressive")
    }
    assert float(rows["ooo"][2]) == 1.0 and float(rows["ooo"][3]) == 1.0
    assert float(rows["reorder"][2]) == 1.0 and float(rows["reorder"][3]) == 1.0
    assert float(rows["aggressive"][2]) == 1.0 and float(rows["aggressive"][3]) == 1.0
    # the baseline breaks at least one way on this pipeline
    assert float(rows["inorder"][2]) < 1.0 or float(rows["inorder"][3]) < 1.0
    # buffer-and-sort answers slower than the native engine
    assert float(rows["reorder"][4]) >= float(rows["ooo"][4])


def test_e10_kernel(benchmark):
    trace, simulated = _pipeline()
    arrival = simulated.arrival_order
    k = simulated.observed_disorder_bound()
    query = shoplifting_query(within=2000)

    def kernel():
        engine = make_engine("ooo", query, k=k)
        engine.feed_many(arrival)
        engine.close()
        return len(engine.results)

    benchmark(kernel)
