"""E21 — Ingestion-gateway soak: throughput, ack latency, crash recovery.

Not a paper figure: this experiment characterises the fault-tolerant
ingestion gateway (``repro.ingest``) layered in front of the engines.
Three cells over an A/B sequence workload on the loopback interface,
every frame travelling the full newline-JSON socket path:

* **clean** — S sources stream F frames each through one gateway;
  measures end-to-end admitted throughput and the client-observed
  admission-latency distribution (last transmit of a frame to its ack).
* **faulty** — the same soak with scripted client faults (lost-ack
  tears and duplicate sends, the at-least-once anomalies): idempotent
  admission must absorb every redelivery, so the engine still sees each
  distinct frame exactly once.
* **crash** — a fault-injected gateway dies mid-ingest and restarts on
  the same port while the client rides through on backoff; measures
  WAL-replay recovery time and the client-perceived outage.

Claims (the CI ``--check`` gate):

* recall vs the offline oracle is **1.0** in every cell — faults and
  the crash/restart cycle lose no matches (crash-cell recall counts the
  union of matches delivered by both incarnations: the delivery log
  guarantees each match is delivered once, by exactly one incarnation);
* admission is exactly-once under faults and crashes: distinct frames
  admitted across incarnations equals the number of frames sent;
* the soak sustains a sane floor (> 50 frames/s) with bounded tail
  latency (p99 < 2 s) — loose bounds, this is a smoke gate on shared
  CI boxes, not a performance claim.

Writes ``BENCH_e21.json`` at the repo root (machine-readable results
for trend tracking) next to the rendered table in
``benchmarks/results/``.  ``--quick`` runs a smaller configuration.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro import OfflineOracle, OutOfOrderEngine, parse
from repro.faultinject import FaultInjector
from repro.ingest import (
    ClientFaultPlan,
    EventSchema,
    FieldSpec,
    GatewayConfig,
    IngestClient,
    IngestGateway,
    StreamSchema,
    serve_in_thread,
)
from repro.metrics import compare_keys, render_table

from common import write_result

JSON_PATH = Path(__file__).parent.parent / "BENCH_e21.json"

QUERY = "PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 20"
SOURCES = 4
PAIRS = 600  # A+B pairs per source -> 2*PAIRS frames per source
QUICK_SOURCES = 2
QUICK_PAIRS = 120


def _schema() -> StreamSchema:
    fields = [FieldSpec("ts", "int"), FieldSpec("x", "int")]
    return StreamSchema(
        "soak",
        t_event="ts",
        source_slack=2,
        ordering_scope="global",
        events=[EventSchema("A", list(fields)), EventSchema("B", list(fields))],
    )


def _frames(source_index: int, pairs: int):
    """One source's in-order frame list; x-spaces are disjoint across
    sources so every payload (and thus every derived eid) is distinct."""
    base = source_index * 1000
    frames = []
    for i in range(pairs):
        x = base + i % 3
        frames.append(("A", {"ts": 2 * i, "x": x}))
        frames.append(("B", {"ts": 2 * i + 1, "x": x}))
    return frames


def _truth_keys(schema, pattern, sources, pairs):
    events = [
        schema.build_event(etype, attrs)
        for s in range(sources)
        for etype, attrs in _frames(s, pairs)
    ]
    return OfflineOracle(pattern).evaluate_set(events)


def _build_gateway(directory, pairs, port=0, fault=None):
    # The engine's K must absorb the worst-case *inter-source* skew:
    # client threads race freely, so one source can be a full trace
    # ahead of another in event time.  K covering the whole ts range
    # makes the engine purely punctuation-sealed for this soak — the
    # bench measures the gateway, not the engine's disorder bound.
    k = 2 * pairs + 32
    pattern = parse(QUERY)
    config = GatewayConfig(
        _schema(), port=port, liveness_timeout=60.0, dedupe_window=16384
    )
    return IngestGateway(
        lambda: OutOfOrderEngine(pattern, k=k),
        config,
        directory=directory,
        fault=fault,
    )


def _drive_source(port, name, frames, fault_plan, reports, barrier):
    client = IngestClient(
        "127.0.0.1", port, name, "soak", window=64, fault_plan=fault_plan
    )
    client.connect()
    # Preamble: every source registers a mark before anyone races ahead,
    # so the min-merge holds the watermark behind the slowest source and
    # no cross-source admission is late at the engine.
    client.send(*frames[0])
    client.flush()
    barrier.wait()
    for frame in frames[1:]:
        client.send(frame[0], dict(frame[1]))
    reports[name] = client.close()


def _soak_cell(name, sources, pairs, fault_plans=None):
    pattern = parse(QUERY)
    schema = _schema()
    with tempfile.TemporaryDirectory(prefix="repro-e21-") as directory:
        gateway = _build_gateway(directory, pairs)
        handle = serve_in_thread(gateway)
        reports: dict = {}
        barrier = threading.Barrier(sources)
        threads = [
            threading.Thread(
                target=_drive_source,
                args=(
                    handle.port,
                    f"src{s}",
                    _frames(s, pairs),
                    (fault_plans or {}).get(f"src{s}"),
                    reports,
                    barrier,
                ),
            )
            for s in range(sources)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        handle.stop(seal=True)

        frames_total = 2 * pairs * sources
        latencies = sorted(
            value for report in reports.values() for value in report.latencies
        )
        p99 = latencies[min(len(latencies) - 1, int(0.99 * len(latencies)))]
        achieved = {match.key() for match in gateway.results()}
        report = compare_keys(_truth_keys(schema, pattern, sources, pairs), achieved)
        return {
            "cell": name,
            "sources": sources,
            "frames": frames_total,
            "seconds": round(elapsed, 3),
            "throughput_fps": round(frames_total / elapsed, 1),
            "p50_latency_s": round(latencies[len(latencies) // 2], 5),
            "p99_latency_s": round(p99, 5),
            "admitted": gateway.admission.admitted,
            "duplicates_absorbed": gateway.admission.duplicates,
            "resends": sum(r.resends for r in reports.values()),
            "reconnects": sum(r.reconnects for r in reports.values()),
            "recall": report.recall,
        }


def _crash_cell(pairs):
    """Crash the gateway mid-ingest, restart on the same port, measure
    the WAL-replay recovery and the client-perceived outage."""
    pattern = parse(QUERY)
    schema = _schema()
    frames = _frames(0, pairs)
    crash_at = len(frames) // 2
    with tempfile.TemporaryDirectory(prefix="repro-e21-") as directory:
        first = _build_gateway(directory, pairs, fault=FaultInjector(crash_at=[crash_at]))
        handle = serve_in_thread(first)
        port = handle.port
        timings: dict = {}
        restarted: dict = {}

        def restart():
            while not first.crashed:
                time.sleep(0.002)
            crash_seen = time.perf_counter()
            handle.stop(seal=False)
            replay_start = time.perf_counter()
            second = _build_gateway(directory, pairs, port=port)
            timings["replay_s"] = time.perf_counter() - replay_start
            restarted["gateway"] = second
            restarted["handle"] = serve_in_thread(second)
            timings["outage_s"] = time.perf_counter() - crash_seen

        watchdog = threading.Thread(target=restart, daemon=True)
        watchdog.start()
        client = IngestClient("127.0.0.1", port, "src0", "soak", window=16)
        client.connect()
        started = time.perf_counter()
        for etype, attrs in frames:
            client.send(etype, dict(attrs))
        report = client.close()
        elapsed = time.perf_counter() - started
        watchdog.join(timeout=30.0)
        restarted["handle"].stop(seal=True)
        second = restarted["gateway"]

        delivered = {m.key() for m in first.results()} | {
            m.key() for m in second.results()
        }
        quality = compare_keys(_truth_keys(schema, pattern, 1, pairs), delivered)
        return {
            "cell": "crash",
            "frames": len(frames),
            "seconds": round(elapsed, 3),
            "recovery_replay_s": round(timings["replay_s"], 4),
            "client_outage_s": round(timings["outage_s"], 4),
            "replayed_frames": second.recovered_frames,
            "admitted_total": second.recovered_frames + second.admission.admitted,
            "client_reconnects": report.reconnects,
            "client_resends": report.resends,
            "recall": quality.recall,
        }


def run_experiment(quick: bool = False) -> str:
    sources = QUICK_SOURCES if quick else SOURCES
    pairs = QUICK_PAIRS if quick else PAIRS
    faulty_plans = {
        "src0": ClientFaultPlan(torn_after_send=[pairs // 2], duplicate_send=[3]),
        "src1": ClientFaultPlan(duplicate_send=[5, pairs]),
    }
    cells = [
        _soak_cell("clean", sources, pairs),
        _soak_cell("faulty", sources, pairs, fault_plans=faulty_plans),
    ]
    crash = _crash_cell(pairs)

    text = render_table(
        f"E21 — gateway soak, {sources} sources x {2 * pairs} frames over TCP",
        ["cell", "frames", "fps", "p99 ack s", "dupes absorbed", "recall"],
        [
            [
                row["cell"],
                row["frames"],
                row["throughput_fps"],
                row["p99_latency_s"],
                row["duplicates_absorbed"],
                round(row["recall"], 4),
            ]
            for row in cells
        ],
    )
    text += render_table(
        "E21b — crash mid-ingest, restart on the same port",
        ["frames", "replay s", "outage s", "replayed", "reconnects", "recall"],
        [
            [
                crash["frames"],
                crash["recovery_replay_s"],
                crash["client_outage_s"],
                crash["replayed_frames"],
                crash["client_reconnects"],
                round(crash["recall"], 4),
            ]
        ],
    )

    payload = {
        "experiment": "e21",
        "quick": quick,
        "cells": cells,
        "crash": crash,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return write_result("e21_ingest_soak", text)


def _assert_claims(payload) -> None:
    for row in payload["cells"]:
        assert row["recall"] == 1.0, f"{row['cell']} cell lost matches: {row}"
        assert row["admitted"] == row["frames"], (
            f"{row['cell']} cell admission not exactly-once: {row}"
        )
        assert row["throughput_fps"] > 50, f"throughput floor broken: {row}"
        assert row["p99_latency_s"] < 2.0, f"tail latency bound broken: {row}"
    faulty = payload["cells"][1]
    assert faulty["duplicates_absorbed"] >= 2, (
        f"fault plans produced no duplicates to absorb: {faulty}"
    )
    crash = payload["crash"]
    assert crash["recall"] == 1.0, f"crash cell lost matches: {crash}"
    assert crash["admitted_total"] == crash["frames"], (
        f"crash admission not exactly-once: {crash}"
    )
    assert crash["client_reconnects"] >= 1


def test_e21_report(benchmark):
    text = benchmark.pedantic(lambda: run_experiment(quick=True), rounds=1, iterations=1)
    print(text)
    assert "E21" in text and "E21b" in text
    _assert_claims(json.loads(JSON_PATH.read_text(encoding="utf-8")))


def check_claim() -> None:
    """Assert the recorded soak/recovery claims (CI gate)."""
    payload = json.loads(JSON_PATH.read_text(encoding="utf-8"))
    _assert_claims(payload)
    crash = payload["crash"]
    print(
        f"claim holds: recall 1.0 in every cell, exactly-once admission, "
        f"recovery replayed {crash['replayed_frames']} frames in "
        f"{crash['recovery_replay_s']}s ({crash['client_outage_s']}s outage)"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small smoke configuration for CI",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit nonzero) when a recorded claim does not hold",
    )
    args = parser.parse_args()
    print(run_experiment(quick=args.quick))
    if args.check:
        check_claim()
    sys.exit(0)
