"""E15 — Multi-query scaling: type-indexed routing vs naive broadcast.

Extension experiment: a deployment registers many pattern queries over
one event bus.  The naive shape feeds every event to every engine;
each engine's sequence scan then rejects irrelevant types one by one.
The registry indexes engines by the types their patterns mention and
dispatches each event only to interested engines.

Expected shape: broadcast cost grows linearly with the number of
registered queries regardless of relevance; routed cost grows only
with the *relevant* engines per event, so the gap widens with query
count when each query touches a small slice of the type alphabet.
Results are identical (asserted per query).
"""

import time

import pytest

from repro import OutOfOrderEngine, QueryRegistry, seq
from repro.metrics import render_table
from repro.streams import RandomDelayModel, SyntheticSource
from common import write_result

QUERY_COUNTS = [4, 16, 64]
EVENTS = 8000
K = 20
TYPES_PER_QUERY = 2
ALPHABET = 40  # distinct event types on the bus


def _queries(count: int):
    queries = []
    for index in range(count):
        first = f"T{(index * TYPES_PER_QUERY) % ALPHABET}"
        second = f"T{(index * TYPES_PER_QUERY + 1) % ALPHABET}"
        queries.append(seq(f"{first} a", f"{second} b", within=20, name=f"q{index}"))
    return queries


def _arrival():
    source = SyntheticSource(
        [f"T{i}" for i in range(ALPHABET)], EVENTS, seed=29
    )
    return RandomDelayModel(0.2, K, seed=30).apply(source.take(EVENTS))


def run_experiment() -> str:
    arrival = _arrival()
    rows = []
    for count in QUERY_COUNTS:
        queries = _queries(count)

        registry = QueryRegistry()
        for query in queries:
            registry.register(OutOfOrderEngine(query, k=K))
        started = time.perf_counter()
        registry.run(list(arrival))
        routed_seconds = time.perf_counter() - started

        broadcast = [OutOfOrderEngine(query, k=K) for query in queries]
        started = time.perf_counter()
        for engine in broadcast:
            engine.feed_many(arrival)
            engine.close()
        broadcast_seconds = time.perf_counter() - started

        for query, engine in zip(queries, broadcast):
            assert registry.engine(query.name).result_set() == engine.result_set()

        registry_feeds = sum(
            registry.engine(q.name).stats.events_in for q in queries
        )
        rows.append(
            [
                count,
                int(EVENTS / routed_seconds),
                int(EVENTS / broadcast_seconds),
                round(broadcast_seconds / routed_seconds, 2),
                registry_feeds,
                len(arrival) * count,
            ]
        )
    text = render_table(
        f"E15 — multi-query dispatch (n={EVENTS}, {ALPHABET} types, 2 types/query)",
        ["queries", "routed_eps", "broadcast_eps", "speedup_x",
         "routed_engine_feeds", "broadcast_engine_feeds"],
        rows,
        note="identical per-query result sets asserted; extension beyond the paper",
    )
    return write_result("e15_multiquery", text)


def test_e15_report(benchmark):
    text = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print(text)
    rows = [
        line.split()
        for line in text.splitlines()
        if line.strip() and line.strip()[0].isdigit()
    ]
    speedups = [float(row[3]) for row in rows]
    # Wall-clock advantage is large at every query count (noise-tolerant
    # margin; observed 8-11x).
    assert all(s > 2.0 for s in speedups)
    # The deterministic core of the claim: routing touches an
    # ever-smaller fraction of the engine feeds broadcast performs.
    fractions = [
        int(row[4].replace(",", "")) / int(row[5].replace(",", "")) for row in rows
    ]
    assert all(f < 0.3 for f in fractions)


@pytest.mark.parametrize("mode", ["registry", "broadcast"])
def test_e15_kernel(benchmark, mode):
    arrival = _arrival()
    queries = _queries(16)

    def kernel():
        if mode == "registry":
            registry = QueryRegistry()
            for query in queries:
                registry.register(OutOfOrderEngine(query, k=K))
            registry.run(list(arrival))
            return len(registry)
        engines = [OutOfOrderEngine(query, k=K) for query in queries]
        for engine in engines:
            engine.feed_many(arrival)
            engine.close()
        return len(engines)

    benchmark(kernel)
