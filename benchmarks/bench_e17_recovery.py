"""E17 — Checkpoint overhead and crash-recovery cost (robustness layer).

Not a paper figure: this experiment characterises the durability layer
added on top of the reproduction.  Two sweeps on the E2 workload
(synthetic 3-step query, 30% disorder):

* **E17a — checkpoint overhead vs interval.**  The resilient runner
  (write-ahead log + periodic engine snapshots) against the plain
  per-event feed loop it wraps.  The WAL append is per-element and
  constant; snapshot cost amortises with the interval, so the overhead
  curve flattens toward the WAL floor.  Claim: at intervals >= 1000
  events the whole durability layer costs **less than 2x** wall time.

* **E17b — recovery time vs state size.**  Crash the runner 3/4 of the
  way through the trace, then time a cold recovery (restore last
  checkpoint + replay the WAL suffix).  The disorder bound K scales the
  engine's retained state (larger K -> later purge horizon), so the
  sweep exposes how recovery cost tracks checkpoint size.

Writes ``BENCH_e17.json`` at the repo root (machine-readable results
for trend tracking) next to the rendered table in
``benchmarks/results/``.  ``--quick`` runs a smaller configuration.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.bench import make_engine
from repro.core.recovery import CHECKPOINT_NAME, ResilientRunner
from repro.faultinject import CrashError, FaultInjector
from repro.metrics import render_series, render_table
from repro.streams import RandomDelayModel
from repro.workloads import SyntheticWorkload

from common import write_result

JSON_PATH = Path(__file__).parent.parent / "BENCH_e17.json"

RATE = 0.3
MAX_DELAY = 40
EVENTS = 6000
INTERVALS = [100, 250, 1000, 2500]
K_VALUES = [10, 40, 160, 640]
# Timing cells take the best of REPEATS passes: overhead is a ratio of
# two wall-clock times, and a single noisy pass on a shared machine can
# swing it across the <2x claim.  Best-of-n measures the cost floor,
# which is what the claim is about.
REPEATS = 3


def _arrival(events: int = EVENTS):
    workload = SyntheticWorkload(
        query_length=3,
        event_count=events,
        within=40,
        partitions=8,
        disorder=RandomDelayModel(RATE, MAX_DELAY, seed=3),
        seed=4,
    )
    __, arrival = workload.generate()
    return workload.query, arrival


def _baseline_cell(query, arrival):
    best = float("inf")
    for _ in range(REPEATS):
        engine = make_engine("ooo", query, k=MAX_DELAY)
        start = time.perf_counter()
        for element in arrival:
            engine.feed(element)
        engine.close()
        best = min(best, time.perf_counter() - start)
    return best, len(engine.results)


def _resilient_cell(query, arrival, interval):
    best = float("inf")
    for _ in range(REPEATS):
        with tempfile.TemporaryDirectory(prefix="repro-e17-") as directory:
            engine = make_engine("ooo", query, k=MAX_DELAY)
            runner = ResilientRunner(engine, directory, checkpoint_every=interval)
            start = time.perf_counter()
            runner.run(arrival)
            best = min(best, time.perf_counter() - start)
            checkpoint_bytes = (Path(directory) / CHECKPOINT_NAME).stat().st_size
    return best, len(engine.results), runner.checkpoints_written, checkpoint_bytes


def _recovery_cell(query, arrival, k, interval):
    crash_index = (len(arrival) * 3) // 4
    with tempfile.TemporaryDirectory(prefix="repro-e17-") as directory:
        fault = FaultInjector(crash_at=[crash_index])
        runner = ResilientRunner(
            make_engine("ooo", query, k=k),
            directory,
            checkpoint_every=interval,
            fault=fault,
        )
        try:
            runner.run(arrival)
        except CrashError:
            pass
        checkpoint_bytes = (Path(directory) / CHECKPOINT_NAME).stat().st_size
        start = time.perf_counter()
        recovered = ResilientRunner(
            make_engine("ooo", query, k=k), directory, checkpoint_every=interval
        )
        recovery_seconds = time.perf_counter() - start
        replayed = recovered.replayed_elements
        recovered.run(arrival)
        return {
            "k": k,
            "checkpoint_bytes": checkpoint_bytes,
            "recovery_seconds": recovery_seconds,
            "replayed_elements": replayed,
            "matches": len(recovered.engine.results),
        }


def run_experiment(events: int = EVENTS, intervals=None, k_values=None) -> str:
    intervals = intervals or INTERVALS
    k_values = k_values or K_VALUES
    query, arrival = _arrival(events)
    base_seconds, base_matches = _baseline_cell(query, arrival)

    overhead_rows = []
    overhead_series = {"overhead_x": [], "checkpoints": []}
    for interval in intervals:
        seconds, matches, checkpoints, ckpt_bytes = _resilient_cell(
            query, arrival, interval
        )
        assert matches == base_matches, (
            f"resilient run produced {matches} matches vs baseline {base_matches}"
        )
        ratio = seconds / base_seconds if base_seconds > 0 else float("inf")
        overhead_series["overhead_x"].append(round(ratio, 2))
        overhead_series["checkpoints"].append(checkpoints)
        overhead_rows.append(
            {
                "interval": interval,
                "seconds": seconds,
                "overhead_x": ratio,
                "checkpoints": checkpoints,
                "checkpoint_bytes": ckpt_bytes,
            }
        )

    recovery_rows = [
        _recovery_cell(query, arrival, k, interval=1000) for k in k_values
    ]

    text = render_series(
        f"E17a — durability overhead (x plain per-event feed) vs checkpoint "
        f"interval, n={events}",
        "interval",
        intervals,
        overhead_series,
        note=f"baseline {base_seconds:.2f}s; WAL append dominates at large intervals",
    )
    text += render_table(
        "E17b — cold recovery cost vs engine state size (crash at 75% of trace)",
        ["K", "ckpt bytes", "recovery s", "replayed", "matches"],
        [
            [
                row["k"],
                row["checkpoint_bytes"],
                round(row["recovery_seconds"], 4),
                row["replayed_elements"],
                row["matches"],
            ]
            for row in recovery_rows
        ],
    )

    payload = {
        "experiment": "e17",
        "events": events,
        "baseline_seconds": base_seconds,
        "baseline_matches": base_matches,
        "overhead": overhead_rows,
        "recovery": recovery_rows,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return write_result("e17_recovery", text)


def test_e17_report(benchmark):
    text = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print(text)
    assert "E17a" in text and "E17b" in text
    payload = json.loads(JSON_PATH.read_text(encoding="utf-8"))
    for row in payload["overhead"]:
        if row["interval"] >= 1000:
            assert row["overhead_x"] < 2.0, (
                f"checkpoint interval {row['interval']} costs "
                f"{row['overhead_x']:.2f}x, expected < 2x"
            )
    # Every crash/recover cycle must land on the uninterrupted result
    # (K >= the trace's max delay means no late drops, so the count must
    # match the baseline exactly; smaller K legitimately drops matches).
    for row in payload["recovery"]:
        if row["k"] >= MAX_DELAY:
            assert row["matches"] == payload["baseline_matches"]


def test_e17_kernel(benchmark):
    """Timing kernel: one checkpointed pass at the claim interval."""
    query, arrival = _arrival(EVENTS // 4)

    def kernel():
        with tempfile.TemporaryDirectory(prefix="repro-e17-") as directory:
            engine = make_engine("ooo", query, k=MAX_DELAY)
            ResilientRunner(engine, directory, checkpoint_every=1000).run(arrival)
            return len(engine.results)

    benchmark(kernel)


if __name__ == "__main__":
    if "--quick" in sys.argv:
        print(run_experiment(events=1500, intervals=[100, 500], k_values=[10, 40]))
    else:
        print(run_experiment())
