"""E7 — Scalability with query length (number of SEQ steps).

Reconstructs the query-length table: SEQ(2) through SEQ(6) with a
partition-equality chain, identical traces, all engines.

Expected shape: cost grows with length for everyone (more stacks, more
joins); the out-of-order engine's *overhead factor* over the in-order
baseline stays roughly flat — disorder handling is per-event splice +
probe work, not combinatorial — which is the paper's scalability story.
"""

import pytest

from repro.bench import make_engine, run_cell
from repro.metrics import render_table
from repro.streams import RandomDelayModel
from repro.workloads import SyntheticWorkload

from common import write_result

LENGTHS = [2, 3, 4, 5, 6]
EVENTS = 5000
K = 25
ENGINES = ["inorder", "ooo", "reorder"]


def _arrival(length: int):
    workload = SyntheticWorkload(
        query_length=length,
        event_count=EVENTS,
        within=30 * length,
        partitions=10,
        disorder=RandomDelayModel(0.2, K, seed=13),
        seed=14,
    )
    __, arrival = workload.generate()
    return workload.query, arrival


def run_experiment() -> str:
    rows = []
    for length in LENGTHS:
        query, arrival = _arrival(length)
        row = [length]
        eps = {}
        for name in ENGINES:
            cell = run_cell(make_engine(name, query, k=K), arrival)
            eps[name] = cell["events_per_sec"]
            if name == "ooo":
                matches = cell["matches"]
        for name in ENGINES:
            row.append(int(eps[name]))
        row.append(round(eps["inorder"] / max(eps["ooo"], 1), 2))
        row.append(matches)
        rows.append(row)
    text = render_table(
        f"E7 — query length scalability (n={EVENTS}, 20% disorder, K={K})",
        ["steps", "inorder_eps", "ooo_eps", "reorder_eps", "ooo_overhead_x", "matches"],
        rows,
        note="overhead_x = inorder eps / ooo eps; flat factor = paper's claim",
    )
    return write_result("e7_query_length", text)


def test_e7_report(benchmark):
    text = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print(text)
    rows = [
        line.split()
        for line in text.splitlines()
        if line.strip() and line.strip()[0].isdigit()
    ]
    overheads = [float(row[4]) for row in rows]
    # Overhead factor stays bounded (no combinatorial blow-up from disorder).
    assert max(overheads) < 4.0


@pytest.mark.parametrize("length", [2, 4, 6])
def test_e7_kernel(benchmark, length):
    query, arrival = _arrival(length)

    def kernel():
        engine = make_engine("ooo", query, k=K)
        engine.feed_many(arrival)
        engine.close()
        return len(engine.results)

    benchmark(kernel)
