"""E13 — Ablation: partitioned vs flat evaluation of keyed queries.

Extension experiment (beyond the paper): every application query in the
paper's domains correlates steps on one attribute (tag / source /
symbol).  Hash-partitioning the out-of-order engine on that key turns
cross-window joins into per-partition joins.

Expected shape: construction work (partial combinations) for the flat
engine grows with window occupancy regardless of key cardinality,
while the partitioned engine's work falls ~1/cardinality; results stay
bit-identical (asserted).  At cardinality 1 partitioning degenerates
to the flat engine plus routing overhead — the honest break-even.
"""

import pytest

from repro import OutOfOrderEngine, PartitionedEngine
from repro.metrics import render_table
from repro.streams import RandomDelayModel
from repro.workloads import SyntheticWorkload

from common import write_result

CARDINALITIES = [1, 4, 16, 64]
EVENTS = 6000
K = 25


def _arrival(partitions: int):
    workload = SyntheticWorkload(
        query_length=3,
        event_count=EVENTS,
        within=60,
        partitions=partitions,
        disorder=RandomDelayModel(0.25, K, seed=25),
        seed=26,
    )
    __, arrival = workload.generate()
    return workload.query, arrival


def run_experiment() -> str:
    rows = []
    for cardinality in CARDINALITIES:
        query, arrival = _arrival(cardinality)
        flat = OutOfOrderEngine(query, k=K)
        flat.run(list(arrival))
        partitioned = PartitionedEngine(query, k=K)
        partitioned.run(list(arrival))
        assert partitioned.result_set() == flat.result_set()
        sub = partitioned.merged_substats()
        rows.append(
            [
                cardinality,
                flat.stats.partial_combinations,
                sub.partial_combinations,
                round(
                    flat.stats.partial_combinations / max(1, sub.partial_combinations), 2
                ),
                partitioned.partition_count(),
                len(flat.results),
            ]
        )
    text = render_table(
        f"E13 — partitioned vs flat construction work (n={EVENTS}, K={K}, W=60)",
        ["key_cardinality", "flat_partials", "partitioned_partials", "speedup_x",
         "partitions", "matches"],
        rows,
        note="identical result sets asserted per row; extension beyond the paper",
    )
    return write_result("e13_partitioning", text)


def test_e13_report(benchmark):
    text = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print(text)
    rows = [
        line.split()
        for line in text.splitlines()
        if line.strip() and line.strip()[0].isdigit()
    ]
    speedups = [float(row[3]) for row in rows]
    # Work ratio grows with cardinality; meaningful win by 16 keys.
    assert speedups == sorted(speedups)
    assert speedups[-1] > 3.0


@pytest.mark.parametrize("engine_name", ["flat", "partitioned"])
def test_e13_kernel(benchmark, engine_name):
    query, arrival = _arrival(16)

    def kernel():
        if engine_name == "flat":
            engine = OutOfOrderEngine(query, k=K)
        else:
            engine = PartitionedEngine(query, k=K)
        engine.feed_many(arrival)
        engine.close()
        return len(engine.results)

    benchmark(kernel)
