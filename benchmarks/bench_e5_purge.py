"""E5 — Purge strategies: CPU cost vs memory consumption.

Reconstructs the purge-algorithm ablation the abstract highlights
("state purging to minimize CPU cost and memory consumption").

Three schedules on identical input:

* eager  — purge after every element (the paper's choice);
* lazy   — purge every 256 elements (amortised);
* none   — never purge (what breaks without the algorithms).

Expected shape: eager holds the smallest state; lazy overshoots
between runs but costs fewer purge invocations; no-purge grows without
bound AND gets *slower* — unpurged stacks make every construction scan
larger, so the purge algorithms pay for themselves in CPU too.
"""

import pytest

from repro import OutOfOrderEngine, PurgePolicy
from repro.bench import run_cell
from repro.metrics import render_table
from repro.streams import RandomDelayModel
from repro.workloads import SyntheticWorkload

from common import write_result

EVENTS = 8000
K = 30

POLICIES = {
    "eager": PurgePolicy.eager,
    "lazy-256": lambda: PurgePolicy.lazy(256),
    "none": PurgePolicy.none,
}


def _arrival():
    workload = SyntheticWorkload(
        query_length=3,
        event_count=EVENTS,
        within=40,
        partitions=4,
        disorder=RandomDelayModel(0.25, K, seed=9),
        seed=10,
    )
    __, arrival = workload.generate()
    return workload.query, arrival


def run_experiment() -> str:
    query, arrival = _arrival()
    rows = []
    cells = {}
    for label, factory in POLICIES.items():
        engine = OutOfOrderEngine(query, k=K, purge=factory())
        cell = run_cell(engine, arrival)
        cells[label] = cell
        rows.append(
            [
                label,
                cell["peak_state"],
                cell["partial_combinations"],
                engine.stats.purge_runs,
                cell["purged"],
                round(cell["seconds"], 3),
                cell["matches"],
            ]
        )
    matches = {row[6] for row in rows}
    text = render_table(
        f"E5 — purge strategy ablation (n={EVENTS}, K={K}, W=40)",
        ["policy", "peak_state", "partials_explored", "purge_runs", "purged", "wall_s", "matches"],
        rows,
        note="identical matches across policies — purge changes cost, never results",
    )
    assert len(matches) == 1  # invariant baked into the artefact
    return write_result("e5_purge", text)


def test_e5_report(benchmark):
    text = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print(text)
    rows = {
        line.split()[0]: line.split()
        for line in text.splitlines()
        if line.strip().startswith(("eager", "lazy", "none"))
    }
    peak = {k: int(v[1].replace(",", "")) for k, v in rows.items()}
    partials = {k: int(v[2].replace(",", "")) for k, v in rows.items()}
    assert peak["eager"] <= peak["lazy-256"] <= peak["none"]
    assert peak["none"] > 10 * peak["eager"]
    # no-purge explores the most partial combinations (bigger scans)
    assert partials["none"] >= partials["eager"]


@pytest.mark.parametrize("policy", list(POLICIES))
def test_e5_kernel(benchmark, policy):
    query, arrival = _arrival()

    def kernel():
        engine = OutOfOrderEngine(query, k=K, purge=POLICIES[policy]())
        engine.feed_many(arrival)
        engine.close()
        return engine.stats.peak_state_size

    benchmark(kernel)
