"""E12 — Ablation: sizing the disorder bound (fixed vs adaptive K).

Reconstructs the K-sizing study.  The paper assumes K is given; this
ablation shows what choosing it costs, on heavy-tailed disorder where
the choice is hardest (Pareto-style delays from the burst model):

* oracle-max — K set to the true maximum delay (perfect hindsight);
* trained-max — running max over a training prefix, with margin;
* trained-p99/p90 — quantile estimators: smaller K, bounded violations.

Expected shape: quantile K is several times smaller than max-based K,
cutting peak state proportionally, while recall stays near 1 (only
tail stragglers are dropped).  The knee quantifies the paper's "K is a
tunable guarantee" framing.
"""

from repro import OutOfOrderEngine
from repro.bench import oracle_truth
from repro.metrics import compare_keys, render_table
from repro.streams import (
    BurstDropoutModel,
    MaxObservedK,
    QuantileK,
    required_k,
)
from repro.workloads import SyntheticWorkload

from common import write_result

EVENTS = 6000
TRAINING = 2000


def _data():
    workload = SyntheticWorkload(
        query_length=3,
        event_count=EVENTS,
        within=50,
        partitions=8,
        disorder=BurstDropoutModel(0.01, 80, seed=23),
        seed=24,
    )
    ordered, arrival = workload.generate()
    return workload.query, ordered, arrival


def _choose_k(estimator, arrival):
    for event in arrival[:TRAINING]:
        estimator.observe(event)
    return estimator.current()


def run_experiment() -> str:
    query, ordered, arrival = _data()
    truth = oracle_truth(query, ordered)
    true_k = required_k(arrival)

    policies = [
        ("oracle-max", true_k),
        ("trained-max+20%", _choose_k(MaxObservedK(margin=0.2), arrival)),
        ("trained-p99", _choose_k(QuantileK(quantile=0.99, window=TRAINING), arrival)),
        ("trained-p90", _choose_k(QuantileK(quantile=0.90, window=TRAINING), arrival)),
    ]
    rows = []
    for label, k in policies:
        engine = OutOfOrderEngine(query, k=k)
        engine.run(list(arrival))
        report = compare_keys(truth, engine.result_set())
        rows.append(
            [
                label,
                k,
                round(report.recall, 4),
                round(report.precision, 4),
                engine.stats.late_dropped,
                engine.stats.peak_state_size,
            ]
        )
    text = render_table(
        f"E12 — disorder-bound sizing on bursty disorder (true max delay {true_k})",
        ["policy", "K", "recall", "precision", "late_dropped", "peak_state"],
        rows,
        note=f"estimators trained on first {TRAINING} arrivals, then frozen",
    )
    return write_result("e12_kslack", text)


def test_e12_report(benchmark):
    text = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print(text)
    rows = {
        line.split()[0]: line.split()
        for line in text.splitlines()
        if line.strip().startswith(("oracle", "trained"))
    }
    assert float(rows["oracle-max"][2]) == 1.0  # perfect hindsight is exact
    # precision never suffers from a small K — only recall can.
    assert all(float(r[3]) == 1.0 for r in rows.values())
    p90 = rows["trained-p90"]
    assert int(p90[1]) <= int(rows["oracle-max"][1])
    assert float(p90[2]) > 0.8  # tail-dropping costs only a little recall


def test_e12_kernel(benchmark):
    query, __, arrival = _data()
    k = required_k(arrival)

    def kernel():
        engine = OutOfOrderEngine(query, k=k)
        engine.feed_many(arrival)
        engine.close()
        return len(engine.results)

    benchmark(kernel)
