"""E16 — Batched execution and partition parallelism.

Extension experiment (beyond the paper, towards the ROADMAP's
"as fast as the hardware allows" north star): measures the two
mechanical speed levers added on top of the out-of-order machinery:

* **micro-batching** — ``feed_batch`` amortises per-element Python
  dispatch (hoisted lookups, pre-resolved predicate dispatch, coalesced
  purge scheduling) while staying observably identical to per-event
  ``feed`` (pinned by the property suite);
* **partition parallelism** — ``ParallelPartitionedEngine`` fans
  per-key sub-engines over a worker pool with a deterministic merge.

Expected shape: batch throughput rises with batch size and saturates
once per-batch fixed costs vanish (>= 1.5x at batch 512 on the E2
workload); pool speedup is bounded by partition skew and — on a
single-CPU host or under the GIL — may hover near 1x, which the table
reports honestly.  Results are asserted identical across disciplines.

Writes ``BENCH_e16.json`` at the repo root (machine-readable trajectory
seed) next to the usual rendered table under ``benchmarks/results/``.

CLI: ``python benchmarks/bench_e16_batch_parallel.py [--quick]``.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import pytest

from repro import ParallelPartitionedEngine
from repro.bench import make_engine, run_cell
from repro.metrics import render_table
from repro.streams import RandomDelayModel
from repro.workloads import SyntheticWorkload

from common import write_result

EVENTS = 6000
RATE = 0.3
MAX_DELAY = 40
BATCH_SIZES = [0, 32, 128, 512, None]  # 0 = per-event feed, None = one batch
WORKER_COUNTS = [1, 2, 4]
REPEATS = 3
JSON_PATH = Path(__file__).parent.parent / "BENCH_e16.json"


def _arrival(events: int = EVENTS):
    workload = SyntheticWorkload(
        query_length=3,
        event_count=events,
        within=40,
        partitions=8,
        disorder=RandomDelayModel(RATE, MAX_DELAY, seed=3),
        seed=4,
    )
    __, arrival = workload.generate()
    return workload.query, arrival


def _best_cell(factory, arrival, batch_size, repeats=REPEATS):
    """run_cell, best wall time of *repeats* fresh engines (noise floor)."""
    best = None
    for _ in range(repeats):
        cell = run_cell(factory(), arrival, batch_size=batch_size)
        if best is None or cell["seconds"] < best["seconds"]:
            best = cell
    return best


def _batch_sweep(query, arrival, batch_sizes, repeats):
    baseline = None
    rows = []
    reference_keys = None
    for batch_size in batch_sizes:
        engine_keys = []

        def factory():
            engine = make_engine("ooo", query, k=MAX_DELAY)
            engine_keys.append(engine)
            return engine

        cell = _best_cell(factory, arrival, batch_size, repeats)
        produced = engine_keys[-1].result_set()
        if reference_keys is None:
            reference_keys = produced
        else:
            assert produced == reference_keys, "batch discipline changed results"
        if baseline is None:
            baseline = cell["seconds"]
        label = "feed" if batch_size == 0 else (
            "all" if batch_size is None else batch_size
        )
        rows.append(
            {
                "batch_size": label,
                "seconds": round(cell["seconds"], 4),
                "events_per_sec": int(cell["events_per_sec"]),
                "speedup_vs_feed": round(baseline / cell["seconds"], 2),
                "matches": cell["matches"],
            }
        )
    return rows


def _parallel_sweep(query, arrival, worker_counts, backends, repeats):
    rows = []
    reference_keys = None
    baseline = None
    for backend in backends:
        for workers in worker_counts:
            if workers == 1 and backend != backends[0]:
                continue  # workers=1 is backend-independent (serial fallback)
            best = None
            engine = None
            for _ in range(repeats):
                candidate = ParallelPartitionedEngine(
                    query, k=MAX_DELAY, workers=workers, backend=backend
                )
                start = time.perf_counter()
                candidate.run(list(arrival))
                seconds = time.perf_counter() - start
                if best is None or seconds < best:
                    best = seconds
                    engine = candidate
            produced = engine.result_set()
            if reference_keys is None:
                reference_keys = produced
                baseline = best
            else:
                assert produced == reference_keys, "worker count changed results"
            rows.append(
                {
                    "workers": workers,
                    "backend": backend if workers > 1 else "serial",
                    "seconds": round(best, 4),
                    "events_per_sec": int(len(arrival) / best),
                    "speedup_vs_serial": round(baseline / best, 2),
                    "partitions": engine.partition_count()
                    if workers == 1
                    else len(engine._worker_stats),
                    "matches": len(engine.results),
                }
            )
    return rows


def run_experiment(quick: bool = False) -> str:
    events = 1500 if quick else EVENTS
    batch_sizes = [0, 512] if quick else BATCH_SIZES
    worker_counts = [1, 2] if quick else WORKER_COUNTS
    backends = ["thread"] if quick else ["thread", "process"]
    repeats = 1 if quick else REPEATS

    query, arrival = _arrival(events)
    batch_rows = _batch_sweep(query, arrival, batch_sizes, repeats)
    parallel_rows = _parallel_sweep(query, arrival, worker_counts, backends, repeats)

    payload = {
        "experiment": "e16_batch_parallel",
        "quick": quick,
        "workload": {
            "events": events,
            "disorder_rate": RATE,
            "max_delay": MAX_DELAY,
            "k": MAX_DELAY,
            "within": 40,
            "partitions": 8,
        },
        "batch": batch_rows,
        "parallel": parallel_rows,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    text = render_table(
        f"E16a — feed_batch speedup vs batch size (ooo engine, n={events}, "
        f"rate={RATE}, K={MAX_DELAY})",
        ["batch_size", "seconds", "events_per_sec", "speedup_vs_feed", "matches"],
        [[r["batch_size"], r["seconds"], r["events_per_sec"],
          r["speedup_vs_feed"], r["matches"]] for r in batch_rows],
        note="batch_size 'feed' = per-event reference loop; 'all' = one batch",
    )
    text += render_table(
        f"E16b — ParallelPartitionedEngine vs worker count (n={events})",
        ["workers", "backend", "seconds", "events_per_sec", "speedup_vs_serial",
         "matches"],
        [[r["workers"], r["backend"], r["seconds"], r["events_per_sec"],
          r["speedup_vs_serial"], r["matches"]] for r in parallel_rows],
        note="identical result sets asserted per row; single-CPU hosts and the "
             "GIL bound pool gains — recorded honestly; close-time map now "
             "sizes one pool to the work and maps with an explicit chunksize "
             "(len/4*workers) instead of default chunking",
    )
    return write_result("e16_batch_parallel", text)


def test_e16_report(benchmark):
    text = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print(text)
    payload = json.loads(JSON_PATH.read_text(encoding="utf-8"))
    at_512 = next(r for r in payload["batch"] if r["batch_size"] == 512)
    assert at_512["speedup_vs_feed"] >= 1.5, (
        f"batch=512 speedup regressed: {at_512['speedup_vs_feed']}x < 1.5x"
    )


@pytest.mark.parametrize("batch_size", [0, 512])
def test_e16_kernel(benchmark, batch_size):
    """Timing kernel per feeding discipline."""
    query, arrival = _arrival()

    def kernel():
        engine = make_engine("ooo", query, k=MAX_DELAY)
        if batch_size == 0:
            for element in arrival:
                engine.feed(element)
        else:
            for lo in range(0, len(arrival), batch_size):
                engine.feed_batch(arrival[lo : lo + batch_size])
        engine.close()
        return len(engine.results)

    benchmark(kernel)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small smoke configuration for CI (no speedup assertions)",
    )
    args = parser.parse_args()
    print(run_experiment(quick=args.quick))
    sys.exit(0)
