"""E19 — Equality-index pushdown in sequence construction.

Not a paper figure: this experiment prices the equality-index layer
(PR "equality-indexed stacks") against range-only construction.  The
synthetic chain query joins all steps on a partition attribute, so the
join selectivity is ``1 / partitions`` per step — the knob SASE-style
equi-join pushdown is supposed to win on.

* **E19a — speedup vs join selectivity.**  Fixed disorder (rate 0.3,
  K = 30), sweep the partition cardinality.  Per cell, the same arrival
  trace is fed to an indexed engine and a range-only (``index=False``)
  ablation, best of REPEATS passes each; the ordered emission streams
  must be byte-identical and equal to the offline oracle's result set.
  Claim: at selectivity ≤ 1% the indexed engine constructs ≥ 3x faster.

* **E19b — disorder invariance.**  Fixed high selectivity, sweep the
  disorder rate.  The posting lists absorb out-of-order splices exactly
  like the stacks themselves, so the win must not degrade with disorder
  — and outputs stay identical to the oracle at every rate.

* **E19c — no-equality regression guard.**  A chain query *without*
  equality predicates plans no index (the engine builds plain stacks),
  so ``index=True`` must cost within 5% of ``index=False`` — the layer
  is free when it cannot help.

Writes ``BENCH_e19.json`` at the repo root next to the rendered tables
in ``benchmarks/results/``.  ``--quick`` runs a smaller configuration
with looser bounds (single-machine CI timing is noisy).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.engine import OutOfOrderEngine
from repro.core.oracle import OfflineOracle
from repro.metrics import render_table
from repro.streams import NoDisorder, RandomDelayModel
from repro.workloads import SyntheticWorkload, chain_query

from common import write_result

JSON_PATH = Path(__file__).parent.parent / "BENCH_e19.json"

EVENTS = 6000
WITHIN = 400
K = 30
RATE = 0.3
PARTITION_SWEEP = [16, 64, 256]
SELECTIVE_PARTITIONS = 256  # selectivity 1/256 ≈ 0.4% per join
DISORDER_SWEEP = [0.0, 0.2, 0.4]
REGRESSION_EVENTS = 4000
REGRESSION_WITHIN = 40
# Speedup is a ratio of two wall-clock times; best-of-n measures the
# cost floor on a shared machine, which is what the ≥3x claim is about.
REPEATS = 5


def _workload(partitions: int, rate: float, events: int) -> SyntheticWorkload:
    disorder = NoDisorder() if rate == 0 else RandomDelayModel(rate, K, seed=3)
    return SyntheticWorkload(
        query_length=3,
        event_count=events,
        within=WITHIN,
        partitions=partitions,
        disorder=disorder,
        seed=4,
    )


def _timed_run(query, arrival, index: bool, repeats: int):
    """Best-of-*repeats* wall time; returns (seconds, final engine)."""
    best = float("inf")
    for _ in range(repeats):
        engine = OutOfOrderEngine(query, k=K, index=index)
        start = time.perf_counter()
        engine.feed_many(arrival)
        engine.close()
        best = min(best, time.perf_counter() - start)
    return best, engine


def _emission_trail(engine):
    """The ordered emission stream, down to detection order — the
    byte-identical comparison the ablation flag promises."""
    return [(match.key(), match.detected_at) for match in engine.results]


def _indexed_cell(partitions: int, rate: float, events: int, repeats: int):
    workload = _workload(partitions, rate, events)
    occurrence, arrival = workload.generate()
    indexed_seconds, indexed = _timed_run(workload.query, arrival, True, repeats)
    range_seconds, range_only = _timed_run(workload.query, arrival, False, repeats)

    assert _emission_trail(indexed) == _emission_trail(range_only), (
        f"indexed and range-only emission streams diverge "
        f"(partitions={partitions}, rate={rate})"
    )
    truth = OfflineOracle(workload.query).evaluate_set(occurrence)
    assert indexed.result_set() == truth, (
        f"indexed engine diverges from the oracle "
        f"(partitions={partitions}, rate={rate})"
    )
    return {
        "partitions": partitions,
        "selectivity": round(1.0 / partitions, 6),
        "rate": rate,
        "indexed_seconds": indexed_seconds,
        "range_seconds": range_seconds,
        "speedup_x": round(range_seconds / indexed_seconds, 4),
        "matches": len(indexed.results),
        "index_hits": indexed.stats.index_hits,
        "index_misses": indexed.stats.index_misses,
        "partials_indexed": indexed.stats.partial_combinations,
        "partials_range": range_only.stats.partial_combinations,
        "identical_output": True,
        "oracle_exact": True,
    }


def _regression_cell(events: int, repeats: int):
    """E19c: a query with no equality predicates plans no index."""
    query = chain_query(3, REGRESSION_WITHIN, partitioned=False, name="noeq3")
    workload = _workload(partitions=8, rate=RATE, events=events)
    workload.query = query
    __, arrival = workload.generate()
    indexed_seconds, indexed = _timed_run(query, arrival, True, repeats)
    range_seconds, range_only = _timed_run(query, arrival, False, repeats)
    assert indexed.constructor.indexed_attrs is None, (
        "no-equality query unexpectedly planned an index"
    )
    assert _emission_trail(indexed) == _emission_trail(range_only)
    return {
        "events": events,
        "indexed_seconds": indexed_seconds,
        "range_seconds": range_seconds,
        "overhead_x": round(indexed_seconds / range_seconds, 4),
        "matches": len(indexed.results),
        "index_hits": indexed.stats.index_hits,
    }


def run_experiment(quick: bool = False) -> str:
    events = 2000 if quick else EVENTS
    regression_events = 1500 if quick else REGRESSION_EVENTS
    repeats = 2 if quick else REPEATS
    speedup_bound = 1.5 if quick else 3.0
    regression_bound = 1.25 if quick else 1.05

    selectivity_rows = [
        _indexed_cell(partitions, RATE, events, repeats)
        for partitions in PARTITION_SWEEP
    ]
    disorder_rows = [
        _indexed_cell(SELECTIVE_PARTITIONS, rate, events, repeats)
        for rate in DISORDER_SWEEP
    ]
    regression = _regression_cell(regression_events, repeats)

    payload = {
        "experiment": "e19",
        "quick": quick,
        "events": events,
        "within": WITHIN,
        "k": K,
        "speedup_bound": speedup_bound,
        "selective_partitions": SELECTIVE_PARTITIONS,
        "regression_bound": regression_bound,
        "selectivity": selectivity_rows,
        "disorder": disorder_rows,
        "regression": regression,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    text = render_table(
        f"E19a — construction speedup vs join selectivity "
        f"(n={events}, W={WITHIN}, rate={RATE}, K={K})",
        ["partitions", "selectivity", "indexed_s", "range_s", "speedup_x",
         "matches", "hits", "misses"],
        [
            [r["partitions"], r["selectivity"], round(r["indexed_seconds"], 4),
             round(r["range_seconds"], 4), r["speedup_x"], r["matches"],
             r["index_hits"], r["index_misses"]]
            for r in selectivity_rows
        ],
        note=f"claim: ≥ {speedup_bound}x at selectivity ≤ 1%; ordered "
             "emissions byte-identical and oracle-exact per cell",
    )
    text += render_table(
        f"E19b — speedup vs disorder rate (partitions={SELECTIVE_PARTITIONS})",
        ["rate", "indexed_s", "range_s", "speedup_x", "matches"],
        [
            [r["rate"], round(r["indexed_seconds"], 4),
             round(r["range_seconds"], 4), r["speedup_x"], r["matches"]]
            for r in disorder_rows
        ],
        note="posting lists splice like the stacks: wins hold at every rate",
    )
    text += render_table(
        f"E19c — no-equality regression guard (n={regression_events}, "
        f"W={REGRESSION_WITHIN})",
        ["indexed_s", "range_s", "overhead_x", "matches", "hits"],
        [[round(regression["indexed_seconds"], 4),
          round(regression["range_seconds"], 4), regression["overhead_x"],
          regression["matches"], regression["index_hits"]]],
        note=f"claim: index=True within {regression_bound}x of index=False "
             "when no equality predicate exists (no index is even planned)",
    )
    return write_result("e19_equality_index", text)


def _assert_claims(payload: dict) -> None:
    selective = next(
        r for r in payload["selectivity"]
        if r["partitions"] == payload["selective_partitions"]
    )
    if selective["speedup_x"] < payload["speedup_bound"]:
        raise SystemExit(
            f"selective equi-join speedup {selective['speedup_x']:.2f}x "
            f"below the {payload['speedup_bound']}x bound"
        )
    for row in payload["selectivity"] + payload["disorder"]:
        if not (row["identical_output"] and row["oracle_exact"]):
            raise SystemExit(f"output identity violated in cell {row!r}")
    overhead = payload["regression"]["overhead_x"]
    if overhead > payload["regression_bound"]:
        raise SystemExit(
            f"no-equality workload regressed {overhead:.4f}x, expected "
            f"<= {payload['regression_bound']}x"
        )


def test_e19_report(benchmark):
    text = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print(text)
    assert "E19a" in text and "E19b" in text and "E19c" in text
    payload = json.loads(JSON_PATH.read_text(encoding="utf-8"))
    _assert_claims(payload)
    # The qualitative claim: pushdown wins grow with join selectivity.
    speedups = [r["speedup_x"] for r in payload["selectivity"]]
    assert speedups[-1] > speedups[0], (
        f"speedup did not grow with selectivity: {speedups}"
    )


def test_e19_kernel(benchmark):
    """Timing kernel: one indexed pass at the selective configuration."""
    workload = _workload(SELECTIVE_PARTITIONS, RATE, EVENTS // 4)
    __, arrival = workload.generate()

    def kernel():
        engine = OutOfOrderEngine(workload.query, k=K, index=True)
        engine.feed_many(arrival)
        engine.close()
        return len(engine.results)

    benchmark(kernel)


def check_claim() -> None:
    """Assert the recorded speedup/identity/regression claims (CI gate)."""
    payload = json.loads(JSON_PATH.read_text(encoding="utf-8"))
    _assert_claims(payload)
    selective = next(
        r for r in payload["selectivity"]
        if r["partitions"] == payload["selective_partitions"]
    )
    print(
        f"claim holds: {selective['speedup_x']:.2f}x ≥ "
        f"{payload['speedup_bound']}x at selectivity "
        f"{selective['selectivity']:.2%}, outputs identical, no-equality "
        f"overhead {payload['regression']['overhead_x']:.4f}x"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small smoke configuration for CI (looser bounds)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit nonzero) when a recorded claim does not hold",
    )
    args = parser.parse_args()
    print(run_experiment(quick=args.quick))
    if args.check:
        check_claim()
    sys.exit(0)
