#!/usr/bin/env python3
"""Run every experiment (E1–E12) and print all reconstructed tables.

Usage:  python benchmarks/run_all.py [e1 e5 ...]

This is the human-facing entry point; ``pytest benchmarks/
--benchmark-only`` runs the same sweeps with timing statistics and
claim assertions.  Each experiment also writes its table to
``benchmarks/results/``.
"""

from __future__ import annotations

import importlib
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

EXPERIMENTS = [
    ("e1", "bench_e1_inorder_breakage"),
    ("e2", "bench_e2_throughput_vs_rate"),
    ("e3", "bench_e3_latency_vs_k"),
    ("e4", "bench_e4_memory"),
    ("e5", "bench_e5_purge"),
    ("e6", "bench_e6_optimizations"),
    ("e7", "bench_e7_query_length"),
    ("e8", "bench_e8_negation"),
    ("e9", "bench_e9_window"),
    ("e10", "bench_e10_rfid"),
    ("e11", "bench_e11_aggressive"),
    ("e12", "bench_e12_kslack"),
    ("e13", "bench_e13_partitioning"),
    ("e14", "bench_e14_kleene"),
    ("e15", "bench_e15_multiquery"),
    ("e16", "bench_e16_batch_parallel"),
    ("e17", "bench_e17_recovery"),
    ("e18", "bench_e18_observability"),
    ("e19", "bench_e19_equality_index"),
    ("e20", "bench_e20_speculative"),
    ("e21", "bench_e21_ingest_soak"),
    ("e22", "bench_e22_latency_attribution"),
    ("e23", "bench_e23_pipeline_scaling"),
]


def main(argv: list) -> int:
    selected = {name.lower() for name in argv} or {name for name, __ in EXPERIMENTS}
    for name, module_name in EXPERIMENTS:
        if name not in selected:
            continue
        module = importlib.import_module(module_name)
        started = time.perf_counter()
        text = module.run_experiment()
        elapsed = time.perf_counter() - started
        print(text)
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
