"""E14 — Kleene closure under disorder (extension).

Extension experiment: the ``E+`` collect-all step (the signature
feature of SASE+, the successor language to the paper's) evaluated
under out-of-order arrival.  A Kleene collection is only final when its
anchor interval seals, so this experiment measures what that costs:

* correctness — the out-of-order engine must produce *exactly* the
  collections the oracle computes, at every disorder rate, while the
  in-order baseline both misses matches and reports **truncated
  collections** (a late element that belonged to an already-emitted
  collection is silently absent — a subtler corruption than a missed
  match);
* latency — Kleene results wait for their seal like negation results
  (≈K), on top of the match-completion time.
"""

import pytest

from repro import InOrderEngine, OutOfOrderEngine, parse
from repro.bench import oracle_truth
from repro.metrics import compare_keys, render_table, summarize_arrival_latency
from repro.streams import NoDisorder, RandomDelayModel
from repro.workloads import SyntheticWorkload

from common import write_result

RATES = [0.0, 0.1, 0.3, 0.5]
K = 30
EVENTS = 4000

QUERY = parse(
    "PATTERN SEQ(T1 a, T2+ ms, T3 c) "
    "WHERE a.part == c.part AND ms.part == a.part WITHIN 60",
    name="kleene_chain",
)


def _arrival(rate: float):
    disorder = RandomDelayModel(rate, K, seed=27) if rate else NoDisorder()
    workload = SyntheticWorkload(
        query_length=3,
        event_count=EVENTS,
        within=60,
        partitions=6,
        disorder=disorder,
        seed=28,
    )
    ordered, arrival = workload.generate()
    return ordered, arrival


def run_experiment() -> str:
    rows = []
    for rate in RATES:
        ordered, arrival = _arrival(rate)
        truth = oracle_truth(QUERY, ordered)
        ooo = OutOfOrderEngine(QUERY, k=K)
        ooo.run(list(arrival))
        inorder = InOrderEngine(QUERY)
        inorder.run(list(arrival))
        ooo_report = compare_keys(truth, ooo.result_set())
        in_report = compare_keys(truth, inorder.result_set())
        latency = summarize_arrival_latency(ooo.emissions, arrival)
        rows.append(
            [
                rate,
                len(truth),
                round(ooo_report.recall, 3),
                round(ooo_report.precision, 3),
                round(in_report.recall, 3),
                round(in_report.precision, 3),
                round(latency.mean, 1),
            ]
        )
    text = render_table(
        f"E14 — Kleene closure under disorder (SEQ(T1, T2+, T3), n={EVENTS}, K={K})",
        ["rate", "truth", "ooo_recall", "ooo_precision",
         "inorder_recall", "inorder_precision", "ooo_latency"],
        rows,
        note="match identity includes the collected set: a truncated "
             "collection counts as both a miss and a false positive",
    )
    return write_result("e14_kleene", text)


def test_e14_report(benchmark):
    text = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print(text)
    rows = [
        line.split()
        for line in text.splitlines()
        if line.strip() and line.strip()[0].isdigit()
    ]
    for row in rows:
        assert float(row[2]) == 1.0 and float(row[3]) == 1.0  # ooo exact
    # the baseline corrupts collections as soon as disorder appears
    disordered = [row for row in rows if float(row[0]) > 0]
    assert any(float(row[4]) < 1.0 or float(row[5]) < 1.0 for row in disordered)


@pytest.mark.parametrize("engine_name", ["ooo", "inorder"])
def test_e14_kernel(benchmark, engine_name):
    __, arrival = _arrival(0.3)

    def kernel():
        engine = (
            OutOfOrderEngine(QUERY, k=K)
            if engine_name == "ooo"
            else InOrderEngine(QUERY)
        )
        engine.feed_many(arrival)
        engine.close()
        return len(engine.results)

    benchmark(kernel)
