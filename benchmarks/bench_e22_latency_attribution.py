"""E22 — Latency attribution: overhead, stage identity, flight recorder.

Not a paper figure: this experiment prices and validates the
cross-layer observability added to the ingestion gateway — per-frame
span attribution (``repro_stage_seconds``), the telemetry sidecar, and
the crash flight recorder.  Three cells:

* **overhead** — the same direct-drive admission workload through three
  gateways: ``pre_pr`` (a control subclass whose ``admit_frame`` /
  ``_advance_watermark`` are the previous bodies verbatim, with none of
  the span/flight hooks), ``disabled`` (current code, observability
  off), and ``enabled`` (metrics + spans + flight recording all on).
  Best-of-N wall clock isolates what the disabled path costs — it must
  stay within 3% of the pre-PR control — and what full attribution
  costs when switched on.
* **identity** — a loopback socket soak with the telemetry sidecar
  live: ``/metrics`` is scraped mid-stream (a scrape must never block
  or corrupt admission), and after the soak every sealed cohort is
  audited for the attribution identity — the ack-path stage latencies
  (queue/admit/feed/hold/sync/ack) must sum to the measured end-to-end
  ack latency within 5%.  Zero violating cohorts is the claim.
* **crash** — a fault-injected gateway dies mid-ingest; the flight
  recorder must leave a parseable ``flight.jsonl`` behind and
  ``repro explain --flight`` must read it and name a proximate stall.

Claims (the CI ``--check`` gate):

* disabled-path throughput is within **3%** of the pre-PR control
  (best-of-N on an idle machine; CI treats it as a smoke bound);
* every soak cohort satisfies the stage-sum == e2e identity (≤ 5%
  relative error), and the mid-soak scrape returned stage samples;
* the crash dump exists, parses, and ``explain --flight`` exits 0.

Writes ``BENCH_e22.json`` at the repo root next to the rendered table
in ``benchmarks/results/``.  ``--quick`` runs a smaller configuration.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional

sys.path.insert(0, str(Path(__file__).parent))

from repro import OutOfOrderEngine, parse
from repro.cli import main as cli_main
from repro.core.errors import ReproError
from repro.faultinject import CrashError, FaultInjector
from repro.ingest import (
    EventSchema,
    FieldSpec,
    GatewayConfig,
    IngestClient,
    IngestGateway,
    StreamSchema,
    serve_in_thread,
)
from repro.ingest.admission import AdmissionOutcome
from repro.metrics import render_table
from repro.obs import MetricsRegistry
from repro.obs.export import parse_prometheus
from repro.obs.flight import FlightRecorder, analyze_flight, load_flight
from repro.obs.httpserv import http_get
from repro.obs.span import mint_span

from common import write_result

JSON_PATH = Path(__file__).parent.parent / "BENCH_e22.json"

QUERY = "PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 20"
FRAMES = 20000
REPEATS = 5
SOAK_PAIRS = 400
QUICK_FRAMES = 4000
QUICK_REPEATS = 3
QUICK_SOAK_PAIRS = 120


class _PrePRGateway(IngestGateway):
    """The gateway exactly as shipped before this PR: no span hooks.

    ``admit_frame`` and ``_advance_watermark`` below are the previous
    bodies verbatim — no ``self._spans`` reads, no flight notes, no lag
    panel — so the a/b comparison isolates exactly what the disabled
    observability path adds per admitted frame.
    """

    def admit_frame(
        self,
        source: str,
        etype: Any,
        attrs: Any,
        now: Optional[float] = None,
        span: Any = None,
    ) -> Dict[str, Any]:
        if self.crashed:
            raise ReproError("gateway crashed; rebuild it to recover")
        if now is None:
            now = self._clock()
        self._remember_source(source)
        pressure = self.pressure()
        if pressure >= self.config.hard_pressure:
            self.busy_total += 1
            if self._c_busy is not None:
                self._c_busy.inc()
            return {
                "status": "busy",
                "retry_after": self.config.retry_after,
                "pressure": round(pressure, 4),
            }
        admission = self.admission.admit(source, etype, attrs)
        if admission.outcome is AdmissionOutcome.QUARANTINED:
            if self._c_quarantined is not None:
                self._c_quarantined.inc()
            transition = self.liveness.connect(source, now)
            if transition is not None:
                self._note_transition(transition)
            return {"status": "quarantined", "reason": admission.reason}
        if admission.outcome is AdmissionOutcome.DUPLICATE:
            if self._c_duplicates is not None:
                self._c_duplicates.inc()
            transition = self.liveness.connect(source, now)
            if transition is not None:
                self._note_transition(transition)
            return {"status": "duplicate"}
        event = admission.event
        transition = self.liveness.observe(source, event.ts, now)
        if transition is not None:
            self._note_transition(transition)
        try:
            self.runner.feed(event)
            self._advance_watermark()
        except CrashError:
            self._note_crash()
            raise
        if self._c_admitted is not None:
            self._c_admitted.inc()
        ack: Dict[str, Any] = {"status": "admitted"}
        if pressure >= self.config.soft_pressure:
            band = self.config.hard_pressure - self.config.soft_pressure
            depth = (pressure - self.config.soft_pressure) / band if band else 1.0
            ack["throttle"] = round(self.config.retry_after * min(1.0, depth), 6)
            self.throttled_total += 1
        return ack

    def _advance_watermark(self) -> None:
        punctuation = self.liveness.watermarks.advance()
        if punctuation is not None:
            self.runner.feed(punctuation)
        if self._g_watermark is not None:
            self._g_watermark.set(self.liveness.merged_watermark())


def _schema() -> StreamSchema:
    fields = [FieldSpec("ts", "int"), FieldSpec("x", "int")]
    return StreamSchema(
        "attrib",
        t_event="ts",
        source_slack=2,
        ordering_scope="global",
        events=[EventSchema("A", list(fields)), EventSchema("B", list(fields))],
    )


def _frames(count: int):
    frames = []
    for i in range(count // 2):
        x = i % 5
        frames.append(("A", {"ts": 2 * i, "x": x}))
        frames.append(("B", {"ts": 2 * i + 1, "x": x}))
    return frames


def _build(
    mode: str, frames: int, directory=None, fault=None, telemetry_port=None
) -> IngestGateway:
    pattern = parse(QUERY)
    config = GatewayConfig(
        _schema(), liveness_timeout=60.0, dedupe_window=4096,
        telemetry_port=telemetry_port,
    )
    cls = _PrePRGateway if mode == "pre_pr" else IngestGateway
    kwargs: Dict[str, Any] = {}
    if mode == "enabled":
        kwargs = {"metrics": MetricsRegistry(), "flight": FlightRecorder()}
    return cls(
        lambda: OutOfOrderEngine(pattern, k=frames + 8),
        config,
        directory=directory,
        fault=fault,
        **kwargs,
    )


# -- cell 1: overhead --------------------------------------------------------------


def _drive_once(mode: str, frames) -> float:
    gateway = _build(mode, len(frames))
    with_spans = mode == "enabled"
    started = time.perf_counter()
    for i, (etype, attrs) in enumerate(frames):
        span = mint_span(float(i)) if with_spans else None
        gateway.admit_frame("src0", etype, attrs, now=float(i), span=span)
        if i % 256 == 255:
            gateway.sync_acks()
    gateway.sync_acks()
    elapsed = time.perf_counter() - started
    gateway.seal()
    return elapsed


def _overhead_cell(frame_count: int, repeats: int):
    frames = _frames(frame_count)
    best: Dict[str, float] = {}
    # One untimed warmup pass first: whoever runs cold pays import and
    # allocator setup, and pre_pr always leads the rotation below.
    _drive_once("pre_pr", frames[: max(2, frame_count // 10)])
    # Interleave the modes inside each repeat so machine noise (thermal
    # drift, a background process) hits all three evenly.
    for __ in range(repeats):
        for mode in ("pre_pr", "disabled", "enabled"):
            elapsed = _drive_once(mode, frames)
            best[mode] = min(best.get(mode, elapsed), elapsed)
    rows = []
    for mode in ("pre_pr", "disabled", "enabled"):
        rows.append(
            {
                "mode": mode,
                "frames": frame_count,
                "best_s": round(best[mode], 4),
                "throughput_fps": round(frame_count / best[mode], 1),
                "vs_pre_pr": round(best[mode] / best["pre_pr"], 4),
            }
        )
    return rows


# -- cell 2: identity over a live socket -------------------------------------------


def _identity_cell(pairs: int):
    gateway = _build("enabled", 2 * pairs, telemetry_port=0)
    handle = serve_in_thread(gateway)
    scrape: Dict[str, Any] = {}

    def scrape_midstream():
        # Fires while frames are in flight: the claim is that a scrape
        # neither blocks admission nor reads a torn registry.
        status, body = http_get(
            "127.0.0.1", gateway.telemetry_port, "/metrics", timeout=10.0
        )
        samples = parse_prometheus(body) if status == 200 else {}
        scrape["status"] = status
        scrape["stage_samples"] = sum(
            1 for key in samples if key.startswith("repro_stage_seconds")
        )
        scrape["watermark_gauges"] = sum(
            1 for key in samples if key.startswith("repro_source_watermark")
        )

    try:
        client = IngestClient("127.0.0.1", gateway.port, "src0", "attrib", window=64)
        client.connect()
        scraper = threading.Thread(target=scrape_midstream)
        frames = _frames(2 * pairs)
        for i, (etype, attrs) in enumerate(frames):
            if i == len(frames) // 2:
                scraper.start()
            client.send(etype, dict(attrs))
        report = client.close()
        scraper.join(timeout=15.0)
    finally:
        handle.stop(seal=True)

    cohorts = list(gateway._spans.cohorts)
    violations = 0
    worst_rel = 0.0
    for record in cohorts:
        e2e = record["e2e_sum"]
        total = sum(record["stage_sums"].values())
        rel = abs(total - e2e) / e2e if e2e else 0.0
        worst_rel = max(worst_rel, rel)
        if rel > 0.05:
            violations += 1
    return {
        "cell": "identity",
        "frames": 2 * pairs,
        "cohorts": len(cohorts),
        "identity_violations": violations,
        "worst_rel_error": round(worst_rel, 6),
        "scrape_status": scrape.get("status"),
        "scrape_stage_samples": scrape.get("stage_samples", 0),
        "scrape_watermark_gauges": scrape.get("watermark_gauges", 0),
        "client_p50_ack_s": round(
            sorted(report.latencies)[len(report.latencies) // 2], 6
        ),
    }


# -- cell 3: the crash flight dump -------------------------------------------------


def _crash_cell(pairs: int):
    frames = _frames(2 * pairs)
    crash_at = len(frames) // 2
    with tempfile.TemporaryDirectory(prefix="repro-e22-") as directory:
        gateway = _build(
            "enabled", len(frames), directory=directory,
            fault=FaultInjector(crash_at=[crash_at]),
        )
        crashed = False
        for i, (etype, attrs) in enumerate(frames):
            try:
                gateway.admit_frame("src0", etype, attrs, now=float(i))
            except CrashError:
                crashed = True
                break
        dump = Path(directory) / "flight.jsonl"
        header, records = load_flight(dump.read_text(encoding="utf-8"))
        report = analyze_flight(header, records)
        # The CLI prints the rendered dump; swallow it — the table
        # below reports the exit code and verdict.
        sink = io.StringIO()
        with contextlib.redirect_stdout(sink):
            explain_exit = cli_main(["explain", "--flight", directory])
        assert "proximate stall:" in sink.getvalue()
        return {
            "cell": "crash",
            "crashed": crashed,
            "dump_reason": header.get("reason"),
            "flight_records": len(records),
            "verdict": report.verdict,
            "explain_exit": explain_exit,
        }


# -- harness -----------------------------------------------------------------------


def run_experiment(quick: bool = False) -> str:
    frame_count = QUICK_FRAMES if quick else FRAMES
    repeats = QUICK_REPEATS if quick else REPEATS
    pairs = QUICK_SOAK_PAIRS if quick else SOAK_PAIRS

    overhead = _overhead_cell(frame_count, repeats)
    identity = _identity_cell(pairs)
    crash = _crash_cell(pairs)

    text = render_table(
        f"E22 — attribution overhead, direct drive, {frame_count} frames "
        f"(best of {repeats})",
        ["mode", "best s", "frames/s", "vs pre-PR"],
        [
            [row["mode"], row["best_s"], row["throughput_fps"], row["vs_pre_pr"]]
            for row in overhead
        ],
    )
    text += render_table(
        "E22b — stage-sum identity + mid-soak scrape over TCP",
        ["frames", "cohorts", "violations", "worst rel err", "scrape", "stage samples"],
        [
            [
                identity["frames"],
                identity["cohorts"],
                identity["identity_violations"],
                identity["worst_rel_error"],
                identity["scrape_status"],
                identity["scrape_stage_samples"],
            ]
        ],
    )
    text += render_table(
        "E22c — crash flight dump",
        ["reason", "records", "verdict", "explain exit"],
        [
            [
                crash["dump_reason"],
                crash["flight_records"],
                crash["verdict"],
                crash["explain_exit"],
            ]
        ],
    )

    payload = {
        "experiment": "e22",
        "quick": quick,
        "overhead": overhead,
        "identity": identity,
        "crash": crash,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return write_result("e22_latency_attribution", text)


def _assert_claims(payload) -> None:
    modes = {row["mode"]: row for row in payload["overhead"]}
    assert modes["disabled"]["vs_pre_pr"] <= 1.03, (
        f"disabled observability regressed past 3%: {modes['disabled']}"
    )
    identity = payload["identity"]
    assert identity["cohorts"] >= 1, f"soak produced no cohorts: {identity}"
    assert identity["identity_violations"] == 0, (
        f"stage sums diverged from e2e: {identity}"
    )
    assert identity["scrape_status"] == 200, f"mid-soak scrape failed: {identity}"
    assert identity["scrape_stage_samples"] >= 1, (
        f"scrape saw no stage histograms: {identity}"
    )
    crash = payload["crash"]
    assert crash["crashed"], f"fault injection never fired: {crash}"
    assert crash["dump_reason"] == "crash", f"wrong dump reason: {crash}"
    assert crash["flight_records"] >= 1, f"empty flight dump: {crash}"
    assert crash["explain_exit"] == 0, f"explain --flight failed: {crash}"


def test_e22_report(benchmark):
    text = benchmark.pedantic(lambda: run_experiment(quick=True), rounds=1, iterations=1)
    print(text)
    assert "E22" in text and "E22b" in text and "E22c" in text
    _assert_claims(json.loads(JSON_PATH.read_text(encoding="utf-8")))


def check_claim() -> None:
    """Assert the recorded attribution claims (CI gate)."""
    payload = json.loads(JSON_PATH.read_text(encoding="utf-8"))
    _assert_claims(payload)
    modes = {row["mode"]: row for row in payload["overhead"]}
    identity = payload["identity"]
    print(
        f"claim holds: disabled path at {modes['disabled']['vs_pre_pr']}x pre-PR, "
        f"{identity['cohorts']} cohorts all satisfy stage-sum == e2e "
        f"(worst rel err {identity['worst_rel_error']}), "
        f"crash dump verdict: {payload['crash']['verdict']!r}"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small smoke configuration for CI",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit nonzero) when a recorded claim does not hold",
    )
    args = parser.parse_args()
    print(run_experiment(quick=args.quick))
    if args.check:
        check_claim()
    sys.exit(0)
