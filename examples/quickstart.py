#!/usr/bin/env python3
"""Quickstart: pattern queries over an out-of-order stream in 60 lines.

Run:  python examples/quickstart.py

Walks through the library's core loop:
1. write a pattern query in the SASE-style language;
2. feed events whose ARRIVAL order differs from their OCCURRENCE order;
3. watch the engine emit each match the moment its last piece arrives —
   including matches completed by late events, which the classic
   in-order architecture silently drops.
"""

from repro import Event, InOrderEngine, OutOfOrderEngine, parse

# A three-step sequence with a join predicate and a time window: an
# order is placed, paid, and shipped — same order id, within 100 ticks.
QUERY = parse(
    """
    PATTERN SEQ(PLACED p, PAID y, SHIPPED s)
    WHERE p.order == y.order AND y.order == s.order
    WITHIN 100
    """,
    name="fulfilment",
)

# Occurrence order is p(1) → y(5) → s(9), but the payment event is
# delayed in the network and ARRIVES last.
ARRIVAL = [
    Event("PLACED", 1, {"order": 7}),
    Event("SHIPPED", 9, {"order": 7}),
    Event("PAID", 5, {"order": 7}),  # late!
]


def main() -> None:
    print("query:", QUERY)
    print()

    # The paper's engine: K is the disorder bound — a promise that an
    # event is never delayed past K time units behind the stream clock.
    engine = OutOfOrderEngine(QUERY, k=10)
    print("feeding events in arrival order:")
    for event in ARRIVAL:
        emitted = engine.feed(event)
        tag = "late" if event.ts < engine.clock.now else "    "
        print(f"  [{tag}] {event.etype}@{event.ts}  ->  {emitted or '-'}")
    engine.close()
    print(f"out-of-order engine found {len(engine.results)} match(es)")
    print()

    # The same stream through the 2006 state of the art, which assumes
    # arrival order == occurrence order:
    baseline = InOrderEngine(QUERY)
    baseline.run(list(ARRIVAL))
    print(f"in-order baseline found  {len(baseline.results)} match(es)")
    print()
    print("The baseline missed the match: when PAID@5 finally arrived, the")
    print("baseline had already filed SHIPPED@9 and never looks back; the")
    print("out-of-order engine splices the late event into its timestamp-")
    print("sorted stacks and completes the sequence exactly once.")


if __name__ == "__main__":
    main()
