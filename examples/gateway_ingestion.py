#!/usr/bin/env python3
"""Multi-source ingestion through the fault-tolerant gateway, end to end.

Run:  python examples/gateway_ingestion.py

The operational drill docs/operations.md points at:

1. declare a stream schema (t_event field, per-event field specs,
   per-source slack) and start the TCP gateway in front of an
   out-of-order engine with WAL-backed durability;
2. drive it from three concurrent retrying clients, one of them
   scripted to tear its connection mid-stream and double-send frames
   (lost acks, duplicate deliveries);
3. crash the gateway mid-ingest with a deterministic fault injector,
   restart it over the same directory on the same port, and let the
   clients ride through on backoff;
4. check the sealed result set against the offline oracle: exactly-once
   admission means the union of matches delivered by both incarnations
   equals the uninterrupted run — nothing lost, nothing doubled;
5. read the black box: the crashed incarnation dumped a flight
   recording (``flight.jsonl``) on its way down, scrape the restarted
   gateway's live telemetry endpoints, and name the proximate stall
   with the same analysis ``repro explain --flight`` runs.

``--keep DIR`` runs the drill in DIR instead of a temp directory so
the flight dump survives for artifact upload (CI does this).
"""

import argparse
import json
import tempfile
import threading
import time
from pathlib import Path

from repro import OutOfOrderEngine, parse
from repro.core.oracle import OfflineOracle
from repro.faultinject import FaultInjector
from repro.ingest import (
    ClientFaultPlan,
    EventSchema,
    FieldSpec,
    GatewayConfig,
    IngestClient,
    IngestGateway,
    StreamSchema,
    serve_in_thread,
)
from repro.obs import MetricsRegistry
from repro.obs.flight import FlightRecorder, analyze_flight, load_flight
from repro.obs.httpserv import http_get

QUERY = "PATTERN SEQ(ORDER o, SHIP s) WHERE o.sku == s.sku WITHIN 40"
PAIRS_PER_SOURCE = 40
SOURCES = ("warehouse-1", "warehouse-2", "warehouse-3")


def build_schema() -> StreamSchema:
    fields = [FieldSpec("ts", "int"), FieldSpec("sku", "int")]
    return StreamSchema(
        "shipments",
        t_event="ts",
        events=[EventSchema("ORDER", fields), EventSchema("SHIP", fields)],
        ordering_scope="global",
        source_slack=2,
    )


def build_gateway(directory: Path, port: int = 0, fault=None) -> IngestGateway:
    config = GatewayConfig(
        build_schema(),
        port=port,
        liveness_timeout=30.0,
        dedupe_window=4096,
        telemetry_port=0,  # sidecar on an ephemeral port
    )
    pattern = parse(QUERY)
    # K must cover the occurrence-time skew between racing sources.
    return IngestGateway(
        lambda: OutOfOrderEngine(pattern, k=4 * PAIRS_PER_SOURCE),
        config,
        directory=str(directory),
        fault=fault,
        metrics=MetricsRegistry(),
        flight=FlightRecorder(),
    )


def frames_for(source_index: int):
    """Disjoint sku spaces per source keep the oracle truth separable."""
    frames = []
    for i in range(PAIRS_PER_SOURCE):
        sku = source_index * 1000 + i
        frames.append(("ORDER", {"ts": 2 * i, "sku": sku}))
        frames.append(("SHIP", {"ts": 2 * i + 1, "sku": sku}))
    return frames


def oracle_truth(schema: StreamSchema):
    events = []
    for index in range(len(SOURCES)):
        for etype, attrs in frames_for(index):
            events.append(schema.build_event(etype, dict(attrs)))
    return OfflineOracle(parse(QUERY)).evaluate_set(events)


def run_drill(directory: Path) -> None:
    # Crash the gateway after the 60th WAL element: mid-ingest, with
    # every client still holding unacked frames in flight.
    first = build_gateway(directory, fault=FaultInjector(crash_at=[60]))
    handle = serve_in_thread(first)
    port = handle.port
    print(f"gateway listening on 127.0.0.1:{port} (WAL in {directory.name}/)")

    restarted = {}

    def watchdog():
        while not first.crashed:
            time.sleep(0.005)
        handle.stop(seal=False)
        second = build_gateway(directory, port=port)
        print(
            f"gateway crashed and restarted on :{port} — "
            f"replayed {second.recovered_frames} WAL frames"
        )
        restarted["gateway"] = second
        restarted["handle"] = serve_in_thread(second)

    supervisor = threading.Thread(target=watchdog, daemon=True)
    supervisor.start()

    # warehouse-3's client is deliberately unreliable: it tears the
    # connection after frame 10 (acks lost, must resend) and sends
    # frame 5 twice.  Admission absorbs both.
    plans = {
        "warehouse-3": ClientFaultPlan(torn_after_send=[10], duplicate_send=[5])
    }
    # Connect every client before any of them streams: the hello
    # registers each source in the min-merge, so no source can race
    # punctuation past a sibling that has not spoken yet.
    clients = {
        name: IngestClient(
            "127.0.0.1", port, name, "shipments",
            window=16, fault_plan=plans.get(name),
        )
        for name in SOURCES
    }
    for client in clients.values():
        client.connect()
    reports = {}

    def drive(index: int, name: str):
        client = clients[name]
        for etype, attrs in frames_for(index):
            client.send(etype, dict(attrs))
        reports[name] = client.close()

    threads = [
        threading.Thread(target=drive, args=(index, name))
        for index, name in enumerate(SOURCES)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    supervisor.join(timeout=10.0)
    second = restarted["gateway"]

    # Scrape the restarted incarnation's live telemetry before it
    # stops: the sidecar shares the gateway's loop, so a scrape never
    # blocks admission.
    t_port = second.telemetry_port
    __, health_body = http_get("127.0.0.1", t_port, "/healthz")
    health = json.loads(health_body)
    __, metrics_body = http_get("127.0.0.1", t_port, "/metrics")
    stage_samples = sum(
        1 for line in metrics_body.splitlines()
        if line.startswith("repro_stage_seconds")
    )
    print(
        f"telemetry on :{t_port} — status={health['status']} "
        f"watermark={health['watermark']} "
        f"({stage_samples} stage-latency samples on /metrics)"
    )
    restarted["handle"].stop(seal=True)

    total = len(SOURCES) * 2 * PAIRS_PER_SOURCE
    for name in SOURCES:
        report = reports[name]
        print(
            f"  {name}: admitted={report.admitted} duplicates={report.duplicates} "
            f"reconnects={report.reconnects} resends={report.resends}"
        )
    admitted = second.recovered_frames + second.admission.admitted
    print(f"distinct frames through admission: {admitted}/{total}")

    # Exactly-once delivery: results() is per-incarnation (the
    # delivery log suppresses matches the first gateway already
    # delivered), so the statement is about the union.
    before = {m.key() for m in first.results()}
    after = {m.key() for m in second.results()}
    truth = oracle_truth(build_schema())
    print(f"matches before crash: {len(before)}, after recovery: {len(after)}")
    print(f"delivered twice: {len(before & after)} (want 0)")
    print(f"union equals oracle truth: {before | after == truth} "
          f"({len(before | after)}/{len(truth)})")

    # The black box: the crashed incarnation dumped its flight ring on
    # the way down; this is the same analysis `repro explain --flight`
    # runs post mortem.
    dump = directory / "flight.jsonl"
    header, records = load_flight(dump.read_text(encoding="utf-8"))
    report = analyze_flight(header, records)
    print(
        f"flight recording: {len(records)} records "
        f"(reason: {header['reason']}, seq {header['seq']})"
    )
    print(f"proximate stall: {report.verdict} — {report.cause}")
    print(f"inspect it yourself: python -m repro explain --flight {dump}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument(
        "--keep", metavar="DIR", default=None,
        help="run in DIR and keep the WAL + flight dump (CI artifacts)",
    )
    args = parser.parse_args()
    if args.keep:
        directory = Path(args.keep)
        directory.mkdir(parents=True, exist_ok=True)
        run_drill(directory)
        print(f"kept WAL and flight dump in {directory}/")
    else:
        with tempfile.TemporaryDirectory() as tmp:
            run_drill(Path(tmp))


if __name__ == "__main__":
    main()
