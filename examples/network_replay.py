#!/usr/bin/env python3
"""Simulate a failing sensor network, record the trace, replay it exactly.

Run:  python examples/network_replay.py

Operational workflow for debugging out-of-order incidents:

1. simulate a multi-hop sensor network where a relay node fails and
   recovers (the paper's "machine failure" disorder cause) — the
   recovery flushes a burst of stale events;
2. size the disorder bound K two ways — worst-case vs 99th-percentile —
   and see the memory/correctness trade-off;
3. record the exact arrival trace to a JSON-lines file and replay it
   into a fresh engine, reproducing results *and* internal counters
   bit-for-bit (the trace file is what you attach to a bug report).
"""

import tempfile
from pathlib import Path

from repro import OutOfOrderEngine, parse
from repro.core.oracle import OfflineOracle
from repro.metrics import print_table
from repro.netsim import (
    ConstantLatency,
    FailureSchedule,
    NetworkSimulator,
    Topology,
    UniformLatency,
)
from repro.streams import (
    MaxObservedK,
    QuantileK,
    SyntheticSource,
    dump_trace,
    load_trace,
    measure_disorder,
)

QUERY = parse(
    "PATTERN SEQ(TEMP t, PRESSURE p, ALARM a) "
    "WHERE t.zone == p.zone AND p.zone == a.zone WITHIN 120",
    name="cascade",
)


def build_network():
    """Two sensor sites behind relays; relay-1 fails mid-run."""
    topology = Topology(["site1", "site2", "relay1", "relay2", "sink"])
    topology.add_link("site1", "relay1", UniformLatency(0, 5))
    topology.add_link("site2", "relay2", UniformLatency(0, 5))
    topology.add_link("relay1", "sink", ConstantLatency(2))
    topology.add_link("relay2", "sink", ConstantLatency(2))
    failures = FailureSchedule()
    failures.add_outage("relay1", 2_000, 2_600)  # 600-tick outage
    return NetworkSimulator(topology, failures=failures, seed=17)


def main() -> None:
    types = ["TEMP", "PRESSURE", "ALARM"]

    def attrs(rng, ts):
        return {"zone": rng.randint(1, 4)}

    streams = {
        "site1": SyntheticSource(types, 2500, seed=1, interval=2, attr_maker=attrs).take(2500),
        "site2": SyntheticSource(types, 2500, seed=2, interval=2, attr_maker=attrs).take(2500),
    }
    simulator = build_network()
    result = simulator.run(streams)
    arrival = result.arrival_order
    stats = measure_disorder(arrival)
    print(f"delivered {len(arrival)} events; {stats}")
    print(f"(relay1 outage flushed a burst: max displacement {stats.max_delay} ticks)")
    print()

    # --- sizing K: worst case vs quantile ------------------------------------
    worst, q99 = MaxObservedK(), QuantileK(quantile=0.99, window=5000)
    for event in arrival:
        worst.observe(event)
        q99.observe(event)

    all_events = [e for events in streams.values() for e in events]
    truth = OfflineOracle(QUERY).evaluate_set(all_events)
    rows = []
    for label, k in (("K = max observed", worst.current()), ("K = p99 observed", q99.current())):
        engine = OutOfOrderEngine(QUERY, k=k)
        engine.run(list(arrival))
        rows.append(
            [
                label,
                k,
                len(engine.results),
                f"{len(engine.result_set() & truth) / max(1, len(truth)):.3f}",
                engine.stats.late_dropped,
                engine.stats.peak_state_size,
            ]
        )
    print_table(
        f"Sizing the disorder bound ({len(truth)} true matches)",
        ["policy", "K", "matches", "recall", "late dropped", "peak state"],
        rows,
        note="p99 K trades a few late-dropped stragglers for much less state",
    )

    # --- record & replay -------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "incident-2026-07-07.jsonl"
        dump_trace(arrival, path)
        print(f"recorded arrival trace: {path.name} ({path.stat().st_size:,} bytes)")

        original = OutOfOrderEngine(QUERY, k=worst.current())
        original.run(list(arrival))
        replayed = OutOfOrderEngine(QUERY, k=worst.current())
        replayed.run(load_trace(path))

        identical_results = replayed.result_set() == original.result_set()
        identical_counters = replayed.stats.as_dict() == original.stats.as_dict()
        print(f"replay reproduces results:  {identical_results}")
        print(f"replay reproduces counters: {identical_counters}")


if __name__ == "__main__":
    main()
