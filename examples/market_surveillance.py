#!/usr/bin/env python3
"""Market surveillance: Kleene collections + partitioned evaluation.

Run:  python examples/market_surveillance.py

A surveillance desk watches a multi-venue equities feed (venues report
through independent gateways, so the merged feed is out of order) for
*accumulation* patterns: a price rise with every trade during the rise
collected for volume analysis.

Demonstrates the two extension features working together:

* the Kleene query ``SEQ(TICK a, TRADE+ ts, TICK c)`` collects all
  same-symbol trades between two rising ticks — finalised only when
  the interval seals, so late-arriving trades are never missed;
* the ``PartitionedEngine`` hash-routes by symbol, cutting construction
  work for a multi-symbol feed;
* a ``CompositeEventFactory`` aggregates each collection into a single
  ``ACCUMULATION`` alert event carrying the total collected volume.
"""

from repro import (
    CompositeEventFactory,
    OfflineOracle,
    OutOfOrderEngine,
    PartitionedEngine,
    QueryPlan,
)
from repro.metrics import print_table
from repro.streams import interleave_by_arrival, measure_disorder, required_k
from repro.workloads import StockFeedGenerator, accumulation_query


def main() -> None:
    # 1. Four venues, each internally ordered, merged by arrival.
    venues = [
        StockFeedGenerator(count=1200, trade_rate=0.15, seed=100 + i).generate()
        for i in range(4)
    ]
    arrival = interleave_by_arrival(venues, seed=9, burstiness=8)
    stats = measure_disorder(arrival)
    k = required_k(arrival)
    print(f"merged feed: {len(arrival)} events from 4 venues, "
          f"disorder rate {stats.rate:.1%}, required K = {k}")

    query = accumulation_query(within=12)
    print(f"query: {query}")
    print()

    # 2. Partitioned (by symbol) vs flat: same results, less join work.
    flat = OutOfOrderEngine(query, k=k)
    flat.run(list(arrival))
    partitioned = PartitionedEngine(query, k=k)
    partitioned.run(list(arrival))
    assert partitioned.result_set() == flat.result_set()

    all_events = [event for venue in venues for event in venue]
    truth = OfflineOracle(query).evaluate_set(all_events)
    print_table(
        "Accumulation detection (identical results, different work)",
        ["engine", "matches", "exact vs oracle", "partial combos", "partitions"],
        [
            ["flat out-of-order", len(flat.results),
             flat.result_set() == truth, flat.stats.partial_combinations, 1],
            ["partitioned by sym", len(partitioned.results),
             partitioned.result_set() == truth,
             partitioned.merged_substats().partial_combinations,
             partitioned.partition_count()],
        ],
    )

    # 3. Alert stream: aggregate each collected trade set.
    plan = QueryPlan(
        PartitionedEngine(query, k=k),
        transformation=CompositeEventFactory(
            "ACCUMULATION",
            {
                "sym": "a.sym",
                "rise": lambda b: b["c"]["price"] - b["a"]["price"],
                "trades": lambda b: len(b["ts"]),
                "volume": lambda b: sum(t["volume"] for t in b["ts"]),
            },
        ),
    )
    alerts = plan.run(arrival)
    print(f"alert stream: {len(alerts)} ACCUMULATION composites")
    biggest = max(alerts, key=lambda a: a["volume"], default=None)
    if biggest is not None:
        print(
            f"largest: {biggest['sym']} rose {biggest['rise']} with "
            f"{biggest['trades']} trades totalling {biggest['volume']:,} shares"
        )


if __name__ == "__main__":
    main()
