#!/usr/bin/env python3
"""Real-time intrusion detection with conservative vs aggressive alerting.

Run:  python examples/intrusion_detection.py

The paper's second motivating application.  Security sensors report
through independent collectors, so the merged audit stream is out of
order.  Two signatures run concurrently:

* brute force  — SEQ(LOGIN_FAIL x3, LOGIN_OK), same source;
* exfiltration — SEQ(PRIV_READ, !AUDIT, UPLOAD), same source — a
  *negation* query, where disorder is genuinely dangerous: a late AUDIT
  record can retroactively clear a suspect.

The conservative engine (the paper's choice) holds each exfiltration
alert until no audit record can still arrive; the aggressive extension
alerts immediately and issues a revocation if a late audit clears the
host — the operator chooses the trade-off.
"""

from repro import AggressiveEngine, MultiQueryPlan, OutOfOrderEngine, QueryPlan
from repro.core.oracle import OfflineOracle
from repro.metrics import print_table, summarize_arrival_latency
from repro.streams import RandomDelayModel
from repro.workloads import IntrusionGenerator, brute_force_query, exfiltration_query


def main() -> None:
    # 1. A day of traffic: benign hosts plus a few genuine attackers.
    generator = IntrusionGenerator(
        hosts=60, duration=30_000, background_rate=0.4, attackers=6, seed=443
    )
    trace = generator.generate()
    print(
        f"audit stream: {len(trace.events)} events, "
        f"{len(trace.brute_force_sources)} brute-force + "
        f"{len(trace.exfiltration_sources)} exfiltration attackers"
    )

    # 2. Collector skew: 35% of events delayed by up to 80 ticks.
    disorder_model = RandomDelayModel(rate=0.35, max_delay=80, seed=7)
    arrival, stats = disorder_model.arrange(trace.events)
    print(f"collector merge: {stats}")
    print()

    brute = brute_force_query(within=300)
    exfil = exfiltration_query(within=500)
    k = 80  # the collectors' documented maximum skew

    # 3. Both signatures on one stream via a multi-query plan.
    plans = MultiQueryPlan(
        [
            QueryPlan(OutOfOrderEngine(brute, k=k)),
            QueryPlan(OutOfOrderEngine(exfil, k=k)),
        ]
    )
    plans.run(arrival)
    brute_hits = {m.events[0]["src"] for m in plans.plans[0].matches}
    exfil_hits = {m.events[0]["src"] for m in plans.plans[1].matches}
    print_table(
        "Detections (conservative out-of-order engine)",
        ["signature", "alerts", "attackers caught", "of"],
        [
            ["brute force", len(plans.plans[0].matches),
             len(brute_hits & trace.brute_force_sources), len(trace.brute_force_sources)],
            ["exfiltration", len(plans.plans[1].matches),
             len(exfil_hits & trace.exfiltration_sources), len(trace.exfiltration_sources)],
        ],
    )

    # 4. Conservative vs aggressive on the negation signature.
    truth = OfflineOracle(exfil).evaluate_set(trace.events)
    conservative = OutOfOrderEngine(exfil, k=k)
    conservative.run(list(arrival))
    aggressive = AggressiveEngine(exfil, k=k)
    aggressive.run(list(arrival))

    conservative_latency = summarize_arrival_latency(conservative.emissions, arrival)
    aggressive_latency = summarize_arrival_latency(aggressive.emissions, arrival)
    print_table(
        "Exfiltration alerting: conservative vs aggressive",
        ["strategy", "alerts", "revoked", "net == truth", "mean alert latency", "p99"],
        [
            [
                "conservative (hold until sealed)",
                len(conservative.results),
                0,
                conservative.result_set() == truth,
                f"{conservative_latency.mean:.1f}",
                f"{conservative_latency.p99:.0f}",
            ],
            [
                "aggressive (alert + revoke)",
                len(aggressive.results),
                len(aggressive.revocations),
                aggressive.net_result_set() == truth,
                f"{aggressive_latency.mean:.1f}",
                f"{aggressive_latency.p99:.0f}",
            ],
        ],
        note="latency in events between evidence complete and alert raised",
    )
    if aggressive.revocations:
        example = aggressive.revocations[0]
        print(
            f"example revocation: alert on src={example.match.events[0]['src']} "
            f"withdrawn after late {example.caused_by.etype}@{example.caused_by.ts}"
        )


if __name__ == "__main__":
    main()
