#!/usr/bin/env python3
"""RFID shoplifting detection over a simulated store network.

Run:  python examples/rfid_supply_chain.py

The paper's lead application, end to end:

* a store generator produces tag trajectories (shelf → counter → exit),
  a controllable fraction of which skip the counter (shoplifting);
* each RFID reader streams over its own simulated wireless uplink with
  jittered latency, so the merged stream at the CEP engine is out of
  order;
* the shoplifting query — ``SEQ(SHELF_READ, !COUNTER_READ, EXIT_READ)``
  — runs on four engines, showing who detects what, how fast, and at
  what memory cost.
"""

from repro import (
    CompositeEventFactory,
    InOrderEngine,
    OutOfOrderEngine,
    QueryPlan,
    ReorderingEngine,
)
from repro.metrics import (
    compare_keys,
    print_table,
    summarize_arrival_latency,
)
from repro.core.oracle import OfflineOracle
from repro.netsim import UniformLatency, simulate_star
from repro.streams import measure_disorder
from repro.workloads import RfidStoreGenerator, shoplifting_query


def main() -> None:
    # 1. Store activity: 400 tagged items, 6% shoplifted.
    generator = RfidStoreGenerator(
        items=400, shoplift_rate=0.06, browse_rate=0.25, dwell=1500, seed=2007
    )
    trace = generator.generate()
    print(f"store trace: {len(trace.merged)} reads, "
          f"{len(trace.shoplifted_tags)} items shoplifted (ground truth)")

    # 2. Deliver each reader's stream over a jittery uplink.
    simulated = simulate_star(
        trace.by_reader, lambda i: UniformLatency(0, 150), seed=99
    )
    arrival = simulated.arrival_order
    disorder = measure_disorder(arrival)
    k = simulated.observed_disorder_bound()
    print(f"network merge: disorder rate {disorder.rate:.1%}, "
          f"max displacement {disorder.max_delay} ticks -> engine K={k}")
    print()

    # 3. The query, and ground truth from the offline oracle.
    query = shoplifting_query(within=2000)
    truth = OfflineOracle(query).evaluate_set(trace.merged)

    # 4. Compare engines on identical input.
    rows = []
    engines = {
        "out-of-order (paper)": OutOfOrderEngine(query, k=k),
        "in-order (SASE '06)": InOrderEngine(query),
        "buffer-and-sort": ReorderingEngine(query, k=k),
    }
    for label, engine in engines.items():
        engine.run(list(arrival))
        report = compare_keys(truth, engine.result_set())
        latency = summarize_arrival_latency(engine.emissions, arrival)
        rows.append(
            [
                label,
                len(engine.results),
                f"{report.recall:.2f}",
                f"{report.precision:.2f}",
                f"{latency.mean:.1f}",
                engine.stats.peak_state_size,
            ]
        )
    print_table(
        f"Shoplifting detection ({len(truth)} true thefts)",
        ["engine", "alerts", "recall", "precision", "mean latency (events)", "peak state"],
        rows,
        note="latency = events read between a theft completing and its alert",
    )

    # 5. Production shape: a QueryPlan emitting composite alert events.
    plan = QueryPlan(
        OutOfOrderEngine(query, k=k),
        transformation=CompositeEventFactory(
            "SHOPLIFT_ALERT",
            {"tag": "s.tag", "picked_at": "s.ts", "left_at": "e.ts"},
        ),
    )
    alerts = plan.run(arrival)
    caught = {alert["tag"] for alert in alerts}
    print(f"alert stream: {len(alerts)} SHOPLIFT_ALERT composites")
    print(f"ground truth coverage: {caught == trace.shoplifted_tags}")
    for alert in alerts[:3]:
        print(f"  e.g. {alert!r}")


if __name__ == "__main__":
    main()
