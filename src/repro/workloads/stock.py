"""Stock-tick workload: selectivity-controlled pattern matching.

A synthetic equities feed with per-symbol random-walk prices.  Its
role in the experiment suite is *selectivity control*: pattern queries
over price relations (``a.price < b.price``) have a tunable match
probability, which drives the optimisation experiments (E6) — the
benefit of construction probes and staged predicates depends directly
on predicate selectivity.

Canned queries:

* **rally** — three ticks of one symbol with strictly rising prices;
* **v-shape** — down tick then recovery above the starting price;
* **calm rise** — a rise with no large trade (negation) in between;
* **accumulation** — a rise with all trades collected (Kleene ``+``).
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.core.errors import ConfigurationError
from repro.core.event import Event
from repro.core.parser import parse
from repro.core.pattern import Pattern

TICK = "TICK"
TRADE = "TRADE"


def rally_query(within: int = 50, name: str = "rally") -> Pattern:
    """Three same-symbol ticks with strictly increasing price."""
    return parse(
        f"PATTERN SEQ({TICK} a, {TICK} b, {TICK} c) "
        "WHERE a.sym == b.sym AND b.sym == c.sym "
        "AND a.price < b.price AND b.price < c.price "
        f"WITHIN {within}",
        name=name,
    )


def vshape_query(within: int = 60, name: str = "vshape") -> Pattern:
    """Dip below then recovery above the starting price, same symbol."""
    return parse(
        f"PATTERN SEQ({TICK} a, {TICK} b, {TICK} c) "
        "WHERE a.sym == b.sym AND b.sym == c.sym "
        "AND b.price < a.price AND c.price > a.price "
        f"WITHIN {within}",
        name=name,
    )


def accumulation_query(within: int = 50, name: str = "accumulation") -> Pattern:
    """A same-symbol rise with *all* trades in between collected (Kleene).

    The collected trade set supports downstream aggregation (e.g. total
    accumulated volume during the rise) — the SASE+-style use of ``+``.
    """
    return parse(
        f"PATTERN SEQ({TICK} a, {TRADE}+ ts, {TICK} c) "
        "WHERE a.sym == c.sym AND a.price < c.price AND ts.sym == a.sym "
        f"WITHIN {within}",
        name=name,
    )


def calm_rise_query(within: int = 50, volume: int = 5000, name: str = "calm_rise") -> Pattern:
    """A same-symbol price rise with no large trade in between."""
    return parse(
        f"PATTERN SEQ({TICK} a, !{TRADE} t, {TICK} c) "
        "WHERE a.sym == c.sym AND a.price < c.price "
        f"AND t.sym == a.sym AND t.volume > {volume} "
        f"WITHIN {within}",
        name=name,
    )


class StockFeedGenerator:
    """Per-symbol random-walk ticks plus occasional trades.

    Parameters
    ----------
    symbols:
        Ticker alphabet, e.g. ``("IBM", "ORCL")``.
    count:
        Total tick events generated.
    trade_rate:
        Fraction of slots that also emit a TRADE event.
    volatility:
        Max per-step price move (uniform in ``[-volatility, volatility]``).
    seed:
        Determinism.
    """

    def __init__(
        self,
        symbols: Sequence[str] = ("IBM", "ORCL", "MSFT", "DELL"),
        count: int = 10_000,
        trade_rate: float = 0.1,
        volatility: int = 3,
        seed: int = 0,
    ):
        if not symbols:
            raise ConfigurationError("need at least one symbol")
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        if not 0.0 <= trade_rate <= 1.0:
            raise ConfigurationError(f"trade_rate must be in [0, 1], got {trade_rate}")
        if volatility < 1:
            raise ConfigurationError(f"volatility must be >= 1, got {volatility}")
        self.symbols = list(symbols)
        self.count = count
        self.trade_rate = trade_rate
        self.volatility = volatility
        self.seed = seed

    def generate(self) -> List[Event]:
        rng = random.Random(self.seed)
        prices = {symbol: 100 + 10 * index for index, symbol in enumerate(self.symbols)}
        events: List[Event] = []
        ts = 0
        for __ in range(self.count):
            ts += 1
            symbol = rng.choice(self.symbols)
            move = rng.randint(-self.volatility, self.volatility)
            prices[symbol] = max(1, prices[symbol] + move)
            events.append(Event(TICK, ts, {"sym": symbol, "price": prices[symbol]}))
            if rng.random() < self.trade_rate:
                events.append(
                    Event(
                        TRADE,
                        ts,
                        {
                            "sym": rng.choice(self.symbols),
                            "volume": int(rng.expovariate(1 / 2000.0)) + 1,
                        },
                    )
                )
        return events
