"""RFID supply-chain workload: the paper's lead motivating application.

Models a retail store instrumented with RFID readers, the canonical
CEP scenario (also used by SASE): tagged items move through reader
zones — ``SHELF_READ`` when picked off a shelf, ``COUNTER_READ`` when
scanned at a checkout counter, ``EXIT_READ`` at the door.  The classic
*shoplifting query* detects items picked up and carried out without
ever being checked out::

    PATTERN SEQ(SHELF_READ s, !COUNTER_READ c, EXIT_READ e)
    WHERE   s.tag == e.tag AND c.tag == s.tag
    WITHIN  <dwell window>

The generator simulates *items* (tags) executing randomised trajectories
through the store; a controllable fraction are shoplifted (skip the
counter).  Each reader is a separate source node, so the netsim can
scramble arrival realistically (readers on flaky wireless uplinks).
Ground-truth shoplifted tags are reported alongside the streams so
end-to-end detection tests don't need the oracle.
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Sequence, Set

from repro.core.errors import ConfigurationError
from repro.core.event import Event
from repro.core.parser import parse
from repro.core.pattern import Pattern

SHELF = "SHELF_READ"
COUNTER = "COUNTER_READ"
EXIT = "EXIT_READ"

READERS = (SHELF, COUNTER, EXIT)


def shoplifting_query(within: int = 2000, name: str = "shoplifting") -> Pattern:
    """The paper's shoplifting pattern with the given dwell window."""
    return parse(
        f"PATTERN SEQ({SHELF} s, !{COUNTER} c, {EXIT} e) "
        "WHERE s.tag == e.tag AND c.tag == s.tag "
        f"WITHIN {within}",
        name=name,
    )


def restock_query(within: int = 2000, name: str = "restock") -> Pattern:
    """Items returned to a shelf after checkout (suspicious refund pattern)."""
    return parse(
        f"PATTERN SEQ({COUNTER} c, {SHELF} s) "
        "WHERE c.tag == s.tag "
        f"WITHIN {within}",
        name=name,
    )


class RfidTrace(NamedTuple):
    """Generated store activity."""

    by_reader: Dict[str, List[Event]]  #: per-reader streams, occurrence order
    merged: List[Event]  #: all events in occurrence order
    shoplifted_tags: Set[int]  #: ground-truth tag ids that skipped checkout


class RfidStoreGenerator:
    """Randomised item trajectories through SHELF → (COUNTER) → EXIT.

    Parameters
    ----------
    items:
        Number of distinct tags moving through the store.
    shoplift_rate:
        Fraction of items that skip the counter.
    browse_rate:
        Fraction of items picked up and *reshelved* (a second
        SHELF_READ, no exit) — realistic noise that stresses purging.
    dwell:
        Maximum time an item spends between shelf pick-up and exit;
        queries should use a window of at least this.
    arrival_span:
        Shelf pick-ups are uniform over ``[1, arrival_span]``.
    seed:
        Determinism.
    """

    def __init__(
        self,
        items: int = 500,
        shoplift_rate: float = 0.05,
        browse_rate: float = 0.2,
        dwell: int = 1500,
        arrival_span: int = 50_000,
        seed: int = 0,
    ):
        if items < 0:
            raise ConfigurationError(f"items must be >= 0, got {items}")
        if not 0.0 <= shoplift_rate <= 1.0:
            raise ConfigurationError(f"shoplift_rate must be in [0, 1], got {shoplift_rate}")
        if not 0.0 <= browse_rate <= 1.0 - shoplift_rate:
            raise ConfigurationError(
                "browse_rate must be in [0, 1 - shoplift_rate]"
            )
        if dwell < 3:
            raise ConfigurationError(f"dwell must be >= 3, got {dwell}")
        if arrival_span < 1:
            raise ConfigurationError(f"arrival_span must be >= 1, got {arrival_span}")
        self.items = items
        self.shoplift_rate = shoplift_rate
        self.browse_rate = browse_rate
        self.dwell = dwell
        self.arrival_span = arrival_span
        self.seed = seed

    def generate(self) -> RfidTrace:
        rng = random.Random(self.seed)
        by_reader: Dict[str, List[Event]] = {reader: [] for reader in READERS}
        shoplifted: Set[int] = set()
        for tag in range(1, self.items + 1):
            pick_ts = rng.randint(1, self.arrival_span)
            exit_ts = pick_ts + rng.randint(2, self.dwell - 1)
            attrs = {"tag": tag}
            roll = rng.random()
            by_reader[SHELF].append(Event(SHELF, pick_ts, attrs))
            if roll < self.shoplift_rate:
                # Straight to the exit; never scanned.
                by_reader[EXIT].append(Event(EXIT, exit_ts, attrs))
                shoplifted.add(tag)
            elif roll < self.shoplift_rate + self.browse_rate:
                # Browsed and reshelved; no exit event for the item.
                reshelve_ts = pick_ts + rng.randint(1, self.dwell - 2)
                by_reader[SHELF].append(Event(SHELF, reshelve_ts, attrs))
            else:
                # Honest purchase: counter strictly between pick and exit.
                counter_ts = rng.randint(pick_ts + 1, exit_ts - 1)
                by_reader[COUNTER].append(Event(COUNTER, counter_ts, attrs))
                by_reader[EXIT].append(Event(EXIT, exit_ts, attrs))
        for reader in READERS:
            by_reader[reader].sort(key=lambda e: (e.ts, e.eid))
        merged = sorted(
            (event for events in by_reader.values() for event in events),
            key=lambda e: (e.ts, e.eid),
        )
        return RfidTrace(by_reader, merged, shoplifted)


def detected_tags(matches: Sequence) -> Set[int]:
    """Tag ids reported by shoplifting-query matches."""
    return {match.events[0]["tag"] for match in matches}
