"""Intrusion-detection workload: the paper's second motivating application.

Real-time intrusion detection over security event streams.  Two canned
attack signatures:

* **brute force** — repeated failed logins from one source followed by
  a success within a short window::

      PATTERN SEQ(LOGIN_FAIL f1, LOGIN_FAIL f2, LOGIN_FAIL f3, LOGIN_OK s)
      WHERE f1.src == f2.src AND f2.src == f3.src AND f3.src == s.src
      WITHIN <window>

* **exfiltration with negation** — a privileged read followed by a
  large outbound transfer with *no* audit record in between::

      PATTERN SEQ(PRIV_READ r, !AUDIT a, UPLOAD u)
      WHERE r.src == u.src AND a.src == r.src
      WITHIN <window>

The generator simulates a population of benign hosts (occasional
isolated failures, audited uploads) and a few attackers executing the
signatures; ground-truth attacker source ids are returned so detection
quality is directly checkable.  Sensor streams arrive via independent
collectors in deployments, so this workload is routinely out of order —
exactly the paper's pitch.
"""

from __future__ import annotations

import random
from typing import List, NamedTuple, Set

from repro.core.errors import ConfigurationError
from repro.core.event import Event
from repro.core.parser import parse
from repro.core.pattern import Pattern

LOGIN_FAIL = "LOGIN_FAIL"
LOGIN_OK = "LOGIN_OK"
PRIV_READ = "PRIV_READ"
AUDIT = "AUDIT"
UPLOAD = "UPLOAD"


def brute_force_query(within: int = 300, name: str = "brute_force") -> Pattern:
    """Three failures then a success from the same source."""
    return parse(
        f"PATTERN SEQ({LOGIN_FAIL} f1, {LOGIN_FAIL} f2, {LOGIN_FAIL} f3, {LOGIN_OK} s) "
        "WHERE f1.src == f2.src AND f2.src == f3.src AND f3.src == s.src "
        f"WITHIN {within}",
        name=name,
    )


def exfiltration_query(within: int = 500, name: str = "exfiltration") -> Pattern:
    """Privileged read then upload with no audit record in between."""
    return parse(
        f"PATTERN SEQ({PRIV_READ} r, !{AUDIT} a, {UPLOAD} u) "
        "WHERE r.src == u.src AND a.src == r.src "
        f"WITHIN {within}",
        name=name,
    )


class IntrusionTrace(NamedTuple):
    events: List[Event]  #: occurrence order
    brute_force_sources: Set[int]  #: ground truth attackers (brute force)
    exfiltration_sources: Set[int]  #: ground truth attackers (exfiltration)


class IntrusionGenerator:
    """Benign background traffic plus injected attack signatures.

    Parameters
    ----------
    hosts:
        Benign source population size.
    duration:
        Occurrence-time horizon.
    background_rate:
        Expected benign events per time unit (thinned Bernoulli).
    attackers:
        Number of brute-force attackers and of exfiltrators (each).
    seed:
        Determinism.
    """

    def __init__(
        self,
        hosts: int = 50,
        duration: int = 20_000,
        background_rate: float = 0.3,
        attackers: int = 5,
        seed: int = 0,
    ):
        if hosts < 1:
            raise ConfigurationError(f"hosts must be >= 1, got {hosts}")
        if duration < 100:
            raise ConfigurationError(f"duration must be >= 100, got {duration}")
        if background_rate < 0:
            raise ConfigurationError(f"background_rate must be >= 0, got {background_rate}")
        if attackers < 0:
            raise ConfigurationError(f"attackers must be >= 0, got {attackers}")
        self.hosts = hosts
        self.duration = duration
        self.background_rate = background_rate
        self.attackers = attackers
        self.seed = seed

    def generate(self) -> IntrusionTrace:
        rng = random.Random(self.seed)
        events: List[Event] = []
        # Benign background: isolated failures, successful logins,
        # audited privileged reads + uploads.
        t = 0
        while t < self.duration:
            t += max(1, int(rng.expovariate(self.background_rate)))
            src = rng.randint(1, self.hosts)
            kind = rng.random()
            if kind < 0.35:
                events.append(Event(LOGIN_OK, t, {"src": src}))
            elif kind < 0.6:
                events.append(Event(LOGIN_FAIL, t, {"src": src}))
            else:
                # Compliant privileged workflow: read, audit, upload.
                events.append(Event(PRIV_READ, t, {"src": src}))
                audit_ts = t + rng.randint(1, 20)
                upload_ts = audit_ts + rng.randint(1, 20)
                events.append(Event(AUDIT, audit_ts, {"src": src}))
                events.append(Event(UPLOAD, upload_ts, {"src": src, "bytes": rng.randint(1, 10_000)}))

        brute_sources: Set[int] = set()
        exfil_sources: Set[int] = set()
        # Attackers get source ids above the benign population.
        next_src = self.hosts + 1
        for __ in range(self.attackers):
            src = next_src
            next_src += 1
            start = rng.randint(1, max(1, self.duration - 200))
            t = start
            for __ in range(3):
                events.append(Event(LOGIN_FAIL, t, {"src": src}))
                t += rng.randint(5, 30)
            events.append(Event(LOGIN_OK, t, {"src": src}))
            brute_sources.add(src)
        for __ in range(self.attackers):
            src = next_src
            next_src += 1
            start = rng.randint(1, max(1, self.duration - 200))
            events.append(Event(PRIV_READ, start, {"src": src}))
            events.append(
                Event(UPLOAD, start + rng.randint(10, 100), {"src": src, "bytes": rng.randint(100_000, 10_000_000)})
            )
            exfil_sources.add(src)

        events.sort(key=lambda e: (e.ts, e.eid))
        return IntrusionTrace(events, brute_sources, exfil_sources)
