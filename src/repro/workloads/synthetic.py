"""Parameterised synthetic workload: the experiments' primary driver.

Most of the paper's measurement axes (disorder rate, disorder extent,
window size, query length, predicate selectivity) need a workload whose
knobs turn *independently*.  :class:`SyntheticWorkload` bundles a
source, a disorder model, and a query generator behind one config
object, and every benchmark sweeps exactly one knob of it.

The generated queries are ``SEQ(T1, T2, …, Tn)`` over an alphabet that
also contains noise types the query ignores; an equality predicate on
a partition attribute controls selectivity (more partitions = fewer
cross-matches = cheaper construction).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.core.event import Event
from repro.core.pattern import Pattern, Step
from repro.core.predicates import Attr, Eq, Predicate
from repro.streams.disorder import DelayModel, NoDisorder, RandomDelayModel, measure_disorder


def chain_query(
    length: int,
    within: int,
    partitioned: bool = True,
    negated_step: Optional[int] = None,
    name: str = "",
) -> Pattern:
    """``SEQ(T1 v1, …, Tn vn)`` with optional partition equality and negation.

    *negated_step*, when given, inserts a negated ``N x`` step before
    the positive step at that index (0-based, 1..length-1) — or after
    the last when equal to *length*.
    """
    if length < 1:
        raise ConfigurationError(f"length must be >= 1, got {length}")
    if within < 1:
        raise ConfigurationError(f"within must be >= 1, got {within}")
    steps: List[Step] = []
    for index in range(length):
        if negated_step is not None and negated_step == index:
            steps.append(Step("N", "neg", negated=True))
        steps.append(Step(f"T{index + 1}", f"v{index + 1}"))
    if negated_step is not None and negated_step == length:
        steps.append(Step("N", "neg", negated=True))
    where: List[Predicate] = []
    if partitioned:
        for index in range(1, length):
            where.append(Eq(Attr(f"v{index}", "part"), Attr(f"v{index + 1}", "part")))
        if negated_step is not None:
            where.append(Eq(Attr("neg", "part"), Attr("v1", "part")))
    return Pattern(
        steps,
        where=where or None,
        within=within,
        name=name or f"chain{length}",
    )


class SyntheticWorkload:
    """A reproducible (events, arrival order, query) triple.

    Parameters
    ----------
    query_length:
        Number of positive steps in the chain query.
    event_count:
        Events generated (before disorder; disorder preserves count).
    within:
        Query window, in occurrence-time units (one event per unit).
    partitions:
        Cardinality of the ``part`` attribute; selectivity of the
        equality chain is ``1 / partitions`` per join.
    noise_types:
        Extra event types the query ignores.
    disorder:
        A :class:`DelayModel`; default in-order.
    negated_step:
        Forwarded to :func:`chain_query`.
    include_negatives:
        When the query has a negated ``N`` step, fraction of events
        that are ``N`` events.
    seed:
        Determinism.
    """

    def __init__(
        self,
        query_length: int = 3,
        event_count: int = 5_000,
        within: int = 50,
        partitions: int = 10,
        noise_types: int = 1,
        disorder: Optional[DelayModel] = None,
        negated_step: Optional[int] = None,
        include_negatives: float = 0.1,
        seed: int = 0,
    ):
        if partitions < 1:
            raise ConfigurationError(f"partitions must be >= 1, got {partitions}")
        if noise_types < 0:
            raise ConfigurationError(f"noise_types must be >= 0, got {noise_types}")
        if not 0.0 <= include_negatives <= 1.0:
            raise ConfigurationError("include_negatives must be in [0, 1]")
        self.query_length = query_length
        self.event_count = event_count
        self.within = within
        self.partitions = partitions
        self.noise_types = noise_types
        self.disorder = disorder or NoDisorder()
        self.negated_step = negated_step
        self.include_negatives = include_negatives
        self.seed = seed
        self.query = chain_query(
            query_length, within, partitioned=True, negated_step=negated_step
        )

    def _alphabet(self) -> List[str]:
        alphabet = [f"T{i + 1}" for i in range(self.query_length)]
        alphabet.extend(f"X{i + 1}" for i in range(self.noise_types))
        return alphabet

    def generate(self) -> Tuple[List[Event], List[Event]]:
        """Returns ``(occurrence_order, arrival_order)``."""
        rng = random.Random(self.seed)
        alphabet = self._alphabet()
        events: List[Event] = []
        for ts in range(1, self.event_count + 1):
            if (
                self.negated_step is not None
                and rng.random() < self.include_negatives
            ):
                etype = "N"
            else:
                etype = rng.choice(alphabet)
            events.append(
                Event(etype, ts, {"part": rng.randint(1, self.partitions)})
            )
        arrival = self.disorder.apply(events)
        return events, arrival

    def describe(self) -> str:
        """One-line config summary for bench output headers."""
        arrival = self.disorder.apply(self.generate()[0])
        stats = measure_disorder(arrival)
        return (
            f"chain={self.query_length} n={self.event_count} W={self.within} "
            f"parts={self.partitions} disorder_rate={stats.rate:.2f} "
            f"max_delay={stats.max_delay}"
        )


def rate_sweep_workloads(
    rates: List[float],
    max_delay: int,
    **kwargs,
) -> List[Tuple[float, SyntheticWorkload]]:
    """One workload per disorder rate, sharing all other knobs."""
    result = []
    for rate in rates:
        disorder = (
            NoDisorder() if rate == 0 else RandomDelayModel(rate, max_delay, seed=kwargs.get("seed", 0))
        )
        workload = SyntheticWorkload(disorder=disorder, **kwargs)
        result.append((rate, workload))
    return result
