"""Workload generators and their canned pattern queries."""

from repro.workloads.intrusion import (
    IntrusionGenerator,
    IntrusionTrace,
    brute_force_query,
    exfiltration_query,
)
from repro.workloads.rfid import (
    RfidStoreGenerator,
    RfidTrace,
    detected_tags,
    restock_query,
    shoplifting_query,
)
from repro.workloads.stock import (
    StockFeedGenerator,
    accumulation_query,
    calm_rise_query,
    rally_query,
    vshape_query,
)
from repro.workloads.synthetic import (
    SyntheticWorkload,
    chain_query,
    rate_sweep_workloads,
)

__all__ = [
    "IntrusionGenerator",
    "IntrusionTrace",
    "RfidStoreGenerator",
    "RfidTrace",
    "StockFeedGenerator",
    "SyntheticWorkload",
    "accumulation_query",
    "brute_force_query",
    "calm_rise_query",
    "chain_query",
    "detected_tags",
    "exfiltration_query",
    "rally_query",
    "rate_sweep_workloads",
    "restock_query",
    "shoplifting_query",
    "vshape_query",
]
