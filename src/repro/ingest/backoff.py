"""The one retry/backoff schedule shared across the ingestion layer.

Exponential backoff with capped growth and *deterministic, seedable*
jitter: the same policy object produces the same delay sequence on
every run, so tests (and crash-replay comparisons) never race a random
sleep.  Jitter still does its real job — de-synchronising a fleet of
retrying clients — because each client seeds the policy differently
(e.g. with a hash of its source id).

Three consumers share this module so the schedule is written once:

* :class:`repro.ingest.client.IngestClient` — reconnect/resend loops;
* the gateway's crash supervisor (:func:`run_resilient`) — rebuilding
  a :class:`~repro.core.recovery.ResilientRunner` after a crash;
* ``repro run --crash-at`` — the CLI's recover-and-resume path.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Iterator, List, Optional, Tuple, Type

from repro.core.errors import ConfigurationError


class BackoffPolicy:
    """Capped exponential backoff with deterministic jitter.

    Parameters
    ----------
    base:
        First delay in seconds (attempt 0, before jitter).
    factor:
        Multiplier per attempt (>= 1).
    cap:
        Upper bound on any single delay.
    retries:
        Attempts allowed before :func:`retry_call` gives up (>= 0;
        zero means "no retries, fail on the first error").
    jitter:
        Fraction of each delay that is jittered: the delay for attempt
        *n* is uniform in ``[raw * (1 - jitter), raw]`` where *raw* is
        the capped exponential value.  Zero disables jitter.
    seed:
        Jitter seed.  The delay sequence is a pure function of
        ``(seed, attempt)`` — two policies with the same parameters
        produce identical schedules, and two clients with different
        seeds spread their retries apart.

    >>> policy = BackoffPolicy(base=0.1, factor=2.0, cap=1.0, jitter=0.0)
    >>> [round(policy.delay(n), 2) for n in range(5)]
    [0.1, 0.2, 0.4, 0.8, 1.0]
    """

    __slots__ = ("base", "factor", "cap", "retries", "jitter", "seed")

    def __init__(
        self,
        base: float = 0.05,
        factor: float = 2.0,
        cap: float = 5.0,
        retries: int = 8,
        jitter: float = 0.5,
        seed: int = 0,
    ) -> None:
        if base <= 0:
            raise ConfigurationError(f"backoff base must be > 0, got {base!r}")
        if factor < 1.0:
            raise ConfigurationError(f"backoff factor must be >= 1, got {factor!r}")
        if cap < base:
            raise ConfigurationError(
                f"backoff cap {cap!r} must be >= base {base!r}"
            )
        if not isinstance(retries, int) or isinstance(retries, bool) or retries < 0:
            raise ConfigurationError(f"retries must be an int >= 0, got {retries!r}")
        if not 0.0 <= jitter <= 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1], got {jitter!r}")
        self.base = float(base)
        self.factor = float(factor)
        self.cap = float(cap)
        self.retries = retries
        self.jitter = float(jitter)
        self.seed = seed

    def delay(self, attempt: int) -> float:
        """Delay in seconds before retry *attempt* (0-based)."""
        if attempt < 0:
            raise ConfigurationError(f"attempt must be >= 0, got {attempt}")
        raw = min(self.cap, self.base * self.factor**attempt)
        if self.jitter == 0.0:
            return raw
        # random.Random(int) is stable across processes and platforms,
        # unlike hash() of strings — the schedule must replay exactly.
        unit = random.Random(self.seed * 1_000_003 + attempt).random()
        return raw * (1.0 - self.jitter + self.jitter * unit)

    def delays(self) -> Iterator[float]:
        """The full schedule: one delay per allowed retry."""
        for attempt in range(self.retries):
            yield self.delay(attempt)

    def reseeded(self, seed: int) -> "BackoffPolicy":
        """A copy with a different jitter seed (per-client spreading)."""
        return BackoffPolicy(
            base=self.base,
            factor=self.factor,
            cap=self.cap,
            retries=self.retries,
            jitter=self.jitter,
            seed=seed,
        )

    def __repr__(self) -> str:
        return (
            f"BackoffPolicy(base={self.base}, factor={self.factor}, "
            f"cap={self.cap}, retries={self.retries}, jitter={self.jitter}, "
            f"seed={self.seed})"
        )


def retry_call(
    fn: Callable[[], Any],
    policy: BackoffPolicy,
    retry_on: Tuple[Type[BaseException], ...],
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, float, BaseException], None]] = None,
) -> Any:
    """Call *fn*, retrying per *policy* on the given exception types.

    *sleep* is injectable so tests (and the asyncio gateway, which must
    not block the loop) substitute their own waiting.  *on_retry* is
    called with ``(attempt, delay, exc)`` before each sleep.  When the
    retry budget is exhausted the last exception propagates.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except retry_on as exc:
            if attempt >= policy.retries:
                raise
            delay = policy.delay(attempt)
            attempt += 1
            if on_retry is not None:
                on_retry(attempt, delay, exc)
            sleep(delay)


def run_resilient(
    build_runner: Callable[[], Any],
    elements: Any,
    policy: Optional[BackoffPolicy] = None,
    sleep: Callable[[float], None] = time.sleep,
    on_crash: Optional[Callable[[int, float, BaseException], None]] = None,
) -> Tuple[Any, int]:
    """Drive ``build_runner().run(elements)`` to completion across crashes.

    The supervisor loop every resilient deployment needs: build a fresh
    runner (recovery happens in its constructor when the directory
    holds state), run the input, and on a :class:`~repro.faultinject.
    CrashError` rebuild after a backoff delay — the same schedule the
    ingestion client uses, extracted here so the two cannot drift.

    Returns ``(runner, crashes)`` where *runner* is the incarnation
    that completed the run.
    """
    from repro.faultinject import CrashError

    if policy is None:
        policy = BackoffPolicy()
    crashes = 0
    runner = None

    def attempt() -> Any:
        nonlocal runner
        runner = build_runner()
        runner.run(elements)
        return runner

    def note(attempt_no: int, delay: float, exc: BaseException) -> None:
        nonlocal crashes
        crashes += 1
        if on_crash is not None:
            on_crash(attempt_no, delay, exc)

    runner = retry_call(
        attempt, policy, retry_on=(CrashError,), sleep=sleep, on_retry=note
    )
    return runner, crashes


def spread_delays(policies: List[BackoffPolicy], attempt: int) -> List[float]:
    """The *attempt*-th delay of each policy (fleet-spread diagnostics)."""
    return [policy.delay(attempt) for policy in policies]
