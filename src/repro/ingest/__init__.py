"""Fault-tolerant multi-source ingestion: the engines' network front door.

Everything below ``repro.ingest`` exists to carry events from *sources
that fail* into engines that assume events arrive at all.  The package
splits along the classic ingestion fault boundaries:

* :mod:`repro.ingest.backoff` — the one retry/backoff schedule
  (deterministic, seedable jitter) shared by the client, the gateway's
  crash supervisor, and the CLI recovery loop;
* :mod:`repro.ingest.schema` — declarative stream schemas (event
  types, ``t_event`` field, partition key, ordering scope,
  deterministic idempotency-ID derivation) validated at admission;
* :mod:`repro.ingest.admission` — idempotent admission: bounded
  per-source dedupe windows that count replayed deliveries instead of
  re-feeding them;
* :mod:`repro.ingest.liveness` — per-source liveness: a silent source
  is marked degraded after a configurable timeout and its watermark is
  fenced so sealing never stalls indefinitely;
* :mod:`repro.ingest.server` — the asyncio TCP (newline-JSON) gateway
  in front of a :class:`~repro.core.recovery.ResilientRunner`;
* :mod:`repro.ingest.client` — a retrying client with timeouts,
  exponential backoff with jitter, and a bounded in-flight window.
"""

from repro.ingest.admission import (
    Admission,
    AdmissionController,
    AdmissionOutcome,
    DedupeWindow,
)
from repro.ingest.backoff import BackoffPolicy, retry_call, run_resilient
from repro.ingest.client import ClientFaultPlan, IngestClient, SendReport, send_events
from repro.ingest.liveness import LivenessTracker, SourceStatus, Transition
from repro.ingest.schema import (
    EventSchema,
    FieldSpec,
    StreamSchema,
    load_schema,
)
from repro.ingest.server import (
    GatewayConfig,
    GatewayHandle,
    IngestGateway,
    serve_in_thread,
)

__all__ = [
    "Admission",
    "AdmissionController",
    "AdmissionOutcome",
    "BackoffPolicy",
    "ClientFaultPlan",
    "DedupeWindow",
    "EventSchema",
    "FieldSpec",
    "GatewayConfig",
    "GatewayHandle",
    "IngestClient",
    "IngestGateway",
    "LivenessTracker",
    "SendReport",
    "SourceStatus",
    "StreamSchema",
    "Transition",
    "load_schema",
    "retry_call",
    "run_resilient",
    "send_events",
    "serve_in_thread",
]
