"""A retrying, at-least-once ingestion client for the gateway protocol.

:class:`IngestClient` speaks the newline-JSON protocol of
:class:`repro.ingest.server.IngestGateway` over a blocking socket and
owns the *client half* of the exactly-once contract:

* every event frame gets a client-local sequence number ``n`` and stays
  in a **bounded in-flight window** until the matching ack arrives —
  :meth:`send` blocks (draining acks) once the window is full, so a
  slow or refusing server backpressures the producer instead of growing
  an unbounded queue;
* a torn connection, timeout, or refused connect triggers reconnect
  under the shared :class:`~repro.ingest.backoff.BackoffPolicy`
  (exponential, capped, deterministically jittered), after which every
  unacked frame is **resent in order** — delivery becomes
  at-least-once, which is exactly what the gateway's idempotent
  admission is for;
* ``busy`` refusals honour the server's ``retry_after`` and acked
  ``throttle`` hints slow the send loop — the client is a good citizen
  of the gateway's backpressure ladder.

Failure drills are built in: a :class:`ClientFaultPlan` tears the
connection at chosen frames (before send: clean loss; after send:
the ack-lost shape that *produces* duplicates at the server) or sends
chosen frames twice, so tests script the exact at-least-once anomalies
admission must absorb.  ``sleep`` is injectable; with a scripted clock
and a fault plan the client's behaviour is fully deterministic.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError, ReproError
from repro.ingest.backoff import BackoffPolicy

from repro.ingest.server import PROTOCOL_VERSION
from repro.obs.span import SPAN_FIELD, mint_span


class ClientFaultPlan:
    """Scripted client-side failures, by 0-based event-frame index.

    Parameters
    ----------
    torn_before_send:
        Frames whose first transmission is preceded by tearing the
        connection (the frame is never sent on the old socket; the
        reconnect resends it — no duplicate reaches the server).
    torn_after_send:
        Frames transmitted and then immediately torn before reading the
        ack — the lost-ack shape: the server admitted the frame, the
        client must resend, the gateway must dedupe.
    duplicate_send:
        Frames transmitted twice back-to-back on a healthy connection
        (a confused producer rather than a torn one).

    Each index fires once.
    """

    __slots__ = ("torn_before_send", "torn_after_send", "duplicate_send")

    def __init__(
        self,
        torn_before_send: Any = (),
        torn_after_send: Any = (),
        duplicate_send: Any = (),
    ):
        self.torn_before_send = set(torn_before_send)
        self.torn_after_send = set(torn_after_send)
        self.duplicate_send = set(duplicate_send)


class SendReport:
    """What one client observed: outcome counts and admission latencies."""

    __slots__ = (
        "sent",
        "admitted",
        "duplicates",
        "quarantined",
        "busy_retries",
        "reconnects",
        "resends",
        "throttles",
        "latencies",
    )

    def __init__(self) -> None:
        self.sent = 0  #: distinct event frames handed to send()
        self.admitted = 0
        self.duplicates = 0
        self.quarantined = 0
        self.busy_retries = 0
        self.reconnects = 0
        self.resends = 0  #: retransmissions (any cause)
        self.throttles = 0  #: acks carrying a throttle hint
        self.latencies: List[float] = []  #: seconds, last-transmit -> ack

    def latency_quantile(self, q: float) -> float:
        """The q-quantile (0..1] of observed admission latencies."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = max(0, min(len(ordered) - 1, int(q * len(ordered) + 0.999999) - 1))
        return ordered[index]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "sent": self.sent,
            "admitted": self.admitted,
            "duplicates": self.duplicates,
            "quarantined": self.quarantined,
            "busy_retries": self.busy_retries,
            "reconnects": self.reconnects,
            "resends": self.resends,
            "throttles": self.throttles,
            "p50_latency": self.latency_quantile(0.50),
            "p99_latency": self.latency_quantile(0.99),
        }

    def __repr__(self) -> str:
        return (
            f"SendReport(sent={self.sent}, admitted={self.admitted}, "
            f"duplicates={self.duplicates}, quarantined={self.quarantined}, "
            f"reconnects={self.reconnects}, resends={self.resends})"
        )


class _Pending:
    """One unacked frame: wire payload plus bookkeeping."""

    __slots__ = ("frame", "index", "sent_at", "busy_attempts")

    def __init__(self, frame: Dict[str, Any], index: int):
        self.frame = frame
        self.index = index  #: event-frame index (fault-plan coordinate)
        self.sent_at = 0.0
        self.busy_attempts = 0


class IngestClient:
    """Blocking gateway client with retries, resends and a bounded window.

    Parameters
    ----------
    host / port:
        Gateway address.
    source:
        This client's source id (one client per source).
    stream:
        Stream name; must match the gateway schema's.
    timeout:
        Socket timeout for connects and ack reads.
    backoff:
        Reconnect schedule; default policy reseeded with a hash of the
        source id, so a fleet of clients spreads its retry storms.
    window:
        Maximum unacked frames in flight; :meth:`send` blocks past it.
    sleep / clock:
        Injectable time (tests script both).
    fault_plan:
        Optional :class:`ClientFaultPlan`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        source: str,
        stream: str,
        timeout: float = 5.0,
        backoff: Optional[BackoffPolicy] = None,
        window: int = 32,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        fault_plan: Optional[ClientFaultPlan] = None,
    ):
        if not isinstance(source, str) or not source:
            raise ConfigurationError(f"source must be a non-empty string, got {source!r}")
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window!r}")
        if timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {timeout!r}")
        self.host = host
        self.port = port
        self.source = source
        self.stream = stream
        self.timeout = float(timeout)
        if backoff is None:
            seed = sum(source.encode("utf-8")) + len(source)
            backoff = BackoffPolicy(base=0.02, cap=1.0, retries=10).reseeded(seed)
        self.backoff = backoff
        self.window = window
        self._sleep = sleep
        self._clock = clock
        self.fault_plan = fault_plan
        self.report = SendReport()
        self._sock: Optional[socket.socket] = None
        self._recv_buffer = b""
        self._next_n = 0
        self._frame_index = 0  #: event frames only (fault-plan coordinate)
        self._pending: Dict[int, _Pending] = {}  #: n -> frame, insertion-ordered
        self.server_recovered_frames = 0

    # -- connection -------------------------------------------------------------------

    def connect(self) -> None:
        """Connect and handshake, retrying under the backoff policy."""
        attempt = 0
        while True:
            try:
                self._connect_once()
                return
            except (ConnectionError, OSError, socket.timeout):
                self._drop_socket()
                if attempt >= self.backoff.retries:
                    raise
                self._sleep(self.backoff.delay(attempt))
                attempt += 1
                self.report.reconnects += 1

    def _connect_once(self) -> None:
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        sock.settimeout(self.timeout)
        self._sock = sock
        self._recv_buffer = b""
        self._write_line(
            {
                "op": "hello",
                "source": self.source,
                "stream": self.stream,
                "proto": PROTOCOL_VERSION,
            }
        )
        reply = self._read_frame()
        if reply.get("op") != "hello_ok":
            reason = reply.get("reason", "no reason given")
            self._drop_socket()
            raise ReproError(f"gateway refused hello: {reason}")
        self.server_recovered_frames = int(reply.get("recovered_frames", 0))

    def _drop_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._recv_buffer = b""

    def _reconnect_and_resend(self) -> None:
        """Reconnect, then retransmit every unacked frame in order."""
        self._drop_socket()
        self.report.reconnects += 1
        attempt = 0
        while True:
            self._sleep(self.backoff.delay(attempt))
            try:
                self._connect_once()
                break
            except (ConnectionError, OSError, socket.timeout, ReproError):
                self._drop_socket()
                attempt += 1
                if attempt > self.backoff.retries:
                    raise
        for n in sorted(self._pending):
            self._transmit(self._pending[n], resend=True)

    # -- sending ----------------------------------------------------------------------

    def send(self, etype: str, attrs: Dict[str, Any]) -> int:
        """Queue one event frame; returns its sequence number ``n``.

        Blocks (draining acks) while the in-flight window is full, so
        total client-side buffering is bounded by *window* frames.
        """
        if self._sock is None:
            self.connect()
        n = self._next_n
        self._next_n += 1
        pending = _Pending(
            {"op": "event", "n": n, "etype": etype, "attrs": attrs},
            self._frame_index,
        )
        self._frame_index += 1
        self._pending[n] = pending
        self.report.sent += 1
        self._transmit(pending)
        while len(self._pending) >= self.window:
            self._drain_one()
        return n

    def watermark(self, ts: int) -> int:
        """Assert this source's progress while idle; acked like an event."""
        if self._sock is None:
            self.connect()
        n = self._next_n
        self._next_n += 1
        pending = _Pending({"op": "watermark", "n": n, "ts": ts}, -1)
        self._pending[n] = pending
        self._transmit(pending)
        return n

    def flush(self) -> None:
        """Block until every queued frame is acked."""
        while self._pending:
            self._drain_one()

    def stats(self) -> Dict[str, Any]:
        """Fetch the gateway's operator counters (flushes first)."""
        self.flush()
        self._write_line({"op": "stats"})
        while True:
            reply = self._read_frame()
            if reply.get("op") == "stats_ok":
                return reply["stats"]

    def close(self) -> SendReport:
        """Flush, say goodbye, and return the accumulated report."""
        if self._sock is not None:
            self.flush()
            try:
                self._write_line({"op": "bye"})
                self._read_frame()  # bye_ok (best effort)
            except (ConnectionError, OSError, socket.timeout, ReproError):
                pass
            self._drop_socket()
        return self.report

    # -- the wire ---------------------------------------------------------------------

    def _transmit(self, pending: _Pending, resend: bool = False) -> None:
        plan = self.fault_plan
        if plan is not None and pending.index in plan.torn_before_send:
            plan.torn_before_send.discard(pending.index)
            self._reconnect_and_resend()
            # The reconnect resent every pending frame, this one included.
            return
        if resend:
            self.report.resends += 1
        pending.sent_at = self._clock()
        if pending.frame.get("op") == "event":
            # Span context rides the wire: re-stamped on every
            # (re)transmission so the gateway's transit stage measures
            # the delivery that actually arrived, not the first try.
            pending.frame[SPAN_FIELD] = mint_span(pending.sent_at)
        try:
            self._write_line(pending.frame)
        except (ConnectionError, OSError, socket.timeout):
            self._reconnect_and_resend()
            return
        if plan is not None and pending.index in plan.duplicate_send:
            plan.duplicate_send.discard(pending.index)
            self.report.resends += 1
            try:
                self._write_line(pending.frame)
            except (ConnectionError, OSError, socket.timeout):
                self._reconnect_and_resend()
                return
        if plan is not None and pending.index in plan.torn_after_send:
            plan.torn_after_send.discard(pending.index)
            # The frame is on the wire (and may be admitted); losing the
            # connection here loses the ack — the duplicate-producing shape.
            self._reconnect_and_resend()

    def _drain_one(self) -> None:
        """Consume server frames until one pending frame resolves."""
        while self._pending:
            try:
                reply = self._read_frame()
            except (ConnectionError, OSError, socket.timeout, ReproError):
                self._reconnect_and_resend()
                continue
            op = reply.get("op")
            if op == "ack":
                if self._apply_ack(reply):
                    return
                continue
            if op == "error":
                raise ReproError(f"gateway error: {reply.get('reason')}")
            # stats_ok / bye_ok out of band: ignore while draining.

    def _apply_ack(self, reply: Dict[str, Any]) -> bool:
        """Resolve one ack; True when a pending frame left the window."""
        n = reply.get("n")
        pending = self._pending.get(n)
        if pending is None:
            return False  # duplicate ack (our own duplicate_send echo)
        status = reply.get("status")
        if status == "busy":
            pending.busy_attempts += 1
            self.report.busy_retries += 1
            if pending.busy_attempts > self.backoff.retries:
                raise ReproError(
                    f"frame {n} refused {pending.busy_attempts} times; giving up"
                )
            self._sleep(float(reply.get("retry_after", 0.05)))
            self._transmit(pending, resend=True)
            return False
        del self._pending[n]
        self.report.latencies.append(max(0.0, self._clock() - pending.sent_at))
        if status == "admitted":
            self.report.admitted += 1
        elif status == "duplicate":
            self.report.duplicates += 1
        elif status == "quarantined":
            self.report.quarantined += 1
        throttle = reply.get("throttle")
        if throttle:
            self.report.throttles += 1
            self._sleep(float(throttle))
        return True

    def _write_line(self, frame: Dict[str, Any]) -> None:
        if self._sock is None:
            raise ConnectionError("not connected")
        data = json.dumps(frame, sort_keys=True).encode("utf-8") + b"\n"
        self._sock.sendall(data)

    def _read_frame(self) -> Dict[str, Any]:
        while b"\n" not in self._recv_buffer:
            if self._sock is None:
                raise ConnectionError("not connected")
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("gateway closed the connection")
            self._recv_buffer += chunk
        line, self._recv_buffer = self._recv_buffer.split(b"\n", 1)
        try:
            return json.loads(line)
        except ValueError:
            raise ReproError(f"gateway sent a non-JSON frame: {line[:80]!r}") from None


def send_events(
    host: str,
    port: int,
    source: str,
    stream: str,
    frames: List[Tuple[str, Dict[str, Any]]],
    **kwargs: Any,
) -> SendReport:
    """Convenience: connect, send every (etype, attrs) frame, close."""
    client = IngestClient(host, port, source, stream, **kwargs)
    client.connect()
    for etype, attrs in frames:
        client.send(etype, attrs)
    return client.close()
