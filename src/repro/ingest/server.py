"""The ingestion gateway: a fault-tolerant TCP front door for engines.

:class:`IngestGateway` accepts newline-delimited-JSON connections from
many sources and feeds one engine behind a
:class:`~repro.core.recovery.ResilientRunner`, composing the layers the
rest of the package provides into the exactly-once admission story:

* **schema validation** (:mod:`repro.ingest.schema`) — malformed frames
  are quarantined with a reason, never fed;
* **idempotent admission** (:mod:`repro.ingest.admission`) — redelivered
  frames are counted as duplicates and dropped; after a crash the
  per-source windows are rebuilt from the runner's WAL so redeliveries
  racing the restart are still caught;
* **group-commit acks** — every batch of frames read off a socket is
  admitted, fed, and made durable (:meth:`ResilientRunner.sync`) before
  a single ack is written back.  An acked frame is on disk; an unacked
  frame will be resent by the client and deduped.  Exactly-once,
  relative to acks, with one WAL flush per batch instead of per frame;
* **per-source watermarks** (:mod:`repro.ingest.liveness`) — each
  source's occurrence times advance its own watermark; the min-merge
  becomes engine punctuation.  A source silent past the liveness
  timeout is *degraded*: fenced out of the merge so its silence stalls
  nothing, journalled, traced, and counted.  On reconnect its watermark
  floor is the already-emitted mark, so recovery never drags
  punctuation backward;
* **backpressure** — admission consults the engine's
  :class:`~repro.core.shedding.ShedPolicy` occupancy
  (:meth:`~repro.core.shedding.ShedPolicy.pressure`): in the soft band
  acks carry a ``throttle`` hint (clients slow down), at the hard
  threshold frames are refused with ``busy`` + ``retry_after`` and are
  *not* admitted — the client retries later.  Never unbounded
  buffering.

The wire protocol is one JSON object per line in each direction (the
:mod:`repro.streams.replay` codec idiom).  Client → server ops:
``hello`` (first frame: source id, stream name, protocol version),
``event`` (sequence number ``n``, ``etype``, ``attrs``), ``watermark``
(explicit idle-source progress), ``stats``, ``bye``.  Server → client:
``hello_ok`` / ``error``, per-frame acks ``{"op": "ack", "n": ...,
"status": "admitted" | "duplicate" | "quarantined" | "ok"}``, ``busy``
refusals, ``stats_ok``, ``bye_ok``.

Determinism: all liveness decisions take injected ``now`` values; only
the asyncio timer task and the connection handlers read the wall clock.
Tests drive :meth:`IngestGateway.admit_frame` / :meth:`IngestGateway.
tick` directly with scripted clocks and never open a socket unless the
transport itself is under test.
"""

from __future__ import annotations

import asyncio
import json
import queue
import signal
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, Union

from repro.core.errors import ConfigurationError, ReproError
from repro.core.event import Event, Punctuation
from repro.core.recovery import ResilientRunner, read_wal_elements
from repro.faultinject import CrashError
from repro.ingest.admission import AdmissionController, AdmissionOutcome
from repro.ingest.liveness import LivenessTracker, SourceStatus, Transition
from repro.ingest.schema import StreamSchema
from repro.obs import trace as stages
from repro.obs.export import render_prometheus
from repro.obs.flight import FlightRecorder
from repro.obs.httpserv import Route, TelemetryServer
from repro.obs.span import SPAN_FIELD, SourceLagPanel, SpanTracker, span_origin

PROTOCOL_VERSION = 1
JOURNAL_NAME = "gateway.jsonl"
FLIGHT_NAME = "flight.jsonl"


class GatewayConfig:
    """Tunables for one gateway instance.

    Parameters
    ----------
    schema:
        The stream's admission contract.
    host / port:
        Listen address; port 0 binds an ephemeral port (the bound port
        is on :attr:`IngestGateway.port` after start).
    dedupe_window:
        Per-source idempotency window capacity.
    liveness_timeout:
        Seconds of silence before a live source is degraded.
    tick_interval:
        Liveness timer period; defaults to a quarter of the timeout.
    soft_pressure / hard_pressure:
        Shed-policy occupancy fractions bounding the backpressure
        ladder: above *soft*, acks carry a ``throttle`` hint; at or
        above *hard*, frames are refused with ``busy``.
    retry_after:
        Seconds the ``busy`` refusal tells clients to wait.
    checkpoint_every:
        Runner checkpoint interval in WAL elements.
    telemetry_port:
        When not None, an HTTP telemetry sidecar
        (:class:`~repro.obs.httpserv.TelemetryServer`) listens on this
        port (0 = ephemeral) sharing the gateway's event loop, serving
        ``/metrics``, ``/healthz`` and ``/sources``.
    """

    __slots__ = (
        "schema",
        "host",
        "port",
        "dedupe_window",
        "liveness_timeout",
        "tick_interval",
        "soft_pressure",
        "hard_pressure",
        "retry_after",
        "checkpoint_every",
        "telemetry_port",
    )

    def __init__(
        self,
        schema: StreamSchema,
        host: str = "127.0.0.1",
        port: int = 0,
        dedupe_window: int = 4096,
        liveness_timeout: float = 2.0,
        tick_interval: Optional[float] = None,
        soft_pressure: float = 0.7,
        hard_pressure: float = 0.95,
        retry_after: float = 0.05,
        checkpoint_every: int = 256,
        telemetry_port: Optional[int] = None,
    ):
        if not isinstance(schema, StreamSchema):
            raise ConfigurationError(f"schema must be a StreamSchema, got {schema!r}")
        if liveness_timeout <= 0:
            raise ConfigurationError(
                f"liveness_timeout must be > 0, got {liveness_timeout!r}"
            )
        if not 0.0 < soft_pressure <= hard_pressure:
            raise ConfigurationError(
                f"need 0 < soft_pressure <= hard_pressure, got "
                f"{soft_pressure!r} / {hard_pressure!r}"
            )
        if retry_after <= 0:
            raise ConfigurationError(f"retry_after must be > 0, got {retry_after!r}")
        self.schema = schema
        self.host = host
        self.port = port
        self.dedupe_window = dedupe_window
        self.liveness_timeout = float(liveness_timeout)
        self.tick_interval = (
            float(tick_interval)
            if tick_interval is not None
            else self.liveness_timeout / 4.0
        )
        if self.tick_interval <= 0:
            raise ConfigurationError(
                f"tick_interval must be > 0, got {tick_interval!r}"
            )
        self.soft_pressure = float(soft_pressure)
        self.hard_pressure = float(hard_pressure)
        self.retry_after = float(retry_after)
        self.checkpoint_every = checkpoint_every
        self.telemetry_port = telemetry_port


class _DirectRunner:
    """In-memory stand-in for :class:`ResilientRunner` (durability off).

    Keeps the gateway's feeding surface uniform — ``feed`` / ``sync`` /
    ``close`` / ``matches`` / ``seq`` — when no directory is given, at
    the cost of losing everything on a crash (which is exactly what an
    undurable deployment asked for).
    """

    __slots__ = ("engine", "matches", "recovered", "_seq", "_closed")

    def __init__(self, engine: Any):
        self.engine = engine
        self.matches: List[Any] = []
        self.recovered = False
        self._seq = 0
        self._closed = False

    def feed(self, element: Any) -> List[Any]:
        self._seq += 1
        out = self.engine.feed(element)
        self.matches.extend(out)
        return out

    def sync(self) -> None:
        pass

    def close(self) -> List[Any]:
        if self._closed:
            return []
        self._closed = True
        out = self.engine.close()
        self.matches.extend(out)
        return out

    @property
    def seq(self) -> int:
        return self._seq


class _Truncate:
    """Queue marker: drop queued lines and truncate the file first.

    Lets the flight-recorder dump *replace* ``flight.jsonl`` (a new dump
    supersedes the previous one) while reusing the off-loop writer — the
    dump still never blocks the event loop on disk I/O (rule R007).
    """

    __slots__ = ()


class _JournalWriter:
    """Off-loop journal appender: a queue drained by a daemon thread.

    The gateway journal is an operator artifact (liveness transitions,
    crash/listen/seal records), appended from coroutine context.
    Writing it inline would block the event loop on disk latency — a
    slow append would stall every connection *and* the liveness timer
    (rule R007) — so appends enqueue, and a writer thread batches queued
    lines to disk.

    :meth:`flush` is the ordering barrier: it returns once everything
    enqueued before it is on disk.  The gateway flushes at the points a
    reader relies on the file — the crash record before the crash
    propagates, ``stop``/``seal`` before the journal is inspected, and
    on demand via :meth:`IngestGateway.flush_journal`.
    """

    _FLUSH_TIMEOUT = 10.0

    def __init__(self, path: Path):
        self._path = path
        #: lines to append; Events are flush barriers; None stops the thread.
        self._queue: "queue.Queue[Union[str, threading.Event, _Truncate, None]]" = (
            queue.Queue()
        )
        self._thread: Optional[threading.Thread] = None
        self._spawn_lock = threading.Lock()

    def append(self, line: str) -> None:
        self._ensure_thread()
        self._queue.put(line)

    def truncate(self) -> None:
        """Start the file over: queued-but-unwritten lines are dropped."""
        self._ensure_thread()
        self._queue.put(_Truncate())

    def flush(self) -> None:
        """Block until every line enqueued before this call is on disk."""
        if self._thread is None or not self._thread.is_alive():
            return
        barrier = threading.Event()
        self._queue.put(barrier)
        barrier.wait(self._FLUSH_TIMEOUT)

    def close(self) -> None:
        """Flush and park the writer thread (respawns on next append)."""
        thread = self._thread
        if thread is None or not thread.is_alive():
            return
        self.flush()
        self._queue.put(None)
        thread.join(self._FLUSH_TIMEOUT)

    def _ensure_thread(self) -> None:
        with self._spawn_lock:
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._drain, name="gateway-journal", daemon=True
                )
                self._thread.start()

    def _drain(self) -> None:
        while True:
            first = self._queue.get()
            batch = [first]
            while True:
                try:
                    batch.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            mode = "a"
            lines: List[str] = []
            for entry in batch:
                if isinstance(entry, str):
                    lines.append(entry)
                elif isinstance(entry, _Truncate):
                    mode = "w"
                    lines = []
            if lines or mode == "w":
                with self._path.open(mode, encoding="utf-8") as handle:
                    handle.writelines(lines)
            parked = False
            for entry in batch:
                if entry is None:
                    parked = True
                elif isinstance(entry, threading.Event):
                    entry.set()
            if parked:
                return


class IngestGateway:
    """One stream's ingestion front door: admission, liveness, durability.

    Parameters
    ----------
    make_engine:
        Zero-argument engine factory.  A factory (not an instance) so a
        recovering incarnation builds the same fresh configuration the
        runner's checkpoint restore expects.
    config:
        :class:`GatewayConfig`.
    directory:
        Durability directory for the :class:`ResilientRunner` (WAL,
        checkpoint, delivery log, gateway journal).  None runs without
        durability (tests, throwaway demos).
    fault:
        Optional :class:`~repro.faultinject.FaultInjector` handed to the
        runner — its crash points simulate the gateway process dying
        mid-ingest.
    tracer / metrics:
        Optional observability attached to the engine; the gateway adds
        its own counters (admission outcomes, busy refusals, liveness
        transitions), records ``source_degraded`` /
        ``source_recovered`` spans, and — with *metrics* attached —
        stage-latency attribution (:class:`~repro.obs.span.SpanTracker`)
        plus per-source watermark/lag/fencing gauges.
    flight:
        Optional :class:`~repro.obs.flight.FlightRecorder`: a bounded
        ring of recent trace records dumped to ``flight.jsonl`` (in the
        durability directory) on crash or SIGTERM.
    clock:
        Wall clock used by the transport layer only (injectable for
        tests); ``time.monotonic`` by default.
    """

    def __init__(
        self,
        make_engine: Callable[[], Any],
        config: GatewayConfig,
        directory: Optional[Union[str, Path]] = None,
        fault: Optional[Any] = None,
        tracer: Optional[Any] = None,
        metrics: Optional[Any] = None,
        flight: Optional[FlightRecorder] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config
        self.schema = config.schema
        self._clock = clock
        engine = make_engine()
        if tracer is not None or metrics is not None:
            engine.enable_observability(tracer=tracer, metrics=metrics)
        self.tracer = tracer
        self.registry = metrics
        if directory is not None:
            self.directory: Optional[Path] = Path(directory)
            self.runner: Any = ResilientRunner(
                engine,
                self.directory,
                checkpoint_every=config.checkpoint_every,
                fault=fault,
            )
        else:
            if fault is not None:
                raise ConfigurationError(
                    "fault injection needs a durability directory — a crash "
                    "without a WAL has nothing to recover from"
                )
            self.directory = None
            self.runner = _DirectRunner(engine)
        self._journal_writer: Optional[_JournalWriter] = (
            _JournalWriter(self.directory / JOURNAL_NAME)
            if self.directory is not None
            else None
        )
        self.admission = AdmissionController(self.schema, window=config.dedupe_window)
        self.liveness = LivenessTracker(
            config.liveness_timeout, slack=self.schema.source_slack
        )
        self.recovered_frames = 0
        self._known_sources: Set[str] = set()
        if self.directory is not None and self.runner.recovered:
            events = []
            emitted = -1
            for element in read_wal_elements(self.directory):
                if isinstance(element, Event):
                    events.append(element)
                elif isinstance(element, Punctuation) and element.ts > emitted:
                    emitted = element.ts
            self.recovered_frames = self.admission.preload_events(events)
            # Restore watermark progress, not just dedupe state.  The
            # emitted mark resumes at the highest punctuation the WAL fed
            # downstream (post-restart punctuation stays monotone with
            # the pre-crash stream), and every journalled source is
            # re-registered floored at that mark: until it reconnects
            # and speaks — or the liveness timeout fences it — it keeps
            # holding the min-merge, so the first source back after a
            # restart cannot race punctuation past sources still backing
            # off, late-dropping their in-flight frames.
            self.liveness.watermarks.restore_state(
                {"marks": {}, "fenced": [], "emitted": emitted}
            )
            now = self._clock()
            for source in self._read_journal_sources():
                self._known_sources.add(source)
                self.liveness.connect(source, now)
            self._journal(
                "recover",
                frames=self.recovered_frames,
                watermark=emitted,
                sources=sorted(self._known_sources),
            )
        self.busy_total = 0
        self.throttled_total = 0
        self.crashed = False
        self.closed = False
        self.terminated = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._tick_task: Optional[asyncio.Task] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self._bound_port: Optional[int] = None
        self._telemetry: Optional[TelemetryServer] = None
        # Latency attribution and the flight recorder ride on the same
        # enablement story as engine observability: None means every hot
        # path pays exactly one attribute check (priced by E22).
        self._spans: Optional[SpanTracker] = (
            SpanTracker(metrics) if metrics is not None else None
        )
        self._lag_panel: Optional[SourceLagPanel] = (
            SourceLagPanel(metrics) if metrics is not None else None
        )
        self._flight = flight
        self._flight_writer: Optional[_JournalWriter] = (
            _JournalWriter(self.directory / FLIGHT_NAME)
            if flight is not None and self.directory is not None
            else None
        )
        self._last_shed = 0
        self._last_retractions = 0
        if flight is not None and isinstance(self.runner, ResilientRunner):
            # Time each group commit off the runner's own sync point so
            # the flight timeline can name a slow WAL flush directly.
            self.runner.sync_probe = (self._clock, self._note_sync_duration)
        if metrics is not None:
            self._c_admitted = metrics.counter(
                "repro_ingest_admitted_total", "frames admitted and fed"
            )
            self._c_duplicates = metrics.counter(
                "repro_ingest_duplicates_total", "redelivered frames deduped"
            )
            self._c_quarantined = metrics.counter(
                "repro_ingest_quarantined_total", "frames failing schema admission"
            )
            self._c_busy = metrics.counter(
                "repro_ingest_busy_total", "frames refused under hard backpressure"
            )
            self._c_degraded = metrics.counter(
                "repro_ingest_degraded_total", "liveness degradations"
            )
            self._c_recovered = metrics.counter(
                "repro_ingest_recovered_total", "source recoveries"
            )
            self._g_live = metrics.gauge(
                "repro_ingest_sources_live", "sources currently live"
            )
            self._g_watermark = metrics.gauge(
                "repro_ingest_merged_watermark", "merged source watermark"
            )
        else:
            self._c_admitted = self._c_duplicates = self._c_quarantined = None
            self._c_busy = self._c_degraded = self._c_recovered = None
            self._g_live = self._g_watermark = None

    # -- engine access ---------------------------------------------------------------

    @property
    def engine(self) -> Any:
        return self.runner.engine

    def results(self) -> List[Any]:
        """Matches delivered by this incarnation."""
        return list(self.runner.matches)

    @property
    def port(self) -> int:
        if self._bound_port is None:
            raise ReproError("gateway is not listening; call start() first")
        return self._bound_port

    # -- admission core (transport-independent) ----------------------------------------

    def pressure(self) -> float:
        """Shed-policy occupancy in [0, 1+); 0.0 without a shed policy."""
        shed = getattr(self.engine, "shed", None)
        if shed is None:
            return 0.0
        return shed.pressure(self.engine.state_size())

    def admit_frame(
        self,
        source: str,
        etype: Any,
        attrs: Any,
        now: Optional[float] = None,
        span: Any = None,
    ) -> Dict[str, Any]:
        """Decide and apply one event frame; returns the ack payload.

        The full admission ladder: backpressure refusal → schema
        quarantine → duplicate drop → feed + watermark advance.  Raises
        :class:`~repro.faultinject.CrashError` when an injected crash
        point fires (the caller owns crash semantics).  The frame is NOT
        durable until :meth:`sync_acks` — transports must sync before
        acking admitted frames.

        *span* is the client-minted span context from the wire frame
        (``{"t0": <monotonic seconds>}``); it only feeds latency
        attribution and never changes the decision.
        """
        if self.crashed:
            raise ReproError("gateway crashed; rebuild it to recover")
        if now is None:
            now = self._clock()
        spans = self._spans
        t_start = self._clock() if spans is not None else 0.0
        self._remember_source(source)
        pressure = self.pressure()
        if pressure >= self.config.hard_pressure:
            self.busy_total += 1
            if self._c_busy is not None:
                self._c_busy.inc()
            if self._flight is not None:
                self._flight.note(now, "busy", source, int(pressure * 10000))
            if spans is not None:
                t_admit = self._clock()
                spans.note_frame(
                    source, "busy", t_start, t_admit, t_admit, span_origin(span)
                )
            return {
                "status": "busy",
                "retry_after": self.config.retry_after,
                "pressure": round(pressure, 4),
            }
        admission = self.admission.admit(source, etype, attrs)
        if admission.outcome is AdmissionOutcome.QUARANTINED:
            if self._c_quarantined is not None:
                self._c_quarantined.inc()
            # Stamp activity: a source sending garbage is alive, and its
            # malformed frames must not read as silence to liveness.
            transition = self.liveness.connect(source, now)
            if transition is not None:
                self._note_transition(transition)
            if self._flight is not None:
                self._flight.note(
                    now, "quarantine", source, detail=str(admission.reason)[:60]
                )
            if spans is not None:
                t_admit = self._clock()
                spans.note_frame(
                    source, "quarantined", t_start, t_admit, t_admit,
                    span_origin(span),
                )
            return {"status": "quarantined", "reason": admission.reason}
        if admission.outcome is AdmissionOutcome.DUPLICATE:
            if self._c_duplicates is not None:
                self._c_duplicates.inc()
            transition = self.liveness.connect(source, now)
            if transition is not None:
                self._note_transition(transition)
            if self._flight is not None:
                self._flight.note(now, "dup", source)
            if spans is not None:
                t_admit = self._clock()
                spans.note_frame(
                    source, "duplicate", t_start, t_admit, t_admit,
                    span_origin(span),
                )
            return {"status": "duplicate"}
        event = admission.event
        transition = self.liveness.observe(source, event.ts, now)
        if transition is not None:
            self._note_transition(transition)
        t_admit = self._clock() if spans is not None else 0.0
        matches_before = len(self.runner.matches) if spans is not None else 0
        try:
            self.runner.feed(event)
            self._advance_watermark()
        except CrashError:
            self._note_crash()
            raise
        if self._c_admitted is not None:
            self._c_admitted.inc()
        if self._flight is not None:
            self._flight.note(now, "admit", source, value=event.ts)
        if spans is not None:
            t_feed = self._clock()
            spans.note_frame(
                source, "admitted", t_start, t_admit, t_feed,
                span_origin(span), event.eid,
            )
            self._note_emitted_since(matches_before, t_feed)
        ack: Dict[str, Any] = {"status": "admitted"}
        if pressure >= self.config.soft_pressure:
            # Soft band: admit, but ask the client to slow down
            # proportionally to how deep into the band we are.
            band = self.config.hard_pressure - self.config.soft_pressure
            depth = (pressure - self.config.soft_pressure) / band if band else 1.0
            ack["throttle"] = round(self.config.retry_after * min(1.0, depth), 6)
            self.throttled_total += 1
        return ack

    def assert_watermark(
        self, source: str, ts: int, now: Optional[float] = None
    ) -> Dict[str, Any]:
        """An idle source asserted its progress; advance punctuation."""
        if self.crashed:
            raise ReproError("gateway crashed; rebuild it to recover")
        if now is None:
            now = self._clock()
        self._remember_source(source)
        transition = self.liveness.connect(source, now)
        if transition is not None:
            self._note_transition(transition)
        self.liveness.assert_watermark(source, ts, now)
        try:
            self._advance_watermark()
        except CrashError:
            self._note_crash()
            raise
        return {"status": "ok", "watermark": self.liveness.merged_watermark()}

    def sync_acks(self) -> None:
        """Group commit: make every fed frame durable before acking it."""
        self.runner.sync()

    def connect_source(self, source: str, now: Optional[float] = None) -> None:
        """Register a (re)connecting source with liveness."""
        if now is None:
            now = self._clock()
        self._remember_source(source)
        transition = self.liveness.connect(source, now)
        if transition is not None:
            self._note_transition(transition)

    def disconnect_source(self, source: str, now: Optional[float] = None) -> None:
        """Note a departing source; the liveness timeout fences it later."""
        if now is None:
            now = self._clock()
        transition = self.liveness.disconnect(source, now)
        if transition is not None:
            self._note_transition(transition)
            try:
                self._advance_watermark()
            except CrashError:
                self._note_crash()
                raise

    def tick(self, now: Optional[float] = None) -> List[Transition]:
        """One liveness sweep: degrade silent sources, advance the merge."""
        if self.crashed or self.closed:
            return []
        if now is None:
            now = self._clock()
        transitions = self.liveness.tick(now)
        for transition in transitions:
            self._note_transition(transition)
        if transitions:
            try:
                self._advance_watermark()
            except CrashError:
                self._note_crash()
                raise
        return transitions

    def _advance_watermark(self) -> None:
        # Fed AFTER the event that moved it: the mark trails t_event by
        # slack + 1, so the punctuation never contradicts its trigger.
        punctuation = self.liveness.watermarks.advance()
        if punctuation is not None:
            self.runner.feed(punctuation)
        if (
            self._g_watermark is None
            and self._lag_panel is None
            and self._flight is None
        ):
            # Unobserved gateways skip the merge entirely: min-merging
            # the source marks is the one non-trivial cost here.
            return
        merged = self.liveness.merged_watermark()
        if self._g_watermark is not None:
            self._g_watermark.set(merged)
        if self._lag_panel is not None:
            self._lag_panel.update(
                self.liveness.source_marks(), self.liveness.fenced_map(), merged
            )
        if self._flight is not None and punctuation is not None:
            now = self._clock()
            self._flight.note(now, "watermark", value=merged)
            self._note_engine_pressure(now)

    def _note_engine_pressure(self, now: float) -> None:
        """Flight records for reorder holds, sheds, and retractions.

        Read at watermark moves (the cadence at which these quantities
        change meaningfully) via getattr so plain engines — no reorder
        wrapper, no shedding, no speculation — cost nothing.
        """
        flight = self._flight
        if flight is None:
            return
        engine = self.engine
        depth_fn = getattr(engine, "buffer_size", None)
        oldest_fn = getattr(engine, "oldest_buffered_ts", None)
        if callable(depth_fn):
            depth = depth_fn()
            if depth:
                oldest = oldest_fn() if callable(oldest_fn) else None
                flight.note(
                    now, "hold", value=depth,
                    detail="" if oldest is None else str(oldest),
                )
        stats = getattr(engine, "stats", None)
        shed = getattr(stats, "events_shed", 0) if stats is not None else 0
        if shed > self._last_shed:
            flight.note(now, "shed", value=shed)
            self._last_shed = shed
        speculation = getattr(engine, "speculation", None)
        if speculation is None:
            inner = getattr(engine, "inner", None)
            speculation = getattr(inner, "speculation", None)
        if speculation is not None:
            retractions = len(speculation.retractions)
            if retractions > self._last_retractions:
                flight.note(now, "retraction", value=retractions)
                self._last_retractions = retractions

    def _note_transition(self, transition: Transition) -> None:
        stage = (
            stages.SOURCE_RECOVERED
            if transition.status is SourceStatus.LIVE
            else stages.SOURCE_DEGRADED
        )
        if self.tracer is not None:
            self.tracer.record(
                self.engine.arrival_index,
                stage,
                detail=f"{transition.source}:{transition.status.value}",
                stream="ingest",
            )
        if transition.status is SourceStatus.LIVE:
            if self._c_recovered is not None:
                self._c_recovered.inc()
        elif self._c_degraded is not None:
            self._c_degraded.inc()
        if self._g_live is not None:
            self._g_live.set(self.liveness.live_count())
        if self._flight is not None:
            if transition.status is SourceStatus.DEGRADED:
                self._flight.note(transition.at, "fence", transition.source)
            elif transition.status is SourceStatus.LIVE:
                self._flight.note(transition.at, "unfence", transition.source)
        if self._lag_panel is not None:
            self._lag_panel.update(
                self.liveness.source_marks(),
                self.liveness.fenced_map(),
                self.liveness.merged_watermark(),
            )
        self._journal(
            "transition",
            source=transition.source,
            status=transition.status.value,
            at=round(transition.at, 6),
            watermark=self.liveness.merged_watermark(),
        )

    def _note_crash(self) -> None:
        self.crashed = True
        self._journal("crash", seq=self.runner.seq)
        if self._flight is not None:
            self._flight.note(self._clock(), "crash", value=self.runner.seq)
            self._dump_flight("crash")
        # The crash record must hit disk before the CrashError propagates:
        # the next incarnation (and the operator) reads the journal to
        # learn the previous one died.
        self.flush_journal()

    def _note_sync_duration(self, seconds: float) -> None:
        """The runner's sync probe: one group commit took *seconds*."""
        if self._flight is not None:
            self._flight.note(
                self._clock(), "sync", value=int(seconds * 1_000_000)
            )

    def _note_emitted_since(self, matches_before: int, t_emit: float) -> None:
        """Close emit-path spans for matches delivered by the last feed."""
        spans = self._spans
        if spans is None:
            return
        matches = self.runner.matches
        if len(matches) <= matches_before:
            return
        eids: List[int] = []
        for match in matches[matches_before:]:
            for event in getattr(match, "events", ()):
                eid = getattr(event, "eid", None)
                if eid is not None:
                    eids.append(eid)
        if eids:
            spans.note_emitted(eids, t_emit)

    def _dump_flight(self, reason: str) -> None:
        if self._flight is None or self._flight_writer is None:
            return
        lines = self._flight.dump_lines(
            reason, meta={"stream": self.schema.name, "seq": self.runner.seq}
        )
        # Each dump replaces the previous one: flight.jsonl is "the last
        # moments", not an append-only log, and a stacked second header
        # would corrupt the reader.
        self._flight_writer.truncate()
        for line in lines:
            self._flight_writer.append(line + "\n")
        self._flight_writer.flush()

    def dump_flight(self, reason: str = "manual") -> None:
        """Write the flight ring to ``flight.jsonl`` now (operator probe).

        Crash and SIGTERM paths dump on their own; this is for drills
        and debugging a live-but-suspect gateway.
        """
        self._dump_flight(reason)

    def _journal(self, kind: str, **fields: Any) -> None:
        if self._journal_writer is None:
            return
        record = {"kind": kind}
        record.update(fields)
        self._journal_writer.append(json.dumps(record, sort_keys=True) + "\n")

    def flush_journal(self) -> None:
        """Block until every journal record enqueued so far is on disk.

        Journal appends are asynchronous (see :class:`_JournalWriter`);
        anything that reads ``gateway.jsonl`` while the gateway lives —
        tests, operator tooling — must flush first.  ``stop``/``seal``
        and crash paths flush on their own.
        """
        if self._journal_writer is not None:
            self._journal_writer.flush()

    def _remember_source(self, source: str) -> None:
        """Journal a source's first sighting so a restart re-registers it."""
        if source in self._known_sources:
            return
        self._known_sources.add(source)
        self._journal("source", source=source)

    def _read_journal_sources(self) -> List[str]:
        """Distinct journalled source ids, in first-sighting order."""
        path = self.directory / JOURNAL_NAME
        if not path.exists():
            return []
        sources: List[str] = []
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn trailing write: repaired semantics, skip
            if record.get("kind") == "source" and record.get("source"):
                if record["source"] not in sources:
                    sources.append(record["source"])
        return sources

    # -- stats / sealing ---------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Operator-facing counters, JSON-ready (the ``stats`` op body)."""
        return {
            "stream": self.schema.name,
            "admitted": self.admission.admitted,
            "duplicates": self.admission.duplicates,
            "quarantined": self.admission.quarantined,
            "busy": self.busy_total,
            "throttled": self.throttled_total,
            "recovered_frames": self.recovered_frames,
            "watermark": self.liveness.merged_watermark(),
            "sources": {
                source: {
                    "status": self.liveness.status_of(source).value
                    if self.liveness.status_of(source) is not None
                    else "unknown",
                    "admitted": self.admission.source_counts(source).admitted,
                    "duplicates": self.admission.source_counts(source).duplicates,
                    "quarantined": self.admission.source_counts(source).quarantined,
                }
                for source in sorted(
                    set(self.admission.sources()) | set(self.liveness.sources())
                )
            },
            "degraded_total": self.liveness.degraded_total,
            "recovered_total": self.liveness.recovered_total,
            "state_size": self.engine.state_size(),
            "seq": self.runner.seq,
            "matches": len(self.runner.matches),
        }

    def seal(self) -> List[Any]:
        """Close the engine through the runner; returns final matches."""
        if self.crashed:
            raise ReproError("gateway crashed; rebuild it to recover")
        self.closed = True
        matches = self.runner.close()
        self._journal("seal", matches=len(self.runner.matches))
        if self._flight is not None:
            self._flight.note(
                self._clock(), "seal", value=len(self.runner.matches)
            )
        self.flush_journal()
        return matches

    # -- telemetry sidecar -------------------------------------------------------------

    @property
    def telemetry_port(self) -> int:
        """The telemetry sidecar's bound port (raises when disabled)."""
        if self._telemetry is None:
            raise ReproError(
                "telemetry is disabled; pass GatewayConfig(telemetry_port=0)"
            )
        return self._telemetry.port

    def _telemetry_routes(self) -> Dict[str, Route]:
        return {
            "/metrics": self._route_metrics,
            "/healthz": self._route_healthz,
            "/sources": self._route_sources,
        }

    def _route_metrics(self) -> Tuple[int, str, str]:
        if self.registry is None:
            return 404, "text/plain", "metrics are disabled on this gateway\n"
        return 200, "text/plain; version=0.0.4", render_prometheus(self.registry)

    def _route_healthz(self) -> Tuple[int, str, str]:
        pressure = self.pressure()
        if pressure >= self.config.hard_pressure:
            band = "busy"
        elif pressure >= self.config.soft_pressure:
            band = "throttle"
        else:
            band = "ok"
        body = {
            "status": "crashed" if self.crashed else "ok",
            "pressure": round(pressure, 4),
            "band": band,
            "live_sources": self.liveness.live_count(),
            "watermark": self.liveness.merged_watermark(),
            "seq": self.runner.seq,
        }
        status = 503 if self.crashed else 200
        return status, "application/json", json.dumps(body, sort_keys=True) + "\n"

    def _route_sources(self) -> Tuple[int, str, str]:
        marks = self.liveness.source_marks()
        fenced = self.liveness.fenced_map()
        top = max(marks.values(), default=0)
        sources: Dict[str, Any] = {}
        for source in sorted(set(self.admission.sources()) | set(marks)):
            status = self.liveness.status_of(source)
            counts = self.admission.source_counts(source)
            mark = marks.get(source, 0)
            sources[source] = {
                "status": status.value if status is not None else "unknown",
                "watermark": mark,
                "lag": max(0, top - mark),
                "fenced": bool(fenced.get(source)),
                "admitted": counts.admitted,
                "duplicates": counts.duplicates,
                "quarantined": counts.quarantined,
                "dedupe_window": self.admission.window_occupancy(source),
            }
        body = {
            "stream": self.schema.name,
            "watermark": self.liveness.merged_watermark(),
            "sources": sources,
        }
        return 200, "application/json", json.dumps(body, sort_keys=True) + "\n"

    # -- asyncio transport -------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listen socket and start the liveness timer."""
        if self.crashed:
            raise ReproError("gateway crashed; rebuild it to recover")
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._bound_port = self._server.sockets[0].getsockname()[1]
        self._tick_task = asyncio.get_running_loop().create_task(self._tick_loop())
        if self.config.telemetry_port is not None:
            telemetry = TelemetryServer(
                self.config.host,
                self.config.telemetry_port,
                self._telemetry_routes(),
            )
            await telemetry.start()
            self._telemetry = telemetry
            self._journal("telemetry", port=telemetry.port)
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, self._on_sigterm)
        except (NotImplementedError, RuntimeError, ValueError):
            # Off-main-thread loops (GatewayHandle) and platforms without
            # signal support: SIGTERM dumps are a best-effort extra.
            pass
        self._journal("listen", host=self.config.host, port=self._bound_port)

    def _on_sigterm(self) -> None:
        """SIGTERM: dump the flight ring and let the serve loop exit."""
        self.terminated = True
        if self._flight is not None:
            self._flight.note(self._clock(), "sigterm", value=self.runner.seq)
            self._dump_flight("sigterm")
        self.flush_journal()

    async def stop(self, seal: bool = True) -> None:
        """Stop accepting, drop connections, optionally seal the engine.

        Shared handles are swapped out *before* the first await (R006):
        a concurrent ``stop`` or a tick-loop crash interleaving at an
        await point sees the already-cleared attribute instead of
        double-closing, and nothing decided before a suspension is
        written back after one.
        """
        task, self._tick_task = self._tick_task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        telemetry, self._telemetry = self._telemetry, None
        if telemetry is not None:
            await telemetry.stop()
        writers, self._writers = list(self._writers), set()
        for writer in writers:
            writer.close()
        for writer in writers:
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # peer already gone; the transport is torn either way
        if seal and not self.crashed and not self.closed:
            self.seal()
        if self._journal_writer is not None:
            self._journal_writer.close()
        if self._flight_writer is not None:
            self._flight_writer.close()

    async def _tick_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.tick_interval)
            try:
                self.tick(self._clock())
            except CrashError:
                self._abort_crashed()
                return

    def _abort_crashed(self) -> None:
        # Simulated process death: every connection is torn, nothing is
        # acked, the listener stops.  Clients reconnect to the next
        # incarnation and resend; the WAL-preloaded window dedupes.
        task, self._tick_task = self._tick_task, None
        if task is not None:
            task.cancel()
        server, self._server = self._server, None
        if server is not None:
            server.close()
        telemetry, self._telemetry = self._telemetry, None
        if telemetry is not None:
            telemetry.abort()
        for writer in list(self._writers):
            writer.transport.abort()
        self._writers.clear()
        self.flush_journal()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        source: Optional[str] = None
        buffer = b""
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                spans = self._spans
                if spans is not None:
                    spans.open_cohort(self._clock())
                buffer += chunk
                lines = buffer.split(b"\n")
                buffer = lines.pop()
                replies: List[Dict[str, Any]] = []
                fed = False
                goodbye = False
                for raw in lines:
                    raw = raw.strip()
                    if not raw:
                        continue
                    try:
                        frame = json.loads(raw)
                    except ValueError:
                        replies.append(
                            {"op": "error", "reason": "frame is not valid JSON"}
                        )
                        goodbye = True
                        break
                    op = frame.get("op")
                    if source is None:
                        if op != "hello":
                            replies.append(
                                {"op": "error", "reason": "first frame must be hello"}
                            )
                            goodbye = True
                            break
                        reply, source = self._handle_hello(frame)
                        replies.append(reply)
                        if source is None:
                            goodbye = True
                            break
                        continue
                    if op == "event":
                        ack = self.admit_frame(
                            source,
                            frame.get("etype"),
                            frame.get("attrs"),
                            span=frame.get(SPAN_FIELD),
                        )
                        ack["op"] = "ack"
                        ack["n"] = frame.get("n")
                        fed = fed or ack["status"] == "admitted"
                        replies.append(ack)
                    elif op == "watermark":
                        ack = self.assert_watermark(source, int(frame.get("ts", 0)))
                        ack["op"] = "ack"
                        ack["n"] = frame.get("n")
                        fed = True
                        replies.append(ack)
                    elif op == "stats":
                        replies.append({"op": "stats_ok", "stats": self.stats()})
                    elif op == "bye":
                        replies.append({"op": "bye_ok"})
                        goodbye = True
                        break
                    else:
                        replies.append(
                            {"op": "error", "reason": f"unknown op {op!r}"}
                        )
                t_sync_start = self._clock() if spans is not None else 0.0
                if fed:
                    # The group commit: nothing above is acked until the
                    # WAL tail holding it is flushed.
                    self.sync_acks()
                t_sync_end = self._clock() if spans is not None else 0.0
                if replies:
                    writer.write(
                        b"".join(
                            json.dumps(reply, sort_keys=True).encode("utf-8") + b"\n"
                            for reply in replies
                        )
                    )
                    await writer.drain()
                if spans is not None:
                    spans.seal_cohort(t_sync_start, t_sync_end, self._clock())
                if goodbye:
                    break
        except CrashError:
            if self._spans is not None:
                self._spans.drop_cohort()
            self._abort_crashed()
            return
        except ReproError:
            # Another connection crashed the gateway mid-batch; this
            # handler's socket is already aborted.  Fall through.
            pass
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            self._writers.discard(writer)
            if source is not None and not self.crashed:
                self.disconnect_source(source)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # peer reset or transport aborted mid-teardown

    def _handle_hello(self, frame: Dict[str, Any]) -> Any:
        source = frame.get("source")
        stream = frame.get("stream")
        proto = frame.get("proto")
        if not isinstance(source, str) or not source:
            return {"op": "error", "reason": "hello needs a source id"}, None
        if proto != PROTOCOL_VERSION:
            return (
                {
                    "op": "error",
                    "reason": f"protocol {proto!r} unsupported (speak "
                    f"{PROTOCOL_VERSION})",
                },
                None,
            )
        if stream != self.schema.name:
            return (
                {
                    "op": "error",
                    "reason": f"stream {stream!r} not served here "
                    f"(serving {self.schema.name!r})",
                },
                None,
            )
        self.connect_source(source)
        return (
            {
                "op": "hello_ok",
                "stream": self.schema.name,
                "proto": PROTOCOL_VERSION,
                "recovered_frames": self.recovered_frames,
            },
            source,
        )


class GatewayHandle:
    """A gateway event loop running in a daemon thread (sync callers).

    The CLI's ``repro send``, the examples, and the soak tests are
    synchronous; this wraps the asyncio transport so they can start a
    gateway, read its bound port, and stop it without touching a loop.
    """

    def __init__(self, gateway: IngestGateway):
        self.gateway = gateway
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._error: Optional[BaseException] = None

    def start(self, timeout: float = 10.0) -> "GatewayHandle":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout):
            raise ReproError("gateway failed to start listening in time")
        if self._error is not None:
            raise ReproError(f"gateway failed to start: {self._error}")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.gateway.start())
        except BaseException as exc:  # startup failure surfaces to start()
            self._error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    @property
    def port(self) -> int:
        return self.gateway.port

    def stop(self, seal: bool = True, timeout: float = 10.0) -> None:
        loop = self._loop
        if loop is None or not loop.is_running():
            if self._thread is not None:
                self._thread.join(timeout)
            return
        future = asyncio.run_coroutine_threadsafe(self.gateway.stop(seal=seal), loop)
        try:
            future.result(timeout)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            if self._thread is not None:
                self._thread.join(timeout)


def serve_in_thread(gateway: IngestGateway) -> GatewayHandle:
    """Start *gateway* in a background thread; returns the handle."""
    return GatewayHandle(gateway).start()
