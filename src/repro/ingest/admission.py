"""Idempotent admission: redelivered frames count, they do not re-feed.

Retrying clients make delivery at-least-once — a crash between durable
admission and the ack makes the client resend, and an ingestion layer
that re-feeds the resend silently double-counts matches.  Admission is
therefore *idempotent within a bounded window*: every frame derives a
deterministic idempotency id (:mod:`repro.ingest.schema`), each source
keeps a bounded FIFO window of recently admitted ids, and a frame whose
id is in the window is counted as a duplicate and dropped before the
engine ever sees it.

The window is engine state in the snapshot sense: it must survive a
crash or redeliveries racing the restart get through.  Two mechanisms
cover the two failure shapes:

* :meth:`AdmissionController.snapshot_state` /
  :meth:`~AdmissionController.restore_state` — checkpointable state,
  complete under analyzer rule R001;
* :meth:`AdmissionController.preload` — rebuild from the WAL the
  gateway's :class:`~repro.core.recovery.ResilientRunner` already
  keeps, for recovery paths that have the log but not a checkpoint of
  this controller.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Dict, Iterable, Mapping, NamedTuple, Optional

from repro.core.errors import ConfigurationError
from repro.core.event import Event
from repro.ingest.schema import StreamSchema


class AdmissionOutcome(enum.Enum):
    """What happened to one offered frame."""

    ADMITTED = "admitted"  #: validated, first delivery — feed the engine
    DUPLICATE = "duplicate"  #: redelivery of an admitted frame — count, drop
    QUARANTINED = "quarantined"  #: schema violation — count, drop, report reason


class Admission(NamedTuple):
    """The decision for one frame."""

    outcome: AdmissionOutcome
    reason: Optional[str]  #: quarantine reason (None otherwise)
    event: Optional[Event]  #: the built event (ADMITTED only)
    idem_id: Optional[str]  #: derived idempotency id (None when quarantined)


class DedupeWindow:
    """Bounded FIFO set of recently admitted idempotency ids."""

    __slots__ = ("capacity", "_order", "_ids")

    def __init__(self, capacity: int):
        if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity < 1:
            raise ConfigurationError(
                f"dedupe window capacity must be an int >= 1, got {capacity!r}"
            )
        self.capacity = capacity
        self._order: deque = deque()
        self._ids: set = set()

    def __contains__(self, idem_id: str) -> bool:
        return idem_id in self._ids

    def __len__(self) -> int:
        return len(self._ids)

    def add(self, idem_id: str) -> None:
        """Record *idem_id*, evicting the oldest id past capacity."""
        if idem_id in self._ids:
            return
        self._order.append(idem_id)
        self._ids.add(idem_id)
        while len(self._order) > self.capacity:
            evicted = self._order.popleft()
            self._ids.discard(evicted)

    def snapshot_state(self) -> dict:
        """FIFO order is the whole state; the set is derived from it."""
        return {"order": list(self._order), "size": len(self._ids)}

    def restore_state(self, state: dict) -> None:
        self._order = deque(state["order"])
        self._ids = set(self._order)

    def __repr__(self) -> str:
        return f"DedupeWindow({len(self._ids)}/{self.capacity})"


class SourceAdmission:
    """Per-source dedupe window plus the per-source accounting."""

    __slots__ = ("window", "admitted", "duplicates", "quarantined")

    def __init__(self, capacity: int):
        self.window = DedupeWindow(capacity)
        self.admitted = 0
        self.duplicates = 0
        self.quarantined = 0

    def snapshot_state(self) -> dict:
        return {
            "window": self.window.snapshot_state(),
            "admitted": self.admitted,
            "duplicates": self.duplicates,
            "quarantined": self.quarantined,
        }

    def restore_state(self, state: dict) -> None:
        self.window.restore_state(state["window"])
        self.admitted = state["admitted"]
        self.duplicates = state["duplicates"]
        self.quarantined = state["quarantined"]

    def __repr__(self) -> str:
        return (
            f"SourceAdmission(admitted={self.admitted}, "
            f"duplicates={self.duplicates}, quarantined={self.quarantined})"
        )


class AdmissionController:
    """Schema validation + per-source idempotent dedupe, in one decision.

    Parameters
    ----------
    schema:
        The stream's admission contract.
    window:
        Per-source dedupe window capacity (ids).  Bound it by the
        client's resend horizon: a window of N dedupes any redelivery
        arriving within N admitted frames of the original.
    """

    def __init__(self, schema: StreamSchema, window: int = 4096):
        if not isinstance(schema, StreamSchema):
            raise ConfigurationError(f"schema must be a StreamSchema, got {schema!r}")
        self.schema = schema
        self.window = window
        self._sources: Dict[str, SourceAdmission] = {}
        self._recovered = DedupeWindow(max(window, 1))

    # -- the decision -------------------------------------------------------------------

    def admit(self, source: str, etype: Any, attrs: Any) -> Admission:
        """Decide one frame from *source*; never raises on bad frames."""
        state = self._sources.get(source)
        if state is None:
            state = self._sources[source] = SourceAdmission(self.window)
        reason = self.schema.check_frame(etype, attrs)
        if reason is not None:
            state.quarantined += 1
            return Admission(AdmissionOutcome.QUARANTINED, reason, None, None)
        idem = self.schema.idempotency_id(etype, attrs)
        if idem in state.window or idem in self._recovered:
            state.duplicates += 1
            return Admission(AdmissionOutcome.DUPLICATE, None, None, idem)
        state.window.add(idem)
        state.admitted += 1
        return Admission(
            AdmissionOutcome.ADMITTED, None, self.schema.build_event(etype, attrs), idem
        )

    # -- recovery -----------------------------------------------------------------------

    def preload(self, idem_ids: Iterable[str]) -> int:
        """Seed the recovery window with ids replayed from a WAL.

        Called once after a crash, before any source reconnects: the
        WAL's events re-derive their ids through the schema, and any
        post-restart redelivery of one of them is a duplicate even
        though the per-source windows restarted empty.  Returns the
        number of ids loaded (the window keeps the most recent ones).
        """
        count = 0
        for idem in idem_ids:
            self._recovered.add(idem)
            count += 1
        return count

    def preload_events(self, events: Iterable[Event]) -> int:
        """Seed the recovery window from replayed WAL events."""
        return self.preload(
            self.schema.idempotency_id(event.etype, event._attrs)
            for event in events
        )

    # -- accounting ---------------------------------------------------------------------

    def source_counts(self, source: str) -> SourceAdmission:
        """Per-source accounting (zeros for a never-seen source)."""
        return self._sources.get(source, SourceAdmission(self.window))

    def window_occupancy(self, source: str) -> int:
        """Ids currently held in *source*'s dedupe window (telemetry)."""
        state = self._sources.get(source)
        return len(state.window) if state is not None else 0

    @property
    def admitted(self) -> int:
        return sum(s.admitted for s in self._sources.values())

    @property
    def duplicates(self) -> int:
        return sum(s.duplicates for s in self._sources.values())

    @property
    def quarantined(self) -> int:
        return sum(s.quarantined for s in self._sources.values())

    def sources(self) -> list:
        """Known source ids, sorted for reproducible reporting."""
        return sorted(self._sources)

    # -- checkpoint ---------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "sources": {
                source: self._sources[source].snapshot_state()
                for source in sorted(self._sources)
            },
            "recovered": self._recovered.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        self._sources = {}
        for source, sub in state["sources"].items():
            entry = SourceAdmission(self.window)
            entry.restore_state(sub)
            self._sources[source] = entry
        self._recovered = DedupeWindow(max(self.window, 1))
        self._recovered.restore_state(state["recovered"])

    def __repr__(self) -> str:
        return (
            f"AdmissionController({self.schema.name!r}, "
            f"sources={len(self._sources)}, admitted={self.admitted}, "
            f"duplicates={self.duplicates}, quarantined={self.quarantined})"
        )
