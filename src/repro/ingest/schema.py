"""Declarative stream schemas: what a source is allowed to send.

A :class:`StreamSchema` is the admission contract between sources and
the gateway, modelled on the streamspec DSL idiom (stream name, typed
event schemas, ``t_event`` field, ``partition_key``, ordering scope,
and a deterministic idempotency-ID derivation).  Everything the
exactly-once story needs is derived, never invented:

* the **occurrence timestamp** of a frame is the value of the schema's
  ``t_event`` field (an int, validated);
* the **idempotency id** is either an explicit unique field or a
  deterministic hash of ``(stream, etype, declared key fields,
  t_event)`` — a redelivered frame derives the same id on any gateway
  incarnation;
* the **event identity** (``eid``) is derived from the idempotency id,
  so replaying a delivery reproduces a byte-identical event and result
  sets stay comparable across crash/recover cycles.

Schemas are plain data (``to_dict``/``from_dict``/JSON file) so a
deployment can version them next to its queries.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.core.errors import ConfigurationError
from repro.core.event import Event

#: Ordering scopes a schema may declare.  ``per_source`` promises each
#: source sends its own events in occurrence order (slack 0 per source);
#: ``per_key`` promises order within a partition key only; ``global``
#: promises nothing beyond the configured per-source slack.
ORDERING_SCOPES = ("per_source", "per_key", "global")

_FIELD_TYPES: Dict[str, tuple] = {
    "int": (int,),
    "str": (str,),
    "float": (int, float),
    "any": (object,),
}


class FieldSpec:
    """One declared attribute: name, wire type, required flag."""

    __slots__ = ("name", "ftype", "required")

    def __init__(self, name: str, ftype: str = "any", required: bool = True):
        if not isinstance(name, str) or not name:
            raise ConfigurationError(f"field name must be a non-empty string, got {name!r}")
        if ftype not in _FIELD_TYPES:
            raise ConfigurationError(
                f"field {name!r}: unknown type {ftype!r}; known: {sorted(_FIELD_TYPES)}"
            )
        self.name = name
        self.ftype = ftype
        self.required = bool(required)

    def check(self, value: Any) -> Optional[str]:
        """Why *value* violates this spec, or None when it conforms."""
        if self.ftype == "any":
            return None
        allowed = _FIELD_TYPES[self.ftype]
        if isinstance(value, bool) or not isinstance(value, allowed):
            return f"field {self.name!r} must be {self.ftype}, got {value!r}"
        return None

    def to_dict(self) -> dict:
        return {"name": self.name, "type": self.ftype, "required": self.required}

    def __repr__(self) -> str:
        flag = "required" if self.required else "optional"
        return f"FieldSpec({self.name}: {self.ftype} {flag})"


class EventSchema:
    """The declared shape of one event type."""

    __slots__ = ("etype", "fields")

    def __init__(self, etype: str, fields: Iterable[FieldSpec] = ()):
        if not isinstance(etype, str) or not etype:
            raise ConfigurationError(
                f"event type must be a non-empty string, got {etype!r}"
            )
        self.etype = etype
        self.fields: Dict[str, FieldSpec] = {}
        for spec in fields:
            if spec.name in self.fields:
                raise ConfigurationError(
                    f"event {etype!r} declares field {spec.name!r} twice"
                )
            self.fields[spec.name] = spec

    def check(self, attrs: Mapping[str, Any]) -> Optional[str]:
        """Why *attrs* violates this event schema, or None."""
        for name, spec in self.fields.items():
            if name not in attrs:
                if spec.required:
                    return f"event {self.etype!r} is missing required field {name!r}"
                continue
            reason = spec.check(attrs[name])
            if reason is not None:
                return f"event {self.etype!r}: {reason}"
        return None

    def to_dict(self) -> dict:
        return {
            "etype": self.etype,
            "fields": [self.fields[name].to_dict() for name in self.fields],
        }


class StreamSchema:
    """The admission contract for one ingested stream.

    Parameters
    ----------
    name:
        Stream name; part of every derived idempotency id.
    t_event:
        Attribute carrying the occurrence timestamp (int >= 0).
    events:
        The event types this stream may carry.
    partition_key:
        Optional attribute used for per-key routing downstream; when
        declared it is required on every frame.
    ordering_scope:
        One of :data:`ORDERING_SCOPES`.
    source_slack:
        Residual per-source disorder the schema tolerates: a source's
        watermark trails its max ``t_event`` by this much.  Must be 0
        under ``per_source`` ordering (that scope *is* the promise).
    idempotency_field:
        Explicit unique-id attribute.  When None, ids are derived by
        hashing ``(name, etype, key fields, t_event)``.
    idempotency_fields:
        The attributes hashed in derived mode (default: all declared
        fields of the event type, sorted).
    """

    __slots__ = (
        "name",
        "t_event",
        "events",
        "partition_key",
        "ordering_scope",
        "source_slack",
        "idempotency_field",
        "idempotency_fields",
    )

    def __init__(
        self,
        name: str,
        t_event: str,
        events: Iterable[EventSchema],
        partition_key: Optional[str] = None,
        ordering_scope: str = "per_source",
        source_slack: int = 0,
        idempotency_field: Optional[str] = None,
        idempotency_fields: Tuple[str, ...] = (),
    ):
        if not isinstance(name, str) or not name:
            raise ConfigurationError(f"stream name must be a non-empty string, got {name!r}")
        if not isinstance(t_event, str) or not t_event:
            raise ConfigurationError(f"t_event must name an attribute, got {t_event!r}")
        if ordering_scope not in ORDERING_SCOPES:
            raise ConfigurationError(
                f"unknown ordering scope {ordering_scope!r}; known: {ORDERING_SCOPES}"
            )
        if not isinstance(source_slack, int) or isinstance(source_slack, bool) or source_slack < 0:
            raise ConfigurationError(
                f"source_slack must be an int >= 0, got {source_slack!r}"
            )
        if ordering_scope == "per_source" and source_slack != 0:
            raise ConfigurationError(
                "per_source ordering promises slack 0; declare ordering_scope "
                f"'global' to tolerate slack {source_slack}"
            )
        if ordering_scope == "per_key" and partition_key is None:
            raise ConfigurationError("per_key ordering needs a partition_key")
        self.name = name
        self.t_event = t_event
        self.events: Dict[str, EventSchema] = {}
        for schema in events:
            if schema.etype in self.events:
                raise ConfigurationError(
                    f"stream {name!r} declares event type {schema.etype!r} twice"
                )
            self.events[schema.etype] = schema
        if not self.events:
            raise ConfigurationError(f"stream {name!r} declares no event types")
        self.partition_key = partition_key
        self.ordering_scope = ordering_scope
        self.source_slack = source_slack
        self.idempotency_field = idempotency_field
        self.idempotency_fields = tuple(idempotency_fields)

    # -- validation -------------------------------------------------------------------

    def check_frame(self, etype: Any, attrs: Any) -> Optional[str]:
        """Why the frame must be quarantined, or None when admissible.

        The checks subsume engine-side admission
        (:func:`repro.core.event.malformed_reason`): any frame passing
        here builds an :class:`~repro.core.event.Event` that the engine
        admits, so gateway-side quarantine accounting matches what
        ``ValidationPolicy.QUARANTINE`` would have counted.
        """
        if not isinstance(etype, str) or not etype:
            return f"event type must be a non-empty string, got {etype!r}"
        if not isinstance(attrs, dict):
            return f"attrs must be an object, got {type(attrs).__name__}"
        event_schema = self.events.get(etype)
        if event_schema is None:
            return (
                f"event type {etype!r} is not declared by stream {self.name!r}; "
                f"declared: {sorted(self.events)}"
            )
        reason = event_schema.check(attrs)
        if reason is not None:
            return reason
        ts = attrs.get(self.t_event)
        if ts is None:
            return f"missing t_event field {self.t_event!r}"
        if type(ts) is not int:
            return f"t_event field {self.t_event!r} must be an int, got {ts!r}"
        if ts < 0:
            return f"t_event field {self.t_event!r} must be >= 0, got {ts}"
        if self.partition_key is not None and self.partition_key not in attrs:
            return f"missing partition key field {self.partition_key!r}"
        if self.idempotency_field is not None and self.idempotency_field not in attrs:
            return f"missing idempotency field {self.idempotency_field!r}"
        for field in self.idempotency_fields:
            if field not in attrs:
                return f"missing idempotency derivation field {field!r}"
        return None

    # -- identity derivation ------------------------------------------------------------

    def idempotency_id(self, etype: str, attrs: Mapping[str, Any]) -> str:
        """Deterministic redelivery identity of a validated frame."""
        if self.idempotency_field is not None:
            return f"{self.name}:{etype}:{attrs[self.idempotency_field]!r}"
        fields = self.idempotency_fields or tuple(
            sorted(self.events[etype].fields)
        )
        material = json.dumps(
            [self.name, etype, attrs.get(self.t_event)]
            + [[field, repr(attrs.get(field))] for field in fields],
            sort_keys=True,
        )
        return hashlib.sha1(material.encode("utf-8")).hexdigest()

    def derive_eid(self, idem_id: str) -> int:
        """Stable positive event id from an idempotency id.

        63 bits of SHA-1: collisions are negligible at any realistic
        window size, and the id survives crash/replay so result-set
        comparisons by event identity keep working.
        """
        digest = hashlib.sha1(idem_id.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF

    def build_event(self, etype: str, attrs: Mapping[str, Any]) -> Event:
        """The engine-side event for a validated frame."""
        idem = self.idempotency_id(etype, attrs)
        return Event(etype, attrs[self.t_event], attrs, eid=self.derive_eid(idem))

    def partition_of(self, attrs: Mapping[str, Any]) -> Optional[Any]:
        """The frame's partition key value (None when not declared)."""
        if self.partition_key is None:
            return None
        return attrs.get(self.partition_key)

    # -- serialisation ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": "repro-streamspec-v1",
            "name": self.name,
            "t_event": self.t_event,
            "partition_key": self.partition_key,
            "ordering_scope": self.ordering_scope,
            "source_slack": self.source_slack,
            "idempotency": {
                "field": self.idempotency_field,
                "fields": list(self.idempotency_fields),
            },
            "events": [self.events[etype].to_dict() for etype in self.events],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StreamSchema":
        if not isinstance(data, Mapping):
            raise ConfigurationError(f"schema document must be an object, got {data!r}")
        declared = data.get("format", "repro-streamspec-v1")
        if declared != "repro-streamspec-v1":
            raise ConfigurationError(f"unsupported schema format {declared!r}")
        events = []
        for entry in data.get("events", ()):
            fields = [
                FieldSpec(
                    spec["name"],
                    spec.get("type", "any"),
                    spec.get("required", True),
                )
                for spec in entry.get("fields", ())
            ]
            events.append(EventSchema(entry["etype"], fields))
        idem = data.get("idempotency") or {}
        return cls(
            name=data.get("name", ""),
            t_event=data.get("t_event", ""),
            events=events,
            partition_key=data.get("partition_key"),
            ordering_scope=data.get("ordering_scope", "per_source"),
            source_slack=data.get("source_slack", 0),
            idempotency_field=idem.get("field"),
            idempotency_fields=tuple(idem.get("fields") or ()),
        )

    def __repr__(self) -> str:
        return (
            f"StreamSchema({self.name!r}, t_event={self.t_event!r}, "
            f"events={sorted(self.events)}, scope={self.ordering_scope})"
        )


def load_schema(path: Union[str, Path]) -> StreamSchema:
    """Read a JSON schema document written by ``StreamSchema.to_dict``."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ConfigurationError(f"{path}: cannot read schema ({exc})") from None
    return StreamSchema.from_dict(data)


def dump_schema(schema: StreamSchema, path: Union[str, Path]) -> None:
    """Write *schema* as an indented JSON document."""
    Path(path).write_text(
        json.dumps(schema.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
