"""Per-source liveness: a silent source must not stall everyone's seals.

The merged watermark (:class:`repro.streams.punctuation.
SourceWatermarks`) is a *minimum* over sources, so one stalled producer
— crashed, partitioned, wedged — freezes punctuation for the whole
stream and negation/Kleene results wait forever.  The tracker layered
here turns that unbounded stall into a bounded, observable degradation:

* every frame (and every connect) stamps the source's last-activity
  time;
* :meth:`LivenessTracker.tick` — driven by the gateway's timer —
  marks any source silent for longer than *timeout* (live or merely
  disconnected) as **degraded** and fences its watermark out of the
  merge; a torn connection alone never fences, because retrying
  clients reconnect constantly and deserve the full timeout;
* a degraded source that speaks again (frame or reconnect) transitions
  back to **live**; its watermark is lifted to the already-emitted
  merged mark, so reconnection never drags punctuation backward — its
  older in-flight events become engine-side late drops, which is the
  accounted, bounded price of the fence.

Time is injected (``now`` parameters), never read: the tracker itself
stays deterministic and unit-testable; only the gateway's timer task
touches the wall clock.
"""

from __future__ import annotations

import enum
from typing import Dict, List, NamedTuple, Optional

from repro.core.errors import ConfigurationError
from repro.streams.punctuation import SourceWatermarks


class SourceStatus(enum.Enum):
    """Where a source stands in the liveness state machine."""

    LIVE = "live"  #: connected and recently active
    DEGRADED = "degraded"  #: silent past the timeout; watermark fenced
    DISCONNECTED = "disconnected"  #: connection closed; fenced only at the timeout


class Transition(NamedTuple):
    """One liveness state change, for journals and metrics."""

    source: str
    status: SourceStatus
    at: float  #: gateway clock at the transition


class LivenessTracker:
    """Liveness timeouts + watermark fencing over a set of sources.

    Parameters
    ----------
    timeout:
        Seconds of silence after which a live source is degraded.
    slack:
        Residual per-source disorder (see
        :class:`~repro.streams.punctuation.SourceWatermarks`).
    """

    def __init__(self, timeout: float, slack: int = 0):
        if timeout <= 0:
            raise ConfigurationError(f"liveness timeout must be > 0, got {timeout!r}")
        self.timeout = float(timeout)
        self.watermarks = SourceWatermarks(slack)
        self._last_seen: Dict[str, float] = {}
        self._status: Dict[str, SourceStatus] = {}
        self.transitions: List[Transition] = []
        self.degraded_total = 0
        self.recovered_total = 0

    # -- state machine ------------------------------------------------------------------

    def connect(self, source: str, now: float) -> Optional[Transition]:
        """A source (re)connected; returns the recovery transition if any."""
        previous = self._status.get(source)
        self._last_seen[source] = now
        self._status[source] = SourceStatus.LIVE
        self.watermarks.unfence(source, floor=self.watermarks.emitted)
        if previous in (SourceStatus.DEGRADED, SourceStatus.DISCONNECTED):
            return self._record(source, SourceStatus.LIVE, now)
        return None

    def observe(self, source: str, ts: int, now: float) -> Optional[Transition]:
        """A frame with occurrence time *ts* arrived from *source*."""
        previous = self._status.get(source)
        self._last_seen[source] = now
        recovery = None
        if previous is not SourceStatus.LIVE:
            self._status[source] = SourceStatus.LIVE
            self.watermarks.unfence(source, floor=self.watermarks.emitted)
            if previous is not None:  # first sighting is not a recovery
                recovery = self._record(source, SourceStatus.LIVE, now)
        self.watermarks.observe(source, ts)
        return recovery

    def assert_watermark(self, source: str, ts: int, now: float) -> None:
        """The source explicitly asserted its own watermark."""
        self._last_seen[source] = now
        self.watermarks.assert_watermark(source, ts)

    def disconnect(self, source: str, now: float) -> Optional[Transition]:
        """The source's connection closed.

        Deliberately does NOT fence: retrying clients tear and remake
        connections all the time, and fencing on every tear would floor
        the source at the emitted mark on reconnect, turning its
        in-flight frames into late drops for a 20 ms blip.  The liveness
        *timeout* is the only fencing authority — a source that stays
        disconnected is degraded (and fenced) by :meth:`tick` once it
        has been silent too long, exactly like a wedged live one.
        """
        if self._status.get(source) is None:
            return None
        if self._status[source] is SourceStatus.DISCONNECTED:
            return None
        self._status[source] = SourceStatus.DISCONNECTED
        return self._record(source, SourceStatus.DISCONNECTED, now)

    def tick(self, now: float) -> List[Transition]:
        """Fence sources silent for longer than the timeout.

        Applies to live *and* disconnected sources: silence is measured
        from last activity, not from connection state, so a torn-and-
        retrying client gets the full timeout to come back before its
        watermark stops holding the merge.
        """
        degraded: List[Transition] = []
        for source in sorted(self._status):
            if self._status[source] is SourceStatus.DEGRADED:
                continue
            if now - self._last_seen[source] <= self.timeout:
                continue
            self._status[source] = SourceStatus.DEGRADED
            self.watermarks.fence(source)
            degraded.append(self._record(source, SourceStatus.DEGRADED, now))
        return degraded

    def _record(self, source: str, status: SourceStatus, at: float) -> Transition:
        transition = Transition(source, status, at)
        self.transitions.append(transition)
        if status is SourceStatus.LIVE:
            self.recovered_total += 1
        elif status is SourceStatus.DEGRADED:
            self.degraded_total += 1
        return transition

    # -- queries ------------------------------------------------------------------------

    def status_of(self, source: str) -> Optional[SourceStatus]:
        return self._status.get(source)

    def live_count(self) -> int:
        return sum(
            1 for status in self._status.values() if status is SourceStatus.LIVE
        )

    def sources(self) -> List[str]:
        return sorted(self._status)

    def merged_watermark(self) -> int:
        return self.watermarks.merged()

    def source_marks(self) -> Dict[str, int]:
        """Per-source watermark marks, sorted by source (telemetry)."""
        return {
            source: self.watermarks.mark(source) for source in self.sources()
        }

    def fenced_map(self) -> Dict[str, bool]:
        """Which known sources are fenced out of the merge (telemetry)."""
        return {
            source: self.watermarks.is_fenced(source) for source in self.sources()
        }

    def __repr__(self) -> str:
        return (
            f"LivenessTracker(timeout={self.timeout}, "
            f"live={self.live_count()}/{len(self._status)}, "
            f"merged={self.watermarks.merged()})"
        )
