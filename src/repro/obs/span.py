"""Cross-layer latency spans: per-frame stage attribution for ingest.

A *span* is born on the client — :meth:`repro.ingest.client.IngestClient`
stamps each event frame with the monotonic time of its last transmission
— and dies when the gateway acks the frame (or, for the emit path, when
a match containing the frame's event is delivered).  In between, the
gateway records the boundary times of every stage the frame crosses, and
:class:`SpanTracker` turns those boundaries into stage-latency
histograms (``repro_stage_seconds{stage=...}``).

The accounting identity the E22 benchmark checks is **by construction**:
the ack-path stages partition the interval ``[t_receipt, t_ack]`` with
telescoping boundaries, so for every frame

    queue + admit + feed + hold + sync + ack == e2e  (exactly)

where ``e2e = t_ack - t_receipt`` is the measured end-to-end ack latency
of the frame's batch.  ``transit`` (client send → gateway receipt) is
observed separately and is *not* part of the identity — it compares two
processes' monotonic clocks, which is only meaningful on one host.

Nothing in this module reads a clock: every time value is injected by
the transport layer, so the tracker is a pure function of its inputs —
deterministic under scripted clocks, like the rest of ``repro.obs``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs.metrics import SECONDS_BUCKETS, MetricsRegistry

#: Client last-transmit -> gateway receipt (cross-process; same host only).
STAGE_TRANSIT = "transit"
#: Batch receipt -> this frame's admission start (waiting behind batchmates).
STAGE_QUEUE = "queue"
#: The admission ladder: backpressure check, schema, dedupe window.
STAGE_ADMIT = "admit"
#: Runner feed: WAL append + engine feed + watermark advance.
STAGE_FEED = "feed"
#: Frame fed -> batch group-commit start (waiting for batchmates to feed).
STAGE_HOLD = "hold"
#: The WAL flush barrier (group commit).
STAGE_SYNC = "sync"
#: Sync done -> ack bytes handed to the transport.
STAGE_ACK = "ack"

#: Ack-path stages, in causal order; their sums telescope to e2e.
ACK_STAGES: Tuple[str, ...] = (
    STAGE_QUEUE, STAGE_ADMIT, STAGE_FEED, STAGE_HOLD, STAGE_SYNC, STAGE_ACK,
)
STAGES: Tuple[str, ...] = (STAGE_TRANSIT,) + ACK_STAGES

#: Wire field carrying the client-minted span context on event frames.
SPAN_FIELD = "span"


def mint_span(t_sent: float) -> Dict[str, float]:
    """The client half: a span context stamped at (re)transmission."""
    return {"t0": round(t_sent, 9)}


def span_origin(frame_span: Any) -> Optional[float]:
    """Extract the transmit timestamp from a wire span context, if sane."""
    if isinstance(frame_span, dict):
        t0 = frame_span.get("t0")
        if isinstance(t0, (int, float)):
            return float(t0)
    return None


class _Frame:
    """One frame's boundary times inside an open cohort."""

    __slots__ = ("source", "status", "t_start", "t_admit", "t_feed", "t_sent", "eid")

    def __init__(
        self,
        source: str,
        status: str,
        t_start: float,
        t_admit: float,
        t_feed: float,
        t_sent: Optional[float],
        eid: Optional[int],
    ):
        self.source = source
        self.status = status
        self.t_start = t_start
        self.t_admit = t_admit
        self.t_feed = t_feed
        self.t_sent = t_sent
        self.eid = eid


class SpanTracker:
    """Stage-latency attribution over one gateway's frame cohorts.

    A *cohort* is one socket batch: every frame read off a connection in
    one chunk, admitted and fed together, made durable by one group
    commit, and acked together.  The transport opens a cohort at batch
    receipt, the gateway notes each frame's boundaries as it runs the
    admission ladder, and the transport seals the cohort once the acks
    are written; sealing observes every stage histogram and appends a
    compact per-cohort attribution record (bounded ring) that the E22
    benchmark audits for the sum-to-e2e identity.

    The emit path is tracked separately: admitted events park their
    ``(t_sent, t_feed)`` in a bounded map until a delivered match names
    them, yielding ``repro_emit_hold_seconds`` (feed → emission, i.e.
    reorder-buffer/watermark residence in wall time) and
    ``repro_emit_e2e_seconds`` (client send → emission).
    """

    __slots__ = (
        "registry", "cohort_limit", "inflight_limit",
        "_stage", "_e2e", "_emit_hold", "_emit_e2e",
        "_open", "_t_receipt", "_inflight", "cohorts", "sealed_cohorts",
    )

    def __init__(
        self,
        registry: MetricsRegistry,
        cohort_limit: int = 256,
        inflight_limit: int = 4096,
    ):
        self.registry = registry
        self.cohort_limit = cohort_limit
        self.inflight_limit = inflight_limit
        self._stage = {
            stage: registry.histogram(
                "repro_stage_seconds",
                "per-frame latency attributed to one ingest stage",
                SECONDS_BUCKETS,
                labels={"stage": stage},
            )
            for stage in STAGES
        }
        self._e2e = registry.histogram(
            "repro_ack_e2e_seconds",
            "batch receipt to ack write, per frame",
            SECONDS_BUCKETS,
        )
        self._emit_hold = registry.histogram(
            "repro_emit_hold_seconds",
            "engine feed to match delivery, per matched event",
            SECONDS_BUCKETS,
        )
        self._emit_e2e = registry.histogram(
            "repro_emit_e2e_seconds",
            "client send to match delivery, per matched event",
            SECONDS_BUCKETS,
        )
        self._open: Optional[List[_Frame]] = None
        self._t_receipt = 0.0
        #: eid -> (t_sent, t_feed); insertion-ordered, bounded FIFO.
        self._inflight: Dict[int, Tuple[Optional[float], float]] = {}
        #: Bounded ring of per-cohort attribution records.
        self.cohorts: Deque[Dict[str, Any]] = deque(maxlen=cohort_limit)
        self.sealed_cohorts = 0

    # -- cohort lifecycle (driven by the transport) ------------------------------

    def open_cohort(self, t_receipt: float) -> None:
        """A batch of frames arrived at *t_receipt*; start attributing."""
        self._open = []
        self._t_receipt = t_receipt

    def note_frame(
        self,
        source: str,
        status: str,
        t_start: float,
        t_admit: float,
        t_feed: float,
        t_sent: Optional[float] = None,
        eid: Optional[int] = None,
    ) -> None:
        """One frame crossed the admission ladder inside the open cohort.

        ``t_start``/``t_admit``/``t_feed`` bound the admit and feed
        stages; non-admitted frames pass ``t_feed == t_admit`` (their
        feed stage is zero).  Without an open cohort (tests driving
        ``admit_frame`` directly) the frame is attributed as its own
        single-frame cohort opened at ``t_start``.
        """
        if self._open is None:
            self.open_cohort(t_start)
        self._open.append(
            _Frame(source, status, t_start, t_admit, t_feed, t_sent, eid)
        )
        if eid is not None:
            if len(self._inflight) >= self.inflight_limit:
                self._inflight.pop(next(iter(self._inflight)))
            self._inflight[eid] = (t_sent, t_feed)

    def seal_cohort(
        self, t_sync_start: float, t_sync_end: float, t_ack: float
    ) -> Optional[Dict[str, Any]]:
        """The cohort's group commit and ack write finished; attribute it."""
        frames, self._open = self._open, None
        if not frames:
            return None
        t_receipt = self._t_receipt
        stage_sums = {stage: 0.0 for stage in ACK_STAGES}
        transit_sum = 0.0
        e2e_sum = 0.0
        for frame in frames:
            parts = (
                (STAGE_QUEUE, frame.t_start - t_receipt),
                (STAGE_ADMIT, frame.t_admit - frame.t_start),
                (STAGE_FEED, frame.t_feed - frame.t_admit),
                (STAGE_HOLD, t_sync_start - frame.t_feed),
                (STAGE_SYNC, t_sync_end - t_sync_start),
                (STAGE_ACK, t_ack - t_sync_end),
            )
            for stage, seconds in parts:
                self._stage[stage].observe(seconds)
                stage_sums[stage] += seconds
            e2e = t_ack - t_receipt
            self._e2e.observe(e2e)
            e2e_sum += e2e
            if frame.t_sent is not None:
                transit = max(0.0, t_receipt - frame.t_sent)
                self._stage[STAGE_TRANSIT].observe(transit)
                transit_sum += transit
        record = {
            "frames": len(frames),
            "t_receipt": t_receipt,
            "e2e_sum": e2e_sum,
            "stage_sums": stage_sums,
            "transit_sum": transit_sum,
            "statuses": sorted({frame.status for frame in frames}),
        }
        self.cohorts.append(record)
        self.sealed_cohorts += 1
        return record

    def drop_cohort(self) -> None:
        """Abandon the open cohort (the batch crashed before acking)."""
        self._open = None

    # -- emit path ---------------------------------------------------------------

    def note_emitted(self, eids: List[int], t_emit: float) -> None:
        """A delivered match named these events; close their emit spans."""
        for eid in eids:
            entry = self._inflight.pop(eid, None)
            if entry is None:
                continue
            t_sent, t_feed = entry
            self._emit_hold.observe(max(0.0, t_emit - t_feed))
            if t_sent is not None:
                self._emit_e2e.observe(max(0.0, t_emit - t_sent))

    def inflight_count(self) -> int:
        return len(self._inflight)


class SourceLagPanel:
    """Per-source watermark / lag / fencing gauges, registered lazily.

    ``lag`` is the distance a source's own watermark trails the
    fastest source's — the quantity that tells an operator *which*
    source is holding the min-merge back (a fenced source reports its
    last mark but no longer holds the merge).
    """

    __slots__ = ("registry", "_watermark", "_lag", "_fenced", "_merged")

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self._watermark: Dict[str, Any] = {}
        self._lag: Dict[str, Any] = {}
        self._fenced: Dict[str, Any] = {}
        self._merged = registry.gauge(
            "repro_gateway_merged_watermark", "min-merged source watermark"
        )

    def update(self, marks: Dict[str, int], fenced: Dict[str, bool], merged: int) -> None:
        """Refresh every per-source gauge from a watermark snapshot."""
        self._merged.set(merged)
        top = max(marks.values(), default=0)
        for source in sorted(marks):
            mark = marks[source]
            gauge = self._watermark.get(source)
            if gauge is None:
                labels = {"source": source}
                gauge = self._watermark[source] = self.registry.gauge(
                    "repro_source_watermark",
                    "per-source watermark (occurrence time)",
                    labels,
                )
                self._lag[source] = self.registry.gauge(
                    "repro_source_lag",
                    "timestamp units this source trails the fastest source",
                    labels,
                )
                self._fenced[source] = self.registry.gauge(
                    "repro_source_fenced",
                    "1 when the source is fenced out of the merge",
                    labels,
                )
            gauge.set(mark)
            self._lag[source].set(max(0, top - mark))
            self._fenced[source].set(1 if fenced.get(source) else 0)
