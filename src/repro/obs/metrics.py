"""Metrics primitives: counters, gauges, and fixed-bucket histograms.

Zero-dependency and deliberately boring: the registry is a plain
insertion-ordered dict of metric objects, every metric is a couple of
ints, and nothing here touches the wall clock — values are *logical*
(timestamp units, event counts, algorithmic work ticks), so instrumented
runs stay exactly as deterministic and replayable as plain ones.

Three properties the rest of the observability layer leans on:

* **handles stay valid across restore** — engines register metrics once
  and keep direct references; :meth:`MetricsRegistry.restore_state`
  mutates existing objects in place instead of rebinding names, so a
  crash-recovered engine keeps incrementing the same counters it
  registered before the snapshot was taken;
* **state is JSON-able** — :meth:`MetricsRegistry.snapshot_state`
  round-trips through ``json.dumps``/``loads`` unchanged, which is what
  the JSON-lines exporter and the checkpoint integration rely on;
* **merging is deterministic** — :meth:`MetricsRegistry.merge_state`
  folds a worker's snapshot in by insertion order (counters and
  histogram buckets add, gauges max-merge like the peak-state counter),
  so the parallel engine's per-worker merge is a pure function of the
  routing order.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.metrics.latency import percentile_index

#: Default histogram bucket upper bounds (``le`` semantics, ascending).
DEFAULT_BUCKETS: Tuple[int, ...] = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500)

#: Per-event algorithmic work (partials + predicate evals + triggers).
TICK_BUCKETS: Tuple[int, ...] = (0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)

#: Emission latency / buffer residence in timestamp units.
LATENCY_BUCKETS: Tuple[int, ...] = (0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)

#: Retained-state size in stored elements.
STATE_BUCKETS: Tuple[int, ...] = (
    0, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000,
)

#: Wall-clock stage latency in seconds.  The only float-bounded layout:
#: the ingest path measures real time (span stages, WAL sync, ack
#: round-trips), unlike the engine metrics, which stay in logical units.
SECONDS_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Normalized label pairs: sorted ``(key, value)`` tuples.
LabelPairs = Tuple[Tuple[str, str], ...]


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def normalize_labels(labels: Optional[Mapping[str, str]]) -> LabelPairs:
    """Sorted, stringified label pairs — the registry's canonical form."""
    if not labels:
        return ()
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


def format_sample_name(name: str, labels: LabelPairs) -> str:
    """Canonical sample key: ``name`` or ``name{k="v",...}`` (escaped)."""
    if not labels:
        return name
    body = ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in labels
    )
    return name + "{" + body + "}"


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "help", "value", "labels", "key")

    def __init__(self, name: str, help: str = "", labels: LabelPairs = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self.key = format_sample_name(name, labels)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.key}={self.value})"


class Gauge:
    """A point-in-time sample (state size, buffer depth, bounds)."""

    kind = "gauge"
    __slots__ = ("name", "help", "value", "labels", "key")

    def __init__(self, name: str, help: str = "", labels: LabelPairs = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self.key = format_sample_name(name, labels)
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.key}={self.value})"


class Histogram:
    """Fixed-bucket histogram with cumulative ``le`` semantics.

    An observation lands in the first bucket whose upper bound is
    ``>= value``; anything above the last bound goes to the implicit
    ``+Inf`` overflow bucket.  Bounds are fixed at registration, so two
    histograms with the same name always merge cleanly — the property
    the per-worker merge and the checkpoint round-trip depend on.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "bounds", "counts", "total", "count", "labels", "key")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labels: LabelPairs = (),
    ):
        bounds = tuple(buckets)
        if not bounds or any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram buckets must be non-empty and strictly ascending, got {bounds!r}"
            )
        self.name = name
        self.help = help
        self.labels = labels
        self.key = format_sample_name(name, labels)
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)  # last = +Inf
        self.total = 0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile observation.

        Uses the same ceil-rank convention as
        :func:`repro.metrics.latency.percentile_index`; observations in
        the overflow bucket report ``inf`` (the histogram only knows
        they exceeded the last bound).
        """
        if self.count == 0:
            return 0.0
        rank = percentile_index(self.count, q) + 1
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index < len(self.bounds):
                    return float(self.bounds[index])
                return float("inf")
        return float("inf")

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ConfigurationError(
                f"cannot merge histogram {self.key!r}: bucket bounds differ "
                f"({self.bounds!r} vs {other.bounds!r})"
            )
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.total += other.total
        self.count += other.count

    def summary(self) -> Dict[str, float]:
        """Compact distribution summary for report tables."""
        return {
            "count": self.count,
            "mean": self.mean(),
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.key}, count={self.count}, mean={self.mean():.2f})"


class MetricsRegistry:
    """Insertion-ordered collection of metrics, keyed by sample name.

    Registration is idempotent: asking for an existing name (and label
    set — a labeled metric is one time series per distinct label
    combination, ``repro_stage_seconds{stage="sync"}``) returns the
    existing object, but re-registering under a different kind or
    bucket layout raises — a name collision would silently corrupt
    whichever party registered first.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    # -- registration -----------------------------------------------------------

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        pairs = normalize_labels(labels)
        key = format_sample_name(name, pairs)
        return self._register(key, Counter, lambda: Counter(name, help, pairs))

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        pairs = normalize_labels(labels)
        key = format_sample_name(name, pairs)
        return self._register(key, Gauge, lambda: Gauge(name, help, pairs))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        pairs = normalize_labels(labels)
        key = format_sample_name(name, pairs)
        metric = self._register(
            key, Histogram, lambda: Histogram(name, help, buckets, pairs)
        )
        if metric.bounds != tuple(buckets):
            raise ConfigurationError(
                f"histogram {key!r} already registered with buckets "
                f"{metric.bounds!r}, not {tuple(buckets)!r}"
            )
        return metric

    def _register(self, key: str, kind: type, build: Callable[[], Any]) -> Any:
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = build()
        elif type(metric) is not kind:
            raise ConfigurationError(
                f"metric {key!r} already registered as {metric.kind}, "
                f"not {kind.kind}"
            )
        return metric

    # -- access -----------------------------------------------------------------

    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return list(self._metrics)

    def metrics(self) -> List[Any]:
        return list(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # -- state ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Full registry contents as a JSON-able dict.

        Keys are canonical sample names (labels rendered in); labeled
        metrics carry their base ``name`` and ``labels`` in the payload
        so restore/merge can re-register them structurally.
        """
        counters: Dict[str, Any] = {}
        gauges: Dict[str, Any] = {}
        histograms: Dict[str, Any] = {}
        for key, metric in self._metrics.items():
            if metric.kind == "counter":
                payload: Dict[str, Any] = {"help": metric.help, "value": metric.value}
                if metric.labels:
                    payload["name"] = metric.name
                    payload["labels"] = dict(metric.labels)
                counters[key] = payload
            elif metric.kind == "gauge":
                payload = {"help": metric.help, "value": metric.value}
                if metric.labels:
                    payload["name"] = metric.name
                    payload["labels"] = dict(metric.labels)
                gauges[key] = payload
            else:
                payload = {
                    "help": metric.help,
                    "bounds": list(metric.bounds),
                    "counts": list(metric.counts),
                    "total": metric.total,
                    "count": metric.count,
                }
                if metric.labels:
                    payload["name"] = metric.name
                    payload["labels"] = dict(metric.labels)
                histograms[key] = payload
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def restore_state(self, state: dict) -> None:
        """Overwrite registry contents from :meth:`snapshot_state` output.

        Existing metric objects are mutated in place (live handles stay
        valid); metrics present in the snapshot but not yet registered
        are created; registered metrics absent from the snapshot reset
        to zero — the same full-overwrite convention as
        :meth:`repro.core.stats.EngineStats.restore_from`.
        """
        snapshot_names = set()
        for key, payload in state.get("counters", {}).items():
            snapshot_names.add(key)
            self.counter(
                payload.get("name", key), payload.get("help", ""),
                payload.get("labels"),
            ).value = payload["value"]
        for key, payload in state.get("gauges", {}).items():
            snapshot_names.add(key)
            self.gauge(
                payload.get("name", key), payload.get("help", ""),
                payload.get("labels"),
            ).value = payload["value"]
        for key, payload in state.get("histograms", {}).items():
            snapshot_names.add(key)
            metric = self.histogram(
                payload.get("name", key), payload.get("help", ""),
                tuple(payload["bounds"]), payload.get("labels"),
            )
            metric.counts = list(payload["counts"])
            metric.total = payload["total"]
            metric.count = payload["count"]
        for name, metric in self._metrics.items():
            if name in snapshot_names:
                continue
            if metric.kind == "histogram":
                metric.counts = [0] * (len(metric.bounds) + 1)
                metric.total = 0
                metric.count = 0
            else:
                metric.value = 0

    def merge_state(
        self, state: dict, rename: Optional[Callable[[str], str]] = None
    ) -> None:
        """Fold a :meth:`snapshot_state` payload into this registry.

        Counters and histograms accumulate; gauges max-merge (a merged
        gauge reports the largest per-source sample, mirroring how
        ``EngineStats.merge`` treats ``peak_state_size``).  *rename*
        maps incoming names (the parallel engine prefixes worker
        metrics so they never collide with the router's own).
        """
        transform = rename if rename is not None else (lambda name: name)
        for key, payload in state.get("counters", {}).items():
            self.counter(
                transform(payload.get("name", key)), payload.get("help", ""),
                payload.get("labels"),
            ).inc(payload["value"])
        for key, payload in state.get("gauges", {}).items():
            gauge = self.gauge(
                transform(payload.get("name", key)), payload.get("help", ""),
                payload.get("labels"),
            )
            if payload["value"] > gauge.value:
                gauge.value = payload["value"]
        for key, payload in state.get("histograms", {}).items():
            metric = self.histogram(
                transform(payload.get("name", key)), payload.get("help", ""),
                tuple(payload["bounds"]), payload.get("labels"),
            )
            incoming = Histogram(key, buckets=tuple(payload["bounds"]))
            incoming.counts = list(payload["counts"])
            incoming.total = payload["total"]
            incoming.count = payload["count"]
            metric.merge(incoming)
