"""Event-lifecycle tracing: structured spans per stream element.

A :class:`Tracer` records what happened to each element as the engine
processed it — admitted to which steps, rejected by which predicate,
parked in the reorder buffer, evicted by a purge or a shed, emitted in
a match — as flat :class:`Span` records in a bounded ring buffer.  The
``repro explain`` subcommand replays a trace with one of these attached
and reconstructs per-event lifecycles from the spans.

Determinism: span ids derive from the engine's arrival index (the
logical clock every engine already maintains) plus a per-arrival
sequence number — no wall clock, no process-global counters — so two
replays of the same trace produce byte-identical span streams.  The
ring buffer (``collections.deque(maxlen=...)``) bounds retention; the
tracer counts total recorded spans so overflow is detectable.

The default tracer on every engine is :class:`NullTracer` via the
engine's unset ``_obs`` attribute: the disabled hot path pays exactly
one attribute check per element (see ``Engine.feed``).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

# -- lifecycle stages ----------------------------------------------------------------
#
# One vocabulary across every engine family.  An element's lifecycle is
# the ordered sequence of its spans; a well-formed lifecycle starts with
# an admission outcome (ADMITTED / IGNORED / LATE_DROPPED / QUARANTINED /
# BUFFERED) and may continue through storage, release, match
# participation, and eviction stages.

ADMITTED = "admitted"  #: passed predicates, inserted into >=1 stack/side store
IGNORED = "ignored"  #: irrelevant type, or every admissible step's predicate rejected
QUARANTINED = "quarantined"  #: malformed, skipped under ValidationPolicy.QUARANTINE
LATE_DROPPED = "late_dropped"  #: violated the K promise under LatePolicy.DROP
PROCESSED = "processed"  #: element handled by a family without admission accounting
BUFFERED = "buffered"  #: parked in a reorder buffer awaiting its seal
RELEASED = "released"  #: left the reorder buffer toward the inner engine
PREDICATE_REJECTED = "predicate_rejected"  #: a step's local predicate said no
MATCH_EMITTED = "match_emitted"  #: contributed to an emitted match
MATCH_PENDING = "match_pending"  #: contributed to a match parked for negation sealing
MATCH_CANCELLED = "match_cancelled"  #: contributed to a match cancelled at seal time
MATCH_REVOKED = "match_revoked"  #: an optimistic emission retracted by a late negative
MATCH_SPECULATED = "match_speculated"  #: emitted into the speculative stream ahead of its seal
MATCH_RETRACTED = "match_retracted"  #: a speculative emission withdrawn by a retraction record
PURGED = "purged"  #: evicted as provably useless at the safe horizon
SHED = "shed"  #: evicted by load shedding (lossy, counted casualty)
PUNCTUATION = "punctuation"  #: a punctuation advanced the clock
REFROZEN = "refrozen"  #: an adaptive-K controller re-froze the bound at this boundary
SOURCE_DEGRADED = "source_degraded"  #: an ingestion source fell silent past its liveness timeout
SOURCE_RECOVERED = "source_recovered"  #: a degraded/disconnected source resumed sending

STAGES = (
    ADMITTED, IGNORED, QUARANTINED, LATE_DROPPED, PROCESSED, BUFFERED,
    RELEASED, PREDICATE_REJECTED, MATCH_EMITTED, MATCH_PENDING,
    MATCH_CANCELLED, MATCH_REVOKED, MATCH_SPECULATED, MATCH_RETRACTED,
    PURGED, SHED, PUNCTUATION, REFROZEN, SOURCE_DEGRADED, SOURCE_RECOVERED,
)


class Span:
    """One lifecycle observation: (span id, arrival, stage, subject event)."""

    __slots__ = (
        "span_id", "arrival", "stage", "eid", "ts", "etype", "detail", "stream",
    )

    def __init__(
        self,
        span_id: str,
        arrival: int,
        stage: str,
        eid: Optional[int] = None,
        ts: Optional[int] = None,
        etype: Optional[str] = None,
        detail: str = "",
        stream: str = "",
    ):
        self.span_id = span_id
        self.arrival = arrival
        self.stage = stage
        self.eid = eid
        self.ts = ts
        self.etype = etype
        self.detail = detail
        self.stream = stream

    def as_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "arrival": self.arrival,
            "stage": self.stage,
            "eid": self.eid,
            "ts": self.ts,
            "etype": self.etype,
            "detail": self.detail,
            "stream": self.stream,
        }

    def __repr__(self) -> str:
        subject = f" eid={self.eid}" if self.eid is not None else ""
        detail = f" {self.detail}" if self.detail else ""
        return f"Span[{self.span_id}] {self.stage}{subject}{detail}"


class NullTracer:
    """Disabled tracer: records nothing, costs nothing.

    Engines never call it on the hot path — the single ``_obs is None``
    check in ``Engine.feed`` short-circuits first — but the bundle API
    (and user code holding a tracer reference) stays uniform.
    """

    enabled = False
    __slots__ = ()

    def record(self, arrival: int, stage: str, **_: object) -> None:
        pass

    def spans(self) -> List[Span]:
        return []

    def spans_for(self, eid: int) -> List[Span]:
        return []

    def __len__(self) -> int:
        return 0


class Tracer:
    """Bounded ring buffer of lifecycle spans.

    Parameters
    ----------
    capacity:
        Maximum retained spans; older spans fall off the front.  The
        default suits interactive ``explain`` sessions on bounded
        traces — size it to ~8 spans per trace element for full
        retention.
    """

    enabled = True
    __slots__ = ("capacity", "_spans", "_subs", "recorded")

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError(f"tracer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._spans: Deque[Span] = deque(maxlen=capacity)
        # Per-stream sub-counter state ``stream -> [arrival, sub]``.
        # Layered engines share one tracer under distinct stream tags (a
        # reorder buffer's inner engine uses stream="inner"), and their
        # records *interleave within one outer arrival* — a release span
        # on outer arrival 5 may be followed by inner spans and then
        # another outer span for arrival 5.  Keeping one counter per
        # stream (bounded by the number of engine layers) makes span ids
        # collision-free under any interleaving.
        self._subs: Dict[str, List[int]] = {}
        #: Lifetime spans recorded (> len(self) means the ring dropped some).
        self.recorded = 0

    def record(
        self,
        arrival: int,
        stage: str,
        eid: Optional[int] = None,
        ts: Optional[int] = None,
        etype: Optional[str] = None,
        detail: str = "",
        stream: str = "",
    ) -> Span:
        state = self._subs.get(stream)
        if state is None or state[0] != arrival:
            state = [arrival, 0]
            self._subs[stream] = state
        prefix = f"{stream}:{arrival}" if stream else f"{arrival}"
        span = Span(
            f"{prefix}.{state[1]}", arrival, stage, eid, ts, etype, detail, stream
        )
        state[1] += 1
        self._spans.append(span)
        self.recorded += 1
        return span

    def recorded_for(self, arrival: int, stream: str = "") -> bool:
        """True when the current arrival already produced at least one span."""
        state = self._subs.get(stream)
        return state is not None and state[0] == arrival and state[1] > 0

    # -- queries ----------------------------------------------------------------

    def spans(self) -> List[Span]:
        return list(self._spans)

    def spans_for(self, eid: int) -> List[Span]:
        """Every retained span about the event *eid*, in record order."""
        return [span for span in self._spans if span.eid == eid]

    def stage_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for span in self._spans:
            counts[span.stage] = counts.get(span.stage, 0) + 1
        return counts

    def overflowed(self) -> bool:
        """True when the ring has dropped spans (lifecycles may be partial)."""
        return self.recorded > len(self._spans)

    def clear(self) -> None:
        self._spans.clear()
        self._subs.clear()

    def __len__(self) -> int:
        return len(self._spans)

    def __repr__(self) -> str:
        return f"Tracer(spans={len(self._spans)}/{self.capacity}, recorded={self.recorded})"
