"""The engine-side observability bundle.

:class:`Observability` is what ``Engine.enable_observability()``
attaches.  It owns the tracer and the metric handles and implements the
instrumented mirror of ``Engine.feed``: when ``engine._obs`` is set,
``feed`` delegates here, and this module classifies what happened to
each element (from counter deltas — the engine's processing code runs
unmodified), records lifecycle spans, and updates the registry.

Cost contract, pinned by experiment E18:

* **disabled** (the default) — ``Engine.feed`` pays one attribute
  check; the fused ``feed_batch`` loops pay one check per *batch*;
* **metrics only** — a handful of counter/histogram updates per
  element, no allocation beyond the histogram's int bumps;
* **tracing** — span allocation per element plus the fine-grained
  hooks (purge/shed peeks, predicate re-evaluation for rejections).

Everything here is pure computation on engine state — no wall clock,
no I/O, no set iteration — so instrumented runs remain deterministic
and replay-equivalent (analyzer rules R002/R003 apply to this module
through ``tests/analysis``'s tree-wide gate).

Parity is load-bearing: an instrumented engine must produce exactly
the same results, emissions, and counters as a plain one.  The
classification reads stat deltas and re-evaluates predicates *without*
passing ``stats``; the test suite pins instrumented == plain across
every family.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.core.event import (
    Event,
    admission_error,
    is_event,
    malformed_reason,
)
from repro.obs import trace as stages
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    STATE_BUCKETS,
    TICK_BUCKETS,
    MetricsRegistry,
)
from repro.obs.trace import NullTracer, Tracer


def _worker_metric_name(name: str) -> str:
    """Parallel-worker metric names: ``repro_x`` -> ``repro_worker_x``."""
    if name.startswith("repro_"):
        return "repro_worker_" + name[len("repro_"):]
    return "worker_" + name


class Observability:
    """Tracer + metric handles bound to one engine.

    Built via ``engine.enable_observability(tracer=..., metrics=...)``;
    either side may be omitted (tracing without metrics, or metrics
    without tracing).
    """

    __slots__ = (
        "tracer",
        "registry",
        "tracing",
        "stream",
        "c_events",
        "c_punctuations",
        "c_matches",
        "c_late",
        "c_quarantined",
        "c_shed",
        "c_purged",
        "h_ticks",
        "h_latency",
        "h_state",
        "g_state",
        "g_pending",
        "g_buffer",
        "h_residence",
        "c_released",
        "g_spill_disk",
        "c_spilled",
        "c_index_hits",
        "c_index_misses",
        "h_index_candidates",
        "c_speculative",
        "c_retractions",
        "h_spec_latency",
        "g_refreeze_k",
    )

    def __init__(
        self,
        engine: Any,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
        stream: str = "",
    ):
        self.tracer = tracer if tracer is not None else NullTracer()
        self.registry = registry
        self.tracing = bool(self.tracer.enabled)
        # Span-id namespace: layered engines (reorder inner) share one
        # tracer under distinct stream tags.
        self.stream = stream
        self._register(engine)

    def _register(self, engine: Any) -> None:
        registry = self.registry
        if registry is None:
            self.c_events = self.c_punctuations = self.c_matches = None
            self.c_late = self.c_quarantined = self.c_shed = self.c_purged = None
            self.h_ticks = self.h_latency = self.h_state = None
            self.g_state = self.g_pending = self.g_buffer = None
            self.h_residence = self.c_released = None
            self.g_spill_disk = self.c_spilled = None
            self.c_index_hits = self.c_index_misses = None
            self.h_index_candidates = None
            self.c_speculative = self.c_retractions = None
            self.h_spec_latency = self.g_refreeze_k = None
            return
        self.c_events = registry.counter(
            "repro_events_total", "stream events fed to the engine"
        )
        self.c_punctuations = registry.counter(
            "repro_punctuations_total", "punctuations fed to the engine"
        )
        self.c_matches = registry.counter(
            "repro_matches_total", "matches emitted (including at close)"
        )
        self.c_late = registry.counter(
            "repro_late_dropped_total", "events dropped for violating the K promise"
        )
        self.c_quarantined = registry.counter(
            "repro_quarantined_total", "malformed elements quarantined at admission"
        )
        self.c_shed = registry.counter(
            "repro_shed_total", "stored events evicted by load shedding"
        )
        self.c_purged = registry.counter(
            "repro_purged_total", "stored elements purged at the safe horizon"
        )
        self.h_ticks = registry.histogram(
            "repro_processing_ticks",
            "per-event algorithmic work (partials + predicate evals + triggers)",
            TICK_BUCKETS,
        )
        self.h_latency = registry.histogram(
            "repro_emission_latency_ts",
            "stream-clock minus match end timestamp at emission",
            LATENCY_BUCKETS,
        )
        self.h_state = registry.histogram(
            "repro_state_size",
            "retained state size sampled after each element",
            STATE_BUCKETS,
        )
        self.g_state = registry.gauge(
            "repro_state_size_now", "retained state size after the last element"
        )
        self.g_pending = registry.gauge(
            "repro_matches_pending", "matches parked awaiting negation sealing"
        )
        # Reorder-tier metrics, registered only for buffering engines.
        from repro.core.reorder import ReorderingEngine

        if isinstance(engine, ReorderingEngine):
            self.g_buffer = registry.gauge(
                "repro_reorder_buffer", "events held back by the reorder buffer"
            )
            self.h_residence = registry.histogram(
                "repro_reorder_residence_ts",
                "stream-clock minus event timestamp at buffer release",
                LATENCY_BUCKETS,
            )
            self.c_released = registry.counter(
                "repro_reorder_released_total", "events released to the inner engine"
            )
            if engine._spill is not None:
                self.g_spill_disk = registry.gauge(
                    "repro_spill_disk_events", "reorder events spilled to disk segments"
                )
                self.c_spilled = registry.counter(
                    "repro_spilled_total", "lifetime events written to spill segments"
                )
            else:
                self.g_spill_disk = self.c_spilled = None
        else:
            self.g_buffer = self.h_residence = self.c_released = None
            self.g_spill_disk = self.c_spilled = None
        # Equality-index metrics, registered only when the engine's
        # construction plan actually probes an index.
        constructor = getattr(engine, "constructor", None)
        if (
            constructor is not None
            and constructor.index
            and constructor.indexed_attrs is not None
        ):
            self.c_index_hits = registry.counter(
                "repro_index_hits_total",
                "equality-index lookups that yielded candidates",
            )
            self.c_index_misses = registry.counter(
                "repro_index_misses_total",
                "equality-index lookups that proved a dead end",
            )
            self.h_index_candidates = registry.histogram(
                "repro_index_candidates",
                "candidate-set size served per equality-index lookup",
                TICK_BUCKETS,
            )
            constructor._observe_candidates = self.h_index_candidates.observe
        else:
            self.c_index_hits = self.c_index_misses = None
            self.h_index_candidates = None
        # Speculation/controller metrics, registered only for engines
        # running the optimistic or adaptive modes.
        if getattr(engine, "speculation", None) is not None:
            self.c_speculative = registry.counter(
                "repro_speculative_total",
                "matches emitted into the speculative stream",
            )
            self.c_retractions = registry.counter(
                "repro_retractions_total",
                "speculative emissions withdrawn by retraction records",
            )
            self.h_spec_latency = registry.histogram(
                "repro_speculative_latency_ts",
                "stream-clock minus match end timestamp at speculative emission",
                LATENCY_BUCKETS,
            )
        else:
            self.c_speculative = self.c_retractions = None
            self.h_spec_latency = None
        if getattr(engine, "_controller", None) is not None:
            self.g_refreeze_k = registry.gauge(
                "repro_refrozen_k", "disorder bound chosen at the last re-freeze"
            )
        else:
            self.g_refreeze_k = None
        shed = getattr(engine, "shed", None)
        if shed is not None:
            pattern = getattr(engine, "pattern", None)
            shed.register_metrics(
                registry,
                retained_types=(
                    pattern.relevant_types if pattern is not None else None
                ),
            )

    # -- the instrumented feed path ---------------------------------------------

    def feed(self, engine: Any, element: Any) -> List[Any]:
        """Instrumented mirror of ``Engine.feed``.

        Must stay observably identical to the plain path: same
        admission screening, same counter updates, same state-size
        bookkeeping (the parity tests pin this element for element).
        """
        stats = engine.stats
        tracer = self.tracer
        tracing = self.tracing
        if malformed_reason(element) is not None:
            from repro.core.engine import ValidationPolicy

            if engine.validation is ValidationPolicy.QUARANTINE:
                stats.events_quarantined += 1
                if self.c_quarantined is not None:
                    self.c_quarantined.inc()
                if tracing:
                    tracer.record(
                        engine._arrival,
                        stages.QUARANTINED,
                        eid=getattr(element, "eid", None),
                        ts=getattr(element, "ts", None),
                        etype=getattr(element, "etype", None),
                        detail=malformed_reason(element) or "",
                        stream=self.stream,
                    )
                return []
            raise admission_error(element)
        if is_event(element):
            emitted = self._feed_event(engine, element, stats, tracer, tracing)
        else:
            emitted = self._feed_punctuation(engine, element, stats, tracer, tracing)
        size = engine.state_size()
        stats.note_state_size(size)
        if self.g_state is not None:
            self.g_state.set(size)
            self.h_state.observe(size)
            self.g_pending.set(stats.matches_pending)
            if self.g_buffer is not None:
                self.g_buffer.set(engine.buffer_size())
            if self.g_spill_disk is not None:
                spill = engine._spill
                self.g_spill_disk.set(spill.disk_size())
                self.c_spilled.inc(spill.spilled_events - self.c_spilled.value)
        return emitted

    def _feed_event(
        self, engine: Any, event: Event, stats: Any, tracer: Any, tracing: bool
    ) -> List[Any]:
        engine._arrival += 1
        stats.events_in += 1
        before_partials = stats.partial_combinations
        before_predicates = stats.predicate_evaluations
        before_triggers = stats.construction_triggers
        before_index_hits = stats.index_hits
        before_index_misses = stats.index_misses
        before_late = stats.late_dropped
        before_admitted = stats.events_admitted
        before_ignored = stats.events_ignored
        before_shed = stats.events_shed
        before_purged = stats.instances_purged + stats.negatives_purged
        emitted = engine._process_event(event)
        arrival = engine._arrival
        if tracing:
            if stats.late_dropped > before_late:
                tracer.record(
                    arrival, stages.LATE_DROPPED,
                    eid=event.eid, ts=event.ts, etype=event.etype,
                    detail=f"horizon={engine.clock.horizon()}",
                    stream=self.stream,
                )
            elif stats.events_admitted > before_admitted:
                tracer.record(
                    arrival, stages.ADMITTED,
                    eid=event.eid, ts=event.ts, etype=event.etype,
                    detail=self._admission_detail(engine, event),
                    stream=self.stream,
                )
            elif stats.events_ignored > before_ignored:
                self._record_ignored(engine, event, tracer, arrival)
            elif not tracer.recorded_for(arrival, self.stream):
                # Families without per-event admission accounting (the
                # deferring parallel pre-pass); buffering engines record
                # BUFFERED via note_buffered before this point.
                tracer.record(
                    arrival, stages.PROCESSED,
                    eid=event.eid, ts=event.ts, etype=event.etype,
                    stream=self.stream,
                )
            self._record_matches(engine, emitted, tracer, arrival, stages.MATCH_EMITTED)
        if self.c_events is not None:
            self.c_events.inc()
            self.h_ticks.observe(
                (stats.partial_combinations - before_partials)
                + (stats.predicate_evaluations - before_predicates)
                + (stats.construction_triggers - before_triggers)
            )
            if self.c_index_hits is not None:
                if stats.index_hits > before_index_hits:
                    self.c_index_hits.inc(stats.index_hits - before_index_hits)
                if stats.index_misses > before_index_misses:
                    self.c_index_misses.inc(
                        stats.index_misses - before_index_misses
                    )
            self._note_flow_deltas(
                engine, emitted, stats, before_late, before_shed, before_purged
            )
        return emitted

    def _feed_punctuation(
        self, engine: Any, punctuation: Any, stats: Any, tracer: Any, tracing: bool
    ) -> List[Any]:
        before_shed = stats.events_shed
        before_purged = stats.instances_purged + stats.negatives_purged
        stats.punctuations_in += 1
        emitted = engine._on_punctuation(punctuation)
        arrival = engine._arrival
        if tracing:
            tracer.record(
                arrival, stages.PUNCTUATION, ts=punctuation.ts,
                detail=f"horizon={engine.clock.horizon()}"
                if hasattr(engine, "clock") else "",
                stream=self.stream,
            )
            self._record_matches(engine, emitted, tracer, arrival, stages.MATCH_EMITTED)
        if self.c_punctuations is not None:
            self.c_punctuations.inc()
            self._note_flow_deltas(
                engine, emitted, stats, stats.late_dropped, before_shed, before_purged
            )
        return emitted

    def _note_flow_deltas(
        self,
        engine: Any,
        emitted: List[Any],
        stats: Any,
        before_late: int,
        before_shed: int,
        before_purged: int,
    ) -> None:
        if stats.late_dropped > before_late:
            self.c_late.inc(stats.late_dropped - before_late)
        if stats.events_shed > before_shed:
            self.c_shed.inc(stats.events_shed - before_shed)
        purged_now = stats.instances_purged + stats.negatives_purged
        if purged_now > before_purged:
            self.c_purged.inc(purged_now - before_purged)
        if emitted:
            self.c_matches.inc(len(emitted))
            clock = getattr(engine, "clock", None)
            if clock is not None:
                now = clock.now
                for match in emitted:
                    latency = now - match.end_ts
                    self.h_latency.observe(latency if latency > 0 else 0)

    # -- classification helpers --------------------------------------------------

    def _admission_detail(self, engine: Any, event: Event) -> str:
        scanner = getattr(engine, "scanner", None)
        if scanner is None:
            return ""
        parts = []
        entries = scanner.dispatch().get(event.etype) or ()
        for step_index, var, predicates in entries:
            ok = True
            for predicate in predicates:
                if not predicate.evaluate({var: event}):
                    ok = False
                    break
            if ok:
                parts.append(f"step {step_index}")
        negatives = getattr(engine, "negatives", None)
        if negatives is not None and negatives.relevant(event.etype):
            parts.append("negative store")
        kleene = getattr(engine, "kleene_store", None)
        if kleene is not None and kleene.relevant(event.etype):
            parts.append("kleene store")
        return ", ".join(parts)

    def _record_ignored(
        self, engine: Any, event: Event, tracer: Any, arrival: int
    ) -> None:
        """IGNORED span, with PREDICATE_REJECTED spans when predicates said no.

        Re-evaluates the scanner's per-type local predicates *without*
        the stats object, so classification never perturbs the counters
        the parity tests compare.
        """
        scanner = getattr(engine, "scanner", None)
        entries = scanner.dispatch().get(event.etype) if scanner is not None else None
        rejected = []
        if entries:
            for step_index, var, predicates in entries:
                for predicate in predicates:
                    if not predicate.evaluate({var: event}):
                        rejected.append((step_index, predicate))
                        break
        if rejected:
            for step_index, predicate in rejected:
                tracer.record(
                    arrival, stages.PREDICATE_REJECTED,
                    eid=event.eid, ts=event.ts, etype=event.etype,
                    detail=f"step {step_index}: {predicate!r}",
                    stream=self.stream,
                )
            if len(rejected) == len(entries):
                tracer.record(
                    arrival, stages.IGNORED,
                    eid=event.eid, ts=event.ts, etype=event.etype,
                    detail="every admissible step's predicate rejected",
                    stream=self.stream,
                )
        else:
            tracer.record(
                arrival, stages.IGNORED,
                eid=event.eid, ts=event.ts, etype=event.etype,
                detail="type not relevant to the pattern"
                if event.etype not in engine.pattern.relevant_types else "",
                stream=self.stream,
            )

    def _record_matches(
        self, engine: Any, matches: List[Any], tracer: Any, arrival: int, stage: str,
        extra: str = "",
    ) -> None:
        for match in matches:
            eids = ",".join(str(e.eid) for e in match.events)
            detail = f"match [{eids}] span {match.start_ts}..{match.end_ts}"
            if extra:
                detail = f"{detail} ({extra})"
            for contributing in match.events:
                tracer.record(
                    arrival, stage,
                    eid=contributing.eid, ts=contributing.ts,
                    etype=contributing.etype, detail=detail,
                    stream=self.stream,
                )

    # -- engine-side hooks (guarded by `self._obs is not None` at call sites) -----

    def note_buffered(self, engine: Any, event: Event) -> None:
        if self.tracing:
            self.tracer.record(
                engine._arrival, stages.BUFFERED,
                eid=event.eid, ts=event.ts, etype=event.etype,
                detail=f"buffer={engine.buffer_size()}",
                stream=self.stream,
            )

    def note_released(self, engine: Any, event: Event) -> None:
        if self.tracing:
            self.tracer.record(
                engine._arrival, stages.RELEASED,
                eid=event.eid, ts=event.ts, etype=event.etype,
                detail=f"clock={engine.clock.now}",
                stream=self.stream,
            )
        if self.c_released is not None:
            self.c_released.inc()
            residence = engine.clock.now - event.ts
            self.h_residence.observe(residence if residence > 0 else 0)

    def note_purge(self, engine: Any) -> None:
        """Record the events the imminent purge run will evict.

        Called *before* ``Purger.run`` when tracing is on; the peek
        shares the purger's threshold arithmetic, so spans match the
        actual evictions exactly.
        """
        if not self.tracing:
            return
        horizon = engine.clock.horizon()
        victims = engine.purger.peek(
            horizon, engine.stacks, engine.negatives, kleene=engine.kleene_store
        )
        arrival = engine._arrival
        for event in victims:
            self.tracer.record(
                arrival, stages.PURGED,
                eid=event.eid, ts=event.ts, etype=event.etype,
                detail=f"horizon={horizon}",
                stream=self.stream,
            )

    def note_shed(self, engine: Any, victims: List[Event]) -> None:
        if not self.tracing:
            return
        arrival = engine._arrival
        bound = engine.shed.max_state if engine.shed is not None else 0
        for event in victims:
            self.tracer.record(
                arrival, stages.SHED,
                eid=event.eid, ts=event.ts, etype=event.etype,
                detail=f"state bound {bound} exceeded",
                stream=self.stream,
            )

    def note_pending(self, engine: Any, match: Any, seal_at: int) -> None:
        if self.tracing:
            self._record_matches(
                engine, [match], self.tracer, engine._arrival,
                stages.MATCH_PENDING, extra=f"seals at horizon {seal_at}",
            )

    def note_cancelled(self, engine: Any, match: Any, cause: str) -> None:
        if self.tracing:
            self._record_matches(
                engine, [match], self.tracer, engine._arrival,
                stages.MATCH_CANCELLED, extra=cause,
            )

    def note_revoked(self, engine: Any, match: Any, negative: Event) -> None:
        if self.tracing:
            self._record_matches(
                engine, [match], self.tracer, engine._arrival,
                stages.MATCH_REVOKED,
                extra=f"late negative {negative.etype}@{negative.ts}#{negative.eid}",
            )

    def note_speculated(self, engine: Any, record: Any) -> None:
        """A match entered the speculative stream (ahead of or at its seal)."""
        if self.tracing:
            self._record_matches(
                engine, [record.match], self.tracer, engine._arrival,
                stages.MATCH_SPECULATED,
                extra=f"seq {record.seq} epoch {record.epoch}",
            )
        if self.c_speculative is not None:
            self.c_speculative.inc()
            latency = record.emitted_clock - record.match.end_ts
            self.h_spec_latency.observe(latency if latency > 0 else 0)

    def note_retracted(self, engine: Any, retraction: Any) -> None:
        """A speculative emission was withdrawn by a retraction record."""
        if self.tracing:
            self._record_matches(
                engine, [retraction.match], self.tracer, engine._arrival,
                stages.MATCH_RETRACTED,
                extra=f"ref {retraction.ref_seq}: {retraction.cause}",
            )
        if self.c_retractions is not None:
            self.c_retractions.inc()

    def note_refreeze(self, engine: Any, decision: Any) -> None:
        """The adaptive-K controller re-froze the bound at a punctuation."""
        if self.tracing:
            self.tracer.record(
                engine._arrival, stages.REFROZEN,
                ts=decision.at_ts,
                detail=(
                    f"k={decision.k} speculate={decision.speculate} "
                    f"({decision.reason})"
                ),
                stream=self.stream,
            )
        if self.g_refreeze_k is not None:
            self.g_refreeze_k.set(decision.k)

    def after_close(self, engine: Any, emitted: List[Any]) -> None:
        """Account for the matches flushed at end of stream."""
        if self.tracing and emitted:
            self._record_matches(
                engine, emitted, self.tracer, engine._arrival,
                stages.MATCH_EMITTED, extra="at close",
            )
        if self.c_matches is not None:
            if emitted:
                self.c_matches.inc(len(emitted))
                clock = getattr(engine, "clock", None)
                if clock is not None:
                    now = clock.now
                    for match in emitted:
                        latency = now - match.end_ts
                        self.h_latency.observe(latency if latency > 0 else 0)
            self.g_state.set(engine.state_size())
            self.g_pending.set(engine.stats.matches_pending)

    # -- parallel-worker merge ----------------------------------------------------

    def merge_worker_states(self, states: List[Optional[dict]]) -> None:
        """Fold per-worker registry snapshots in, deterministically.

        Worker metric names are prefixed (``repro_events_total`` →
        ``repro_worker_events_total``) so the router's own flow metrics
        never collide with the workers'.  *states* arrives in payload
        (routing-insertion) order, and the merge is order-insensitive
        anyway — counters and buckets add, gauges max — so the result
        is a pure function of the input stream.
        """
        if self.registry is None:
            return
        for state in states:
            if state:
                self.registry.merge_state(state, rename=_worker_metric_name)
