"""``repro explain``: answer "why was this match emitted late / never?".

The workflow: replay a recorded trace through a freshly built engine
with a :class:`~repro.obs.trace.Tracer` attached, then reconstruct the
lifecycle of the events that contribute (or should have contributed) to
a match of interest:

* for an **emitted** match — when each contributing event was admitted,
  how long it sat in a reorder buffer, when the match was routed through
  negation sealing, when it was emitted;
* for a **missing** match (present in the offline oracle's output but
  not the engine's) — which contributing event was dropped as late,
  rejected by a predicate, evicted by a purge, or shed under load, i.e.
  the proximate cause of the miss.

Everything here is offline tooling: it never touches the engine hot
path, and the replay is exactly as deterministic as the engine itself,
so an explanation is reproducible from the trace file alone.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.core.event import Event
from repro.core.oracle import OfflineOracle
from repro.core.pattern import Match, Pattern
from repro.obs import trace as stages
from repro.obs.trace import Tracer

#: Stages that terminate an event's useful life inside the engine —
#: the proximate causes `diagnose` reports for a missing match.
_TERMINAL_STAGES = (
    stages.LATE_DROPPED,
    stages.PURGED,
    stages.SHED,
    stages.QUARANTINED,
    stages.PREDICATE_REJECTED,
    stages.IGNORED,
)


def default_capacity(elements: Sequence[Any]) -> int:
    """A ring size that retains full lifecycles for a bounded replay.

    ~8 spans per element covers the worst realistic case (admission +
    buffer + release + several match participations); the floor keeps
    tiny traces from configuring a degenerate ring.
    """
    return max(4096, 8 * len(elements))


def replay_with_tracing(
    engine: Any,
    elements: Sequence[Any],
    capacity: Optional[int] = None,
) -> Tracer:
    """Run *elements* through a fresh *engine* with tracing; return the tracer.

    The engine must be freshly built (nothing fed yet) so arrival
    indices line up with the trace. Fed element-at-a-time — the
    instrumented path does that anyway — and closed at the end so
    close-time emissions are traced too.
    """
    tracer = Tracer(capacity if capacity is not None else default_capacity(elements))
    engine.enable_observability(tracer=tracer)
    for element in elements:
        engine.feed(element)
    engine.close()
    return tracer


# -- lifecycle rendering -------------------------------------------------------------


def lifecycle_lines(tracer: Tracer, eid: int) -> List[str]:
    """Human-readable lifecycle of event *eid*, one line per span."""
    spans = tracer.spans_for(eid)
    if not spans:
        note = "no spans retained"
        if tracer.overflowed():
            note += " (ring buffer overflowed; re-run with a larger --capacity)"
        return [f"eid {eid}: {note}"]
    lines = []
    for span in spans:
        subject = f"{span.etype}@{span.ts}" if span.etype is not None else f"ts={span.ts}"
        tier = f" [{span.stream}]" if span.stream else ""
        detail = f" — {span.detail}" if span.detail else ""
        lines.append(
            f"  arrival {span.arrival:>6}{tier}  {span.stage:<18} {subject}{detail}"
        )
    return lines


def diagnose(tracer: Tracer, eid: int) -> str:
    """One-line proximate cause for why *eid* is not available for matching."""
    spans = tracer.spans_for(eid)
    if not spans:
        if tracer.overflowed():
            return "unknown (trace ring overflowed)"
        return "never arrived in the trace"
    for span in reversed(spans):
        if span.stage in (stages.MATCH_EMITTED, stages.MATCH_REVOKED):
            return f"participated in a match ({span.stage})"
        if span.stage == stages.MATCH_RETRACTED:
            # The speculative match this event contributed to was
            # withdrawn — for a missing-match question that withdrawal
            # IS the proximate cause, not whatever buried the event
            # earlier in its life.
            detail = f" ({span.detail})" if span.detail else ""
            return f"retracted{detail}"
        if span.stage == stages.MATCH_SPECULATED:
            return "participated in a speculative match (not yet sealed)"
        if span.stage in _TERMINAL_STAGES:
            detail = f" ({span.detail})" if span.detail else ""
            return f"{span.stage}{detail}"
    return f"last seen: {spans[-1].stage}"


# -- match-level explanations --------------------------------------------------------


def _match_header(match: Match, label: str) -> str:
    eids = ", ".join(str(event.eid) for event in match.events)
    return (
        f"{label} match [{eids}] "
        f"span {match.start_ts}..{match.end_ts} "
        f"({' -> '.join(event.etype for event in match.events)})"
    )


def explain_match(tracer: Tracer, match: Match, label: str = "emitted") -> str:
    """Full lifecycle story of one match: every contributing event."""
    lines = [_match_header(match, label)]
    for event in match.events:
        lines.append(f"event {event.etype}@{event.ts} (eid {event.eid}):")
        lines.extend(lifecycle_lines(tracer, event.eid))
    return "\n".join(lines)


def explain_missing(tracer: Tracer, match: Match) -> str:
    """Why an oracle-only match never surfaced: per-event proximate causes."""
    lines = [_match_header(match, "missing")]
    for event in match.events:
        lines.append(
            f"event {event.etype}@{event.ts} (eid {event.eid}): "
            f"{diagnose(tracer, event.eid)}"
        )
        lines.extend(lifecycle_lines(tracer, event.eid))
    return "\n".join(lines)


# -- target selection ----------------------------------------------------------------


def _stable_match_order(matches: Iterable[Match]) -> List[Match]:
    return sorted(matches, key=lambda m: (m.end_ts, m.start_ts, repr(m.key())))


def emitted_matches(
    engine: Any, eids: Optional[Sequence[int]] = None
) -> List[Match]:
    """The engine's emitted matches, optionally filtered to those whose
    contributing event ids include every id in *eids*."""
    matches = list(engine.results)
    if eids:
        wanted = set(eids)
        matches = [
            m for m in matches
            if wanted <= {event.eid for event in m.events}
        ]
    return _stable_match_order(matches)


def missing_matches(
    pattern: Pattern, elements: Sequence[Any], engine: Any
) -> Tuple[List[Match], int]:
    """Oracle-only matches (engine missed them) plus the oracle total.

    Uses the engine's *net* result set when it exposes one (aggressive
    engines subtract revocations), mirroring ``run --verify``.
    """
    events = [e for e in elements if isinstance(e, Event)]
    truth = OfflineOracle(pattern).evaluate(events)
    produced = (
        engine.net_result_set()
        if hasattr(engine, "net_result_set")
        else engine.result_set()
    )
    missing = [match for match in truth if match.key() not in produced]
    return _stable_match_order(missing), len(truth)


def summary_lines(tracer: Tracer) -> List[str]:
    """Stage histogram of the whole replay — the trace's table of contents."""
    counts = tracer.stage_counts()
    lines = [f"trace: {len(tracer)} spans retained, {tracer.recorded} recorded"]
    for stage in stages.STAGES:
        if stage in counts:
            lines.append(f"  {stage:<20} {counts[stage]}")
    if tracer.overflowed():
        lines.append(
            "  NOTE: ring buffer overflowed; early lifecycles are partial "
            "(raise --capacity)"
        )
    return lines
