"""The flight recorder: a bounded ring of recent gateway trace records.

Production post-mortems need the *last few seconds* of what a gateway
was doing when it died, not a full journal of everything it ever did.
:class:`FlightRecorder` keeps a fixed-capacity ring of small tuples —
admissions, watermark moves, liveness fences, busy refusals, WAL sync
durations, sheds, retractions, and crash/termination markers — that
costs one tuple append per record and drops the oldest entries
silently.  The gateway dumps the ring to ``flight.jsonl`` when it
crashes or receives SIGTERM; ``repro explain --flight DUMP`` replays it
into a per-source timeline and names the proximate stall.

The recorder itself does no I/O and reads no clock: the gateway injects
timestamps and owns the dump (through its off-loop journal writer), so
this module stays rule-clean for the obs subtree gate.

Record kinds
------------
``admit`` / ``dup`` / ``quarantine``  one frame's admission outcome
``busy``        a hard-backpressure refusal; ``value`` = pressure*10000
``watermark``   the merged watermark moved; ``value`` = new mark
``hold``        reorder-buffer depth at a watermark move; ``value`` = depth,
                ``detail`` = oldest buffered occurrence time
``fence`` / ``unfence``  liveness transitions, per source
``shed``        the engine shed events; ``value`` = total shed so far
``retraction``  speculative retractions issued; ``value`` = total so far
``sync``        one group commit; ``value`` = duration in microseconds
``crash`` / ``sigterm`` / ``seal``  terminal markers
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Deque, Dict, List, NamedTuple, Optional, Tuple

FLIGHT_VERSION = 1

#: Stall verdicts analyze_flight can return (besides "none apparent").
STALL_BACKPRESSURE = "backpressure"
STALL_FENCED = "fenced source"
STALL_WAL_SYNC = "wal sync"
STALL_REORDER_HOLD = "reorder hold"
STALL_NONE = "none apparent"


class FlightRecord(NamedTuple):
    t: float
    kind: str
    source: str
    value: int
    detail: str


class FlightReport(NamedTuple):
    reason: str
    records: int
    dropped: int
    #: source -> most recent records mentioning it, oldest first
    timelines: Dict[str, List[FlightRecord]]
    #: one of the STALL_* constants (or STALL_NONE)
    verdict: str
    #: human sentence naming the proximate stall
    cause: str


class FlightRecorder:
    """Bounded, allocation-light ring of recent trace records."""

    __slots__ = ("capacity", "recorded", "_ring")

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self.recorded = 0
        self._ring: Deque[Tuple[float, str, str, int, str]] = deque(maxlen=capacity)

    def note(
        self, t: float, kind: str, source: str = "", value: int = 0, detail: str = ""
    ) -> None:
        self._ring.append((t, kind, source, value, detail))
        self.recorded += 1

    @property
    def dropped(self) -> int:
        return self.recorded - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def records(self) -> List[FlightRecord]:
        return [FlightRecord(*entry) for entry in self._ring]

    def dump_lines(self, reason: str, meta: Optional[Dict[str, Any]] = None) -> List[str]:
        """The ``flight.jsonl`` payload: a header line plus one line per
        record, oldest first.  The caller owns writing them to disk."""
        header: Dict[str, Any] = {
            "flight": FLIGHT_VERSION,
            "reason": reason,
            "records": len(self._ring),
            "recorded": self.recorded,
            "dropped": self.dropped,
        }
        if meta:
            header.update(meta)
        lines = [json.dumps(header, sort_keys=True)]
        for t, kind, source, value, detail in self._ring:
            record: Dict[str, Any] = {"t": round(t, 6), "kind": kind}
            if source:
                record["source"] = source
            if value:
                record["value"] = value
            if detail:
                record["detail"] = detail
            lines.append(json.dumps(record, sort_keys=True))
        return lines


def load_flight(text: str) -> Tuple[Dict[str, Any], List[FlightRecord]]:
    """Parse a ``flight.jsonl`` dump back to (header, records).

    Torn trailing lines (the dump raced process death) are skipped with
    the same repaired-tail semantics as the WAL reader.
    """
    header: Dict[str, Any] = {}
    records: List[FlightRecord] = []
    first = True
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except ValueError:
            continue  # torn write at process death
        if first and "flight" in payload:
            header = payload
            first = False
            continue
        first = False
        records.append(
            FlightRecord(
                float(payload.get("t", 0.0)),
                str(payload.get("kind", "?")),
                str(payload.get("source", "")),
                int(payload.get("value", 0)),
                str(payload.get("detail", "")),
            )
        )
    return header, records


def analyze_flight(
    header: Dict[str, Any],
    records: List[FlightRecord],
    last: int = 20,
) -> FlightReport:
    """Reconstruct per-source timelines and name the proximate stall.

    The verdict looks at the tail of the recording — the window after
    the last completed group commit, bounded to the final quarter of the
    recorded span — and asks, in order of operational urgency: was the
    gateway refusing frames (backpressure)?  did a fenced source
    coincide with the watermark going quiet?  was the last WAL sync an
    outlier?  was the reorder buffer still holding events at the end?
    """
    reason = str(header.get("reason", "unknown"))
    timelines: Dict[str, List[FlightRecord]] = {}
    for record in records:
        if record.source:
            timelines.setdefault(record.source, []).append(record)
    timelines = {
        source: entries[-last:] for source, entries in sorted(timelines.items())
    }
    if not records:
        return FlightReport(
            reason, 0, int(header.get("dropped", 0)), timelines,
            STALL_NONE, "the recording is empty",
        )

    t_end = records[-1].t
    t_begin = records[0].t
    span = max(t_end - t_begin, 1e-9)
    window_start = t_end - span / 4.0
    tail = [record for record in records if record.t >= window_start]

    busy = [record for record in tail if record.kind == "busy"]
    if busy:
        worst = max(record.value for record in busy) / 10000.0
        verdict = STALL_BACKPRESSURE
        cause = (
            f"{len(busy)} busy refusal(s) in the final window "
            f"(peak pressure {worst:.2f}) — the engine was shedding load "
            "and clients were being turned away"
        )
        return FlightReport(
            reason, len(records), int(header.get("dropped", 0)),
            timelines, verdict, cause,
        )

    fenced: Dict[str, FlightRecord] = {}
    for record in records:
        if record.kind == "fence":
            fenced[record.source] = record
        elif record.kind == "unfence":
            fenced.pop(record.source, None)
    if fenced:
        last_fence = max(fenced.values(), key=lambda record: record.t)
        marks = [record for record in records if record.kind == "watermark"]
        stalled_after_fence = not marks or marks[-1].t <= last_fence.t
        if stalled_after_fence or last_fence.t >= window_start:
            names = ", ".join(sorted(fenced))
            cause = (
                f"source(s) {names} fenced by the liveness timeout and never "
                "recovered; the merged watermark "
                + ("did not move afterwards" if stalled_after_fence
                   else "was still degraded at the end")
            )
            return FlightReport(
                reason, len(records), int(header.get("dropped", 0)),
                timelines, STALL_FENCED, cause,
            )

    syncs = [record for record in records if record.kind == "sync"]
    if syncs:
        tail_syncs = [record for record in syncs if record.t >= window_start]
        ordered = sorted(record.value for record in syncs)
        median = ordered[len(ordered) // 2]
        slow = [
            record for record in tail_syncs
            if record.value >= max(5 * max(median, 1), 50_000)
        ]
        if slow:
            worst_us = max(record.value for record in slow)
            cause = (
                f"group commit stalled: WAL sync took {worst_us / 1000.0:.1f} ms "
                f"(median {median / 1000.0:.3f} ms) right before the end — "
                "acks were gated on a slow flush"
            )
            return FlightReport(
                reason, len(records), int(header.get("dropped", 0)),
                timelines, STALL_WAL_SYNC, cause,
            )

    holds = [record for record in records if record.kind == "hold"]
    if holds and holds[-1].value > 0:
        depth = holds[-1].value
        oldest = holds[-1].detail
        cause = (
            f"the reorder buffer was still holding {depth} event(s) "
            + (f"(oldest occurrence time {oldest}) " if oldest else "")
            + "waiting for the watermark when the recording ended"
        )
        return FlightReport(
            reason, len(records), int(header.get("dropped", 0)),
            timelines, STALL_REORDER_HOLD, cause,
        )

    return FlightReport(
        reason, len(records), int(header.get("dropped", 0)), timelines,
        STALL_NONE, "no stall signature in the final window",
    )


def render_flight_lines(
    header: Dict[str, Any], records: List[FlightRecord], last: int = 20
) -> List[str]:
    """Human timeline for ``repro explain --flight``."""
    report = analyze_flight(header, records, last=last)
    lines = [
        f"flight recording: {report.records} record(s), "
        f"{report.dropped} dropped, reason: {report.reason}",
    ]
    for source, entries in report.timelines.items():
        lines.append(f"  source {source!r}:")
        for record in entries:
            detail = f" {record.detail}" if record.detail else ""
            value = f" value={record.value}" if record.value else ""
            lines.append(f"    t={record.t:.6f} {record.kind}{value}{detail}")
    unsourced = [record for record in records if not record.source][-last:]
    if unsourced:
        lines.append("  gateway:")
        for record in unsourced:
            detail = f" {record.detail}" if record.detail else ""
            value = f" value={record.value}" if record.value else ""
            lines.append(f"    t={record.t:.6f} {record.kind}{value}{detail}")
    lines.append(f"proximate stall: {report.verdict} — {report.cause}")
    return lines
