"""Exporters: Prometheus text exposition and JSON-lines emission.

Both formats are views over :meth:`MetricsRegistry.snapshot_state` — the
same payload the checkpoint layer persists — so anything a scraper sees
can be reconstructed from a checkpoint and vice versa.

The Prometheus renderer follows the text exposition format (version
0.0.4): ``# HELP`` / ``# TYPE`` headers, cumulative ``_bucket`` series
with ``le`` labels ending in ``+Inf``, plus ``_sum`` and ``_count`` for
histograms.  No timestamps are emitted — the stream's clock is logical,
and scrape time is the collector's business.
"""

from __future__ import annotations

import json
from typing import IO, List

from repro.obs.metrics import MetricsRegistry


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus text exposition format."""
    lines: List[str] = []
    for metric in registry.metrics():
        name = metric.name
        if metric.help:
            lines.append(f"# HELP {name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {name} {metric.kind}")
        if metric.kind == "histogram":
            cumulative = 0
            for bound, bucket_count in zip(metric.bounds, metric.counts):
                cumulative += bucket_count
                lines.append(f'{name}_bucket{{le="{bound}"}} {cumulative}')
            cumulative += metric.counts[-1]
            lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{name}_sum {metric.total}")
            lines.append(f"{name}_count {metric.count}")
        else:
            lines.append(f"{name} {metric.value}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict:
    """Parse text produced by :func:`render_prometheus` back to samples.

    Returns ``{sample_name_with_labels: value}`` — enough for the
    round-trip tests and for quick assertions in operational tooling.
    Raises ``ValueError`` on any line that is neither a comment nor a
    well-formed ``name[{labels}] value`` sample.
    """
    samples = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, raw = line.rpartition(" ")
        if not name:
            raise ValueError(f"malformed exposition line: {line!r}")
        value = float(raw)
        samples[name] = int(value) if value.is_integer() else value
    return samples


class MetricsJsonWriter:
    """Periodic JSON-lines emission of registry snapshots.

    Each line is ``{"seq": N, "metrics": <snapshot_state payload>}`` —
    the metrics half feeds straight back into
    :meth:`MetricsRegistry.restore_state`, which is what the CLI
    round-trip test exercises.
    """

    __slots__ = ("_sink", "written")

    def __init__(self, sink: IO[str]):
        self._sink = sink
        self.written = 0

    def write(self, seq: int, registry: MetricsRegistry) -> None:
        record = {"seq": seq, "metrics": registry.snapshot_state()}
        self._sink.write(json.dumps(record, sort_keys=True) + "\n")
        self.written += 1

    def flush(self) -> None:
        self._sink.flush()


def read_metrics_jsonl(text: str) -> List[dict]:
    """Parse JSON-lines written by :class:`MetricsJsonWriter`."""
    records = []
    for line in text.splitlines():
        if line.strip():
            records.append(json.loads(line))
    return records
