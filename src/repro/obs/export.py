"""Exporters: Prometheus text exposition and JSON-lines emission.

Both formats are views over :meth:`MetricsRegistry.snapshot_state` — the
same payload the checkpoint layer persists — so anything a scraper sees
can be reconstructed from a checkpoint and vice versa.

The Prometheus renderer follows the text exposition format (version
0.0.4): ``# HELP`` / ``# TYPE`` headers once per metric family,
cumulative ``_bucket`` series with ``le`` labels ending in ``+Inf``,
plus ``_sum`` and ``_count`` for histograms.  Label values are escaped
per the spec (backslash, double quote, newline) and
:func:`parse_prometheus` owns the matching unescape, so render → parse
round-trips for any help text or label value.  No timestamps are
emitted — the stream's clock is logical, and scrape time is the
collector's business.
"""

from __future__ import annotations

import json
from typing import IO, List, Optional, Tuple

from repro.obs.metrics import (
    LabelPairs,
    MetricsRegistry,
    escape_label_value,
)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _unescape_help(text: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(text):
        if text[i] == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
            if nxt == "\\":
                out.append("\\")
                i += 2
                continue
        out.append(text[i])
        i += 1
    return "".join(out)


def _format_bound(bound: float) -> str:
    return str(bound)


def _render_sample(name: str, labels: LabelPairs, value: float) -> str:
    if not labels:
        return f"{name} {value}"
    body = ",".join(
        f'{key}="{escape_label_value(val)}"' for key, val in labels
    )
    return f"{name}{{{body}}} {value}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus text exposition format."""
    lines: List[str] = []
    headed = set()
    for metric in registry.metrics():
        name = metric.name
        if name not in headed:
            headed.add(name)
            if metric.help:
                lines.append(f"# HELP {name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {name} {metric.kind}")
        if metric.kind == "histogram":
            cumulative = 0
            for bound, bucket_count in zip(metric.bounds, metric.counts):
                cumulative += bucket_count
                lines.append(
                    _render_sample(
                        f"{name}_bucket",
                        metric.labels + (("le", _format_bound(bound)),),
                        cumulative,
                    )
                )
            cumulative += metric.counts[-1]
            lines.append(
                _render_sample(
                    f"{name}_bucket", metric.labels + (("le", "+Inf"),), cumulative
                )
            )
            lines.append(_render_sample(f"{name}_sum", metric.labels, metric.total))
            lines.append(_render_sample(f"{name}_count", metric.labels, metric.count))
        else:
            lines.append(_render_sample(name, metric.labels, metric.value))
    return "\n".join(lines) + "\n"


def parse_sample_line(line: str) -> Tuple[str, List[Tuple[str, str]], float]:
    """Tokenize one exposition sample: ``(name, label_pairs, value)``.

    Understands quoted label values with ``\\\\``, ``\\"`` and ``\\n``
    escapes — the inverse of :func:`render_prometheus`'s escaping, which
    the old ``rpartition(" ")`` parser got wrong whenever a label value
    held a space, quote, or escaped newline.
    """
    i = 0
    while i < len(line) and (line[i].isalnum() or line[i] in "_:"):
        i += 1
    name = line[:i]
    if not name:
        raise ValueError(f"malformed exposition line: {line!r}")
    labels: List[Tuple[str, str]] = []
    rest = line[i:]
    if rest.startswith("{"):
        j = 1
        while True:
            while j < len(rest) and rest[j] in " \t":
                j += 1
            if j < len(rest) and rest[j] == "}":
                j += 1
                break
            k = j
            while k < len(rest) and (rest[k].isalnum() or rest[k] == "_"):
                k += 1
            label_name = rest[j:k]
            if not label_name or k >= len(rest) or rest[k] != "=":
                raise ValueError(f"malformed labels in line: {line!r}")
            k += 1
            if k >= len(rest) or rest[k] != '"':
                raise ValueError(f"label value must be quoted: {line!r}")
            k += 1
            value_chars: List[str] = []
            terminated = False
            while k < len(rest):
                ch = rest[k]
                if ch == "\\":
                    if k + 1 >= len(rest):
                        raise ValueError(f"dangling escape in line: {line!r}")
                    nxt = rest[k + 1]
                    value_chars.append("\n" if nxt == "n" else nxt)
                    k += 2
                    continue
                if ch == '"':
                    terminated = True
                    k += 1
                    break
                value_chars.append(ch)
                k += 1
            if not terminated:
                raise ValueError(f"unterminated label value in line: {line!r}")
            labels.append((label_name, "".join(value_chars)))
            while k < len(rest) and rest[k] in " \t":
                k += 1
            if k < len(rest) and rest[k] == ",":
                j = k + 1
                continue
            if k < len(rest) and rest[k] == "}":
                j = k + 1
                break
            raise ValueError(f"malformed labels in line: {line!r}")
        rest = rest[j:]
    raw = rest.strip()
    if not raw or " " in raw:
        raise ValueError(f"malformed exposition line: {line!r}")
    return name, labels, float(raw)


def parse_help_lines(text: str) -> dict:
    """``{metric_name: help_text}`` from ``# HELP`` lines, unescaped."""
    helps = {}
    for line in text.splitlines():
        # No strip(): help text legitimately ends in spaces, and the
        # escaped form is one physical line already.
        if not line.startswith("# HELP "):
            continue
        body = line[len("# HELP "):]
        name, _, escaped = body.partition(" ")
        helps[name] = _unescape_help(escaped)
    return helps


def parse_prometheus(text: str) -> dict:
    """Parse text produced by :func:`render_prometheus` back to samples.

    Returns ``{sample_name_with_labels: value}`` with label values
    *re-escaped* into the canonical rendered form — so the keys of
    ``parse_prometheus(render_prometheus(reg))`` match the rendered
    sample lines exactly, whatever the label values contain.  Raises
    ``ValueError`` on any line that is neither a comment nor a
    well-formed ``name[{labels}] value`` sample.
    """
    samples = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, labels, value = parse_sample_line(line)
        if labels:
            body = ",".join(
                f'{key}="{escape_label_value(val)}"' for key, val in labels
            )
            key = f"{name}{{{body}}}"
        else:
            key = name
        samples[key] = int(value) if value.is_integer() else value
    return samples


class MetricsJsonWriter:
    """Periodic JSON-lines emission of registry snapshots.

    Each line is ``{"seq": N, "metrics": <snapshot_state payload>}`` —
    the metrics half feeds straight back into
    :meth:`MetricsRegistry.restore_state`, which is what the CLI
    round-trip test exercises.

    :meth:`close` writes the trailing partial interval: a run whose
    length is not a multiple of the periodic cadence still ends with a
    final snapshot (and a run that landed exactly on the cadence does
    not get a duplicate — the writer remembers the last ``seq`` it
    emitted).
    """

    __slots__ = ("_sink", "written", "last_seq")

    def __init__(self, sink: IO[str]):
        self._sink = sink
        self.written = 0
        self.last_seq: Optional[int] = None

    def write(self, seq: int, registry: MetricsRegistry) -> None:
        record = {"seq": seq, "metrics": registry.snapshot_state()}
        self._sink.write(json.dumps(record, sort_keys=True) + "\n")
        self.written += 1
        self.last_seq = seq

    def close(self, seq: int, registry: MetricsRegistry) -> None:
        """Flush a final snapshot unless *seq* was already written."""
        if self.last_seq != seq:
            self.write(seq, registry)
        self.flush()

    def flush(self) -> None:
        self._sink.flush()


def read_metrics_jsonl(text: str) -> List[dict]:
    """Parse JSON-lines written by :class:`MetricsJsonWriter`."""
    records = []
    for line in text.splitlines():
        if line.strip():
            records.append(json.loads(line))
    return records
