"""Runtime observability: lifecycle tracing, metrics, exporters, explain.

Zero-dependency instrumentation for every engine family.  Disabled by
default: an engine without an attached bundle pays exactly one
``self._obs is None`` attribute check per element (benchmarked in
``benchmarks/bench_e18_observability.py``).  Enable with::

    registry = MetricsRegistry()
    tracer = Tracer(capacity=65536)
    engine.enable_observability(tracer=tracer, metrics=registry)

and export with :func:`render_prometheus` / :class:`MetricsJsonWriter`,
or replay a trace interactively with ``repro explain``.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    STATE_BUCKETS,
    TICK_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    ADMITTED,
    BUFFERED,
    IGNORED,
    LATE_DROPPED,
    MATCH_CANCELLED,
    MATCH_EMITTED,
    MATCH_PENDING,
    MATCH_REVOKED,
    PREDICATE_REJECTED,
    PROCESSED,
    PUNCTUATION,
    PURGED,
    QUARANTINED,
    RELEASED,
    SHED,
    STAGES,
    NullTracer,
    Span,
    Tracer,
)
from repro.obs.hooks import Observability
from repro.obs.export import (
    MetricsJsonWriter,
    parse_prometheus,
    read_metrics_jsonl,
    render_prometheus,
)

__all__ = [
    "ADMITTED",
    "BUFFERED",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "IGNORED",
    "LATENCY_BUCKETS",
    "LATE_DROPPED",
    "MATCH_CANCELLED",
    "MATCH_EMITTED",
    "MATCH_PENDING",
    "MATCH_REVOKED",
    "MetricsJsonWriter",
    "MetricsRegistry",
    "NullTracer",
    "Observability",
    "PREDICATE_REJECTED",
    "PROCESSED",
    "PUNCTUATION",
    "PURGED",
    "QUARANTINED",
    "RELEASED",
    "SHED",
    "STAGES",
    "STATE_BUCKETS",
    "Span",
    "TICK_BUCKETS",
    "Tracer",
    "parse_prometheus",
    "read_metrics_jsonl",
    "render_prometheus",
]
