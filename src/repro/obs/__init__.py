"""Runtime observability: lifecycle tracing, metrics, exporters, explain.

Zero-dependency instrumentation for every engine family.  Disabled by
default: an engine without an attached bundle pays exactly one
``self._obs is None`` attribute check per element (benchmarked in
``benchmarks/bench_e18_observability.py``).  Enable with::

    registry = MetricsRegistry()
    tracer = Tracer(capacity=65536)
    engine.enable_observability(tracer=tracer, metrics=registry)

and export with :func:`render_prometheus` / :class:`MetricsJsonWriter`,
or replay a trace interactively with ``repro explain``.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    SECONDS_BUCKETS,
    STATE_BUCKETS,
    TICK_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    ADMITTED,
    BUFFERED,
    IGNORED,
    LATE_DROPPED,
    MATCH_CANCELLED,
    MATCH_EMITTED,
    MATCH_PENDING,
    MATCH_REVOKED,
    PREDICATE_REJECTED,
    PROCESSED,
    PUNCTUATION,
    PURGED,
    QUARANTINED,
    RELEASED,
    SHED,
    STAGES,
    NullTracer,
    Span,
    Tracer,
)
from repro.obs.hooks import Observability
from repro.obs.export import (
    MetricsJsonWriter,
    parse_prometheus,
    read_metrics_jsonl,
    render_prometheus,
)
from repro.obs.span import (
    ACK_STAGES,
    SPAN_FIELD,
    SourceLagPanel,
    SpanTracker,
    mint_span,
    span_origin,
)
from repro.obs.flight import (
    FlightRecord,
    FlightRecorder,
    FlightReport,
    analyze_flight,
    load_flight,
    render_flight_lines,
)
from repro.obs.httpserv import TelemetryServer, http_get

__all__ = [
    "ACK_STAGES",
    "ADMITTED",
    "BUFFERED",
    "FlightRecord",
    "FlightRecorder",
    "FlightReport",
    "SECONDS_BUCKETS",
    "SPAN_FIELD",
    "SourceLagPanel",
    "SpanTracker",
    "TelemetryServer",
    "analyze_flight",
    "http_get",
    "load_flight",
    "mint_span",
    "render_flight_lines",
    "span_origin",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "IGNORED",
    "LATENCY_BUCKETS",
    "LATE_DROPPED",
    "MATCH_CANCELLED",
    "MATCH_EMITTED",
    "MATCH_PENDING",
    "MATCH_REVOKED",
    "MetricsJsonWriter",
    "MetricsRegistry",
    "NullTracer",
    "Observability",
    "PREDICATE_REJECTED",
    "PROCESSED",
    "PUNCTUATION",
    "PURGED",
    "QUARANTINED",
    "RELEASED",
    "SHED",
    "STAGES",
    "STATE_BUCKETS",
    "Span",
    "TICK_BUCKETS",
    "Tracer",
    "parse_prometheus",
    "read_metrics_jsonl",
    "render_prometheus",
]
