"""A minimal asyncio HTTP sidecar for live telemetry.

:class:`TelemetryServer` is a deliberately tiny HTTP/1.1 responder —
GET-only, ``Connection: close``, no keep-alive, no dependencies — that
shares its caller's event loop.  The gateway mounts three routes on it
(``/metrics``, ``/healthz``, ``/sources``); the server itself knows
nothing about gateways: each route is a zero-argument callable returning
``(status, content_type, body)``, evaluated synchronously on the loop.
Route handlers must therefore be pure snapshot renderers (string
building over in-memory state) — anything blocking would stall every
connection the loop owns, which is exactly what rule R007 polices.

Scrape-path hygiene follows the gateway transport's conventions: the
request read is bounded (line length, header count, timeout), shared
handles are swapped out before awaits on the stop path (R006), and
every ``writer.close()`` is paired with ``wait_closed`` (R008).
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, Optional, Tuple

Route = Callable[[], Tuple[int, str, str]]

_REASONS = {
    200: "OK",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_READ_TIMEOUT = 5.0
_MAX_HEADER_LINES = 64


class TelemetryServer:
    """Serve a few read-only routes on the current event loop."""

    def __init__(self, host: str, port: int, routes: Dict[str, Route]):
        self.host = host
        self.routes = dict(routes)
        self._port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._bound_port: Optional[int] = None

    @property
    def port(self) -> int:
        if self._bound_port is None:
            raise RuntimeError("telemetry server is not listening; call start()")
        return self._bound_port

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self._port
        )
        self._bound_port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    def abort(self) -> None:
        """Synchronous teardown for crash paths (no await available)."""
        server, self._server = self._server, None
        if server is not None:
            server.close()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await asyncio.wait_for(
                    reader.readline(), timeout=_READ_TIMEOUT
                )
                for _ in range(_MAX_HEADER_LINES):
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=_READ_TIMEOUT
                    )
                    if not line.strip():
                        break
            except asyncio.TimeoutError:
                return
            parts = request.decode("latin-1", "replace").split()
            if len(parts) < 2:
                return
            method, path = parts[0], parts[1].split("?", 1)[0]
            if method != "GET":
                status, ctype, body = 405, "text/plain", "method not allowed\n"
            else:
                route = self.routes.get(path)
                if route is None:
                    known = " ".join(sorted(self.routes))
                    status, ctype, body = 404, "text/plain", f"try: {known}\n"
                else:
                    try:
                        status, ctype, body = route()
                    except Exception as exc:  # a broken panel must not kill the loop
                        status, ctype, body = 500, "text/plain", f"{exc}\n"
            payload = body.encode("utf-8")
            head = (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: {ctype}; charset=utf-8\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # scraper went away mid-response
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


def http_get(host: str, port: int, path: str, timeout: float = 5.0) -> Tuple[int, str]:
    """Blocking one-shot GET for tests, benchmarks, and CLI probes.

    Lives here so the scrape side of the contract (request shape, header
    parsing) has exactly one implementation on each end.  Never call it
    from coroutine context — it blocks.
    """
    import socket

    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.settimeout(timeout)
        sock.sendall(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
            "Connection: close\r\n\r\n".encode("latin-1")
        )
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    raw = b"".join(chunks)
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("latin-1", "replace")
    parts = status_line.split()
    status = int(parts[1]) if len(parts) > 1 and parts[1].isdigit() else 0
    return status, body.decode("utf-8", "replace")
