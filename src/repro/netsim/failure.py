"""Node failure schedules: the paper's second disorder cause.

A failed node does not lose events here (sources buffer and resend);
it *holds* them: an event reaching a failed node waits until the node
recovers, then proceeds.  The result at the sink is a burst of stale
events right after each recovery — the bursty disorder signature that
distinguishes machine failure from latency jitter.

Schedules are precomputed (deterministic under seed) as disjoint
``[start, end)`` outage intervals per node, supporting O(log n) "when
does this node next work at or after t" queries.
"""

from __future__ import annotations

import bisect
import random
from typing import Dict, List, Sequence, Tuple


from repro.core.errors import ConfigurationError


class FailureSchedule:
    """Outage intervals for a set of nodes."""

    def __init__(self) -> None:
        self._outages: Dict[str, List[Tuple[int, int]]] = {}

    def add_outage(self, node: str, start: int, end: int) -> None:
        """Mark *node* down during ``[start, end)``; intervals must not overlap."""
        if end <= start:
            raise ConfigurationError(f"empty outage [{start}, {end})")
        intervals = self._outages.setdefault(node, [])
        for existing_start, existing_end in intervals:
            if start < existing_end and existing_start < end:
                raise ConfigurationError(
                    f"overlapping outage [{start}, {end}) on {node!r}"
                )
        intervals.append((start, end))
        intervals.sort()

    def available_at(self, node: str, t: int) -> int:
        """Earliest time ``>= t`` at which *node* is up."""
        intervals = self._outages.get(node)
        if not intervals:
            return t
        index = bisect.bisect_right(intervals, (t, float("inf"))) - 1
        if index >= 0:
            start, end = intervals[index]
            if start <= t < end:
                return end
        return t

    def is_down(self, node: str, t: int) -> bool:
        return self.available_at(node, t) != t

    def outages(self, node: str) -> List[Tuple[int, int]]:
        return list(self._outages.get(node, []))

    def frame_outages(
        self, deliveries: Sequence, source: str
    ) -> List[Tuple[int, int]]:
        """Map *source*'s outage windows onto its own frame sequence.

        Each outage ``[start, end)`` becomes ``(lo, hi)``: *lo* is the
        index (within *source*'s deliveries, in send order) of the
        first frame sent at or after the outage start, *hi* the first
        frame at or after recovery.  This is the per-source composition
        the ingestion drills need — "source s1's connection dies at its
        frame 120 and comes back at its frame 180" — whereas
        :meth:`repro.netsim.simulator.SimulationResult.crash_indices`
        expresses outages as *global* arrival positions and can only
        script faults that hit the whole pipeline at once.  Windows no
        frame falls into are dropped.
        """
        sent = sorted(
            delivery.sent_at
            for delivery in deliveries
            if delivery.source == source
        )
        windows: List[Tuple[int, int]] = []
        for start, end in self.outages(source):
            lo = bisect.bisect_left(sent, start)
            hi = bisect.bisect_left(sent, end)
            if lo < hi:
                windows.append((lo, hi))
        return windows

    @classmethod
    def random_outages(
        cls,
        nodes: Sequence[str],
        horizon: int,
        outage_rate: float,
        mean_duration: int,
        seed: int = 0,
    ) -> "FailureSchedule":
        """Poisson-ish outage process per node over ``[0, horizon)``.

        Each node independently fails with probability *outage_rate*
        per time unit (geometric gaps), staying down for an
        exponentially distributed duration with the given mean.
        """
        if not 0.0 <= outage_rate <= 1.0:
            raise ConfigurationError(f"outage_rate must be in [0, 1], got {outage_rate}")
        if mean_duration < 1:
            raise ConfigurationError(f"mean_duration must be >= 1, got {mean_duration}")
        schedule = cls()
        rng = random.Random(seed)
        for node in nodes:
            t = 0
            while t < horizon and outage_rate > 0:
                gap = rng.expovariate(outage_rate) if outage_rate < 1 else 0
                t += int(gap) + 1
                if t >= horizon:
                    break
                duration = max(1, int(rng.expovariate(1.0 / mean_duration)))
                schedule.add_outage(node, t, min(t + duration, horizon))
                t += duration
        return schedule
