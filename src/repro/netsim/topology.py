"""Network topology: sources, relay nodes, links, and routes.

A topology is a DAG of named nodes connected by latency-bearing links.
Each event source is attached to a node; its events travel the node's
*route* (the link path to the sink) accumulating per-hop sampled
latency and any failure-induced hold time (``repro.netsim.failure``).
The sink is where the CEP engine sits; the simulator orders deliveries
by arrival time there.

Kept deliberately simple — routes are static paths, no congestion
model — because the *disorder pattern* at the sink is what the paper's
experiments need, not a faithful TCP simulation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.netsim.latency import ConstantLatency, LatencyModel


class Link:
    """A directed edge with a latency model."""

    __slots__ = ("src", "dst", "latency")

    def __init__(self, src: str, dst: str, latency: LatencyModel):
        if src == dst:
            raise ConfigurationError(f"self-loop link at {src!r}")
        self.src = src
        self.dst = dst
        self.latency = latency

    def __repr__(self) -> str:
        return f"Link({self.src} -> {self.dst}, {self.latency!r})"


class Topology:
    """A set of nodes and directed links with path lookup.

    >>> topo = Topology(["s1", "relay", "sink"])
    >>> topo.add_link("s1", "relay", ConstantLatency(2))
    >>> topo.add_link("relay", "sink", ConstantLatency(1))
    >>> [l.src for l in topo.route("s1", "sink")]
    ['s1', 'relay']
    """

    def __init__(self, nodes: Sequence[str]):
        if len(set(nodes)) != len(nodes):
            raise ConfigurationError("duplicate node names")
        self.nodes: List[str] = list(nodes)
        self._links: Dict[Tuple[str, str], Link] = {}
        self._adjacency: Dict[str, List[str]] = {node: [] for node in nodes}

    def add_link(self, src: str, dst: str, latency: LatencyModel) -> Link:
        for name in (src, dst):
            if name not in self._adjacency:
                raise ConfigurationError(f"unknown node {name!r}")
        if (src, dst) in self._links:
            raise ConfigurationError(f"duplicate link {src!r} -> {dst!r}")
        link = Link(src, dst, latency)
        self._links[(src, dst)] = link
        self._adjacency[src].append(dst)
        return link

    def link(self, src: str, dst: str) -> Link:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise ConfigurationError(f"no link {src!r} -> {dst!r}") from None

    def route(self, src: str, dst: str) -> List[Link]:
        """Shortest-hop path as a list of links (BFS; raises if unreachable)."""
        if src not in self._adjacency or dst not in self._adjacency:
            raise ConfigurationError(f"unknown endpoint in route {src!r} -> {dst!r}")
        if src == dst:
            return []
        parents: Dict[str, str] = {}
        frontier = [src]
        seen = {src}
        while frontier:
            nxt: List[str] = []
            for node in frontier:
                for neighbour in self._adjacency[node]:
                    if neighbour in seen:
                        continue
                    parents[neighbour] = node
                    if neighbour == dst:
                        return self._unwind(parents, src, dst)
                    seen.add(neighbour)
                    nxt.append(neighbour)
            frontier = nxt
        raise ConfigurationError(f"no route {src!r} -> {dst!r}")

    def _unwind(self, parents: Dict[str, str], src: str, dst: str) -> List[Link]:
        path: List[Link] = []
        node = dst
        while node != src:
            parent = parents[node]
            path.append(self._links[(parent, node)])
            node = parent
        path.reverse()
        return path

    @classmethod
    def star(
        cls,
        source_names: Sequence[str],
        sink: str = "sink",
        latency_factory=None,
    ) -> "Topology":
        """Convenience: every source linked directly to one sink.

        *latency_factory* is called once per source (with its index) to
        produce that link's latency model; defaults to constant zero.
        """
        nodes = list(source_names) + [sink]
        topology = cls(nodes)
        for index, name in enumerate(source_names):
            model = (
                latency_factory(index) if latency_factory is not None else ConstantLatency(0)
            )
            topology.add_link(name, sink, model)
        return topology
