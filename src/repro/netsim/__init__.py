"""Discrete-event network simulator: physically motivated disorder."""

from repro.netsim.failure import FailureSchedule
from repro.netsim.latency import (
    ConstantLatency,
    ExponentialLatency,
    GaussianLatency,
    LatencyModel,
    ParetoLatency,
    UniformLatency,
)
from repro.netsim.simulator import Delivery, NetworkSimulator, SimulationResult, simulate_star
from repro.netsim.topology import Link, Topology

__all__ = [
    "ConstantLatency",
    "Delivery",
    "ExponentialLatency",
    "FailureSchedule",
    "GaussianLatency",
    "LatencyModel",
    "Link",
    "NetworkSimulator",
    "ParetoLatency",
    "SimulationResult",
    "Topology",
    "UniformLatency",
    "simulate_star",
]
