"""Latency distributions for simulated network links.

Each distribution maps an RNG to a non-negative integer delay in
occurrence-time units.  The shapes cover the regimes that matter for
disorder studies:

* :class:`ConstantLatency` — pure propagation delay: shifts arrival
  times but, alone, never reorders a single stream;
* :class:`UniformLatency` — bounded jitter, the benign case where a
  small fixed K suffices;
* :class:`ExponentialLatency` — classic queueing delay;
* :class:`ParetoLatency` — heavy tail: rare but enormous stragglers,
  the regime where a max-based K explodes and quantile estimation
  (E12) pays off;
* :class:`GaussianLatency` — clipped normal, for symmetric jitter.
"""

from __future__ import annotations

import random

from repro.core.errors import ConfigurationError


class LatencyModel:
    """Base class: a per-hop delay sampler."""

    def sample(self, rng: random.Random) -> int:
        """A non-negative integer delay."""
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Always exactly *delay* units."""

    def __init__(self, delay: int):
        if delay < 0:
            raise ConfigurationError(f"delay must be >= 0, got {delay}")
        self.delay = delay

    def sample(self, rng: random.Random) -> int:
        return self.delay

    def __repr__(self) -> str:
        return f"ConstantLatency({self.delay})"


class UniformLatency(LatencyModel):
    """Uniform integer delay in ``[low, high]``."""

    def __init__(self, low: int, high: int):
        if low < 0 or high < low:
            raise ConfigurationError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class ExponentialLatency(LatencyModel):
    """Exponential delay with the given *mean*, discretised."""

    def __init__(self, mean: float):
        if mean <= 0:
            raise ConfigurationError(f"mean must be > 0, got {mean}")
        self.mean = mean

    def sample(self, rng: random.Random) -> int:
        return int(rng.expovariate(1.0 / self.mean))

    def __repr__(self) -> str:
        return f"ExponentialLatency(mean={self.mean})"


class ParetoLatency(LatencyModel):
    """Heavy-tailed delay: ``scale`` minimum, tail index ``alpha``.

    Smaller *alpha* = heavier tail; alpha <= 1 has infinite mean — the
    adversarial regime for fixed-K sizing.  Samples are capped at *cap*
    to keep simulations finite.
    """

    def __init__(self, scale: int = 1, alpha: float = 1.5, cap: int = 10_000):
        if scale < 0:
            raise ConfigurationError(f"scale must be >= 0, got {scale}")
        if alpha <= 0:
            raise ConfigurationError(f"alpha must be > 0, got {alpha}")
        if cap < scale:
            raise ConfigurationError(f"cap must be >= scale, got {cap}")
        self.scale = scale
        self.alpha = alpha
        self.cap = cap

    def sample(self, rng: random.Random) -> int:
        value = int(self.scale * rng.paretovariate(self.alpha))
        return min(value, self.cap)

    def __repr__(self) -> str:
        return f"ParetoLatency(scale={self.scale}, alpha={self.alpha}, cap={self.cap})"


class GaussianLatency(LatencyModel):
    """Normal delay clipped at zero."""

    def __init__(self, mean: float, stddev: float):
        if mean < 0 or stddev < 0:
            raise ConfigurationError("mean and stddev must be >= 0")
        self.mean = mean
        self.stddev = stddev

    def sample(self, rng: random.Random) -> int:
        return max(0, int(rng.gauss(self.mean, self.stddev)))

    def __repr__(self) -> str:
        return f"GaussianLatency(mean={self.mean}, stddev={self.stddev})"
