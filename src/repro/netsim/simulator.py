"""Discrete-event network simulator: occurrence order in, arrival order out.

The simulator carries each source's events across its route to the
sink, hop by hop:

* leaving a node is only possible while the node is up — a failed node
  holds traffic until recovery (``FailureSchedule``);
* each link adds a sampled latency (``LatencyModel``);
* per-link FIFO is preserved (a later departure cannot overtake an
  earlier one on the *same* link), matching ordered transport like TCP;
  reordering emerges *across* sources, links, and failure bursts.

The output is the arrival-ordered element list the engines consume,
plus per-event delivery records for calibration (e.g. choosing K from
simulated delays rather than oracle knowledge).
"""

from __future__ import annotations

import bisect
import random
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.core.event import Event
from repro.netsim.failure import FailureSchedule
from repro.netsim.topology import Topology


class Delivery(NamedTuple):
    """One event's journey: occurrence ts, sink arrival time, source."""

    event: Event
    sent_at: int
    arrived_at: int
    source: str

    @property
    def transit(self) -> int:
        return self.arrived_at - self.sent_at


class SimulationResult:
    """Arrival order plus per-delivery diagnostics."""

    def __init__(self, deliveries: List[Delivery]):
        self.deliveries = deliveries

    @property
    def arrival_order(self) -> List[Event]:
        """Events in sink-arrival order — feed this to an engine."""
        return [d.event for d in self.deliveries]

    def max_transit(self) -> int:
        return max((d.transit for d in self.deliveries), default=0)

    def mean_transit(self) -> float:
        if not self.deliveries:
            return 0.0
        return sum(d.transit for d in self.deliveries) / len(self.deliveries)

    def observed_disorder_bound(self) -> int:
        """Smallest K under which no delivered event is late at the sink.

        Computed from arrival order the same way an engine's clock
        would: for each delivery, how far the max occurrence timestamp
        already arrived exceeds its own.
        """
        bound = 0
        max_ts = -1
        for delivery in self.deliveries:
            ts = delivery.event.ts
            if ts < max_ts:
                bound = max(bound, max_ts - ts)
            elif ts > max_ts:
                max_ts = ts
        return bound

    def crash_indices(self, failures, node: str) -> List[int]:
        """Arrival-stream positions where *node*'s outages begin.

        Maps each outage of *node* in a
        :class:`repro.netsim.failure.FailureSchedule` to the index of
        the first delivery arriving at or after the outage start — the
        position at which an engine hosted on that node would die.
        Feed the result to
        :meth:`repro.faultinject.FaultInjector.from_outages` to turn a
        simulated topology failure into an engine crash/restart cycle.
        Outages starting after the last delivery produce no crash point.
        """
        arrivals = [d.arrived_at for d in self.deliveries]
        indices = []
        for start, _end in failures.outages(node):
            index = bisect.bisect_left(arrivals, start)
            if index < len(arrivals):
                indices.append(index)
        return sorted(set(indices))


class NetworkSimulator:
    """Carries source streams across a topology to a sink.

    Parameters
    ----------
    topology:
        Node/link graph.
    sink:
        Node name where the engine sits.
    failures:
        Optional outage schedule; nodes hold traffic while down.
    seed:
        RNG seed for latency sampling.
    """

    def __init__(
        self,
        topology: Topology,
        sink: str = "sink",
        failures: Optional[FailureSchedule] = None,
        seed: int = 0,
    ):
        if sink not in topology.nodes:
            raise ConfigurationError(f"unknown sink {sink!r}")
        self.topology = topology
        self.sink = sink
        self.failures = failures or FailureSchedule()
        self.seed = seed

    def run(self, streams: Dict[str, Sequence[Event]]) -> SimulationResult:
        """Deliver every stream to the sink.

        *streams* maps source node name → events in occurrence order
        (each event's ``ts`` is its send time at the source).
        """
        rng = random.Random(self.seed)
        deliveries: List[Delivery] = []
        for source in sorted(streams):
            route = self.topology.route(source, self.sink)
            link_clock: Dict[Tuple[str, str], int] = {}
            last_sent = -1
            for event in streams[source]:
                if event.ts < last_sent:
                    raise ConfigurationError(
                        f"stream at {source!r} not in occurrence order: {event!r}"
                    )
                last_sent = event.ts
                t = event.ts
                node = source
                for link in route:
                    # A down node holds the event until recovery.
                    t = self.failures.available_at(node, t)
                    t += link.latency.sample(rng)
                    # Per-link FIFO: no overtaking on the same link.
                    key = (link.src, link.dst)
                    t = max(t, link_clock.get(key, 0))
                    link_clock[key] = t
                    node = link.dst
                t = self.failures.available_at(self.sink, t)
                deliveries.append(Delivery(event, event.ts, t, source))
        # Sink arrival order; ties broken deterministically by (source, eid).
        deliveries.sort(key=lambda d: (d.arrived_at, d.source, d.event.eid))
        return SimulationResult(deliveries)


def simulate_star(
    streams: Dict[str, Sequence[Event]],
    latency_factory,
    failures: Optional[FailureSchedule] = None,
    seed: int = 0,
) -> SimulationResult:
    """One-hop star topology shortcut: every source direct to the sink.

    *latency_factory(index)* builds the latency model for the i-th
    source (sorted by name).
    """
    names = sorted(streams)
    topology = Topology.star(names, latency_factory=latency_factory)
    simulator = NetworkSimulator(topology, failures=failures, seed=seed)
    return simulator.run(streams)
