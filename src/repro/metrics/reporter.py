"""Plain-text table/series rendering for benchmark output.

The benchmarks print the same rows/series the paper's tables and
figures report; this module owns the formatting so every experiment's
output looks the same and is trivially greppable.  No plotting
dependencies — a figure is rendered as its data series.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence


def format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, int) and abs(value) >= 10_000:
        return f"{value:,}"
    return str(value)


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    note: str = "",
) -> str:
    """A fixed-width ASCII table with a title rule."""
    rendered_rows = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(col) for col in columns]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    lines.append("=" * max(len(title), sum(widths) + 3 * (len(columns) - 1)))
    lines.append(title)
    lines.append("-" * max(len(title), sum(widths) + 3 * (len(columns) - 1)))
    lines.append("   ".join(col.ljust(widths[i]) for i, col in enumerate(columns)))
    for row in rendered_rows:
        lines.append("   ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    if note:
        lines.append(f"note: {note}")
    lines.append("")
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    xs: Sequence[Any],
    series: Dict[str, Sequence[Any]],
    note: str = "",
) -> str:
    """A figure as data: one x column, one column per named series."""
    columns = [x_label] + list(series)
    rows = []
    for index, x in enumerate(xs):
        row = [x] + [values[index] for values in series.values()]
        rows.append(row)
    return render_table(title, columns, rows, note=note)


def render_histogram(title: str, histogram: Any, note: str = "") -> str:
    """An observability histogram as a bucket table plus a summary line.

    Accepts any object with the :class:`repro.obs.metrics.Histogram`
    shape (``bounds``, ``counts``, ``summary()``); kept duck-typed so
    the reporter stays importable without the obs package.
    """
    rows: List[Sequence[Any]] = []
    upper_bounds = [str(bound) for bound in histogram.bounds] + ["+Inf"]
    for bound, count in zip(upper_bounds, histogram.counts):
        rows.append([f"<= {bound}", count])
    summary = histogram.summary()
    note_parts = [
        f"count={summary['count']}",
        f"mean={summary['mean']:.2f}",
        f"p50={summary['p50']:g}",
        f"p90={summary['p90']:g}",
        f"p99={summary['p99']:g}",
    ]
    if note:
        note_parts.append(note)
    return render_table(title, ["bucket", "count"], rows, note=" ".join(note_parts))


def print_table(*args, **kwargs) -> None:
    """:func:`render_table` straight to stdout."""
    print(render_table(*args, **kwargs))


def print_series(*args, **kwargs) -> None:
    """:func:`render_series` straight to stdout."""
    print(render_series(*args, **kwargs))
