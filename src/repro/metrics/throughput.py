"""Throughput measurement: wall time and its hardware-free proxy.

Wall-clock events/second depends on the host; the *operation counters*
(``EngineStats``) do not.  :func:`timed_run` reports both so each
benchmark table can show a wall number for intuition next to the
counter ratios that actually reproduce the paper's relative claims.
"""

from __future__ import annotations

import time
from typing import List, NamedTuple

from repro.core.engine import Engine
from repro.core.event import StreamElement


class RunTiming(NamedTuple):
    """Result of one timed engine run."""

    events: int
    seconds: float
    matches: int

    @property
    def events_per_second(self) -> float:
        return self.events / self.seconds if self.seconds > 0 else float("inf")


def timed_run(engine: Engine, elements: List[StreamElement]) -> RunTiming:
    """Feed all elements and close, under a monotonic timer."""
    start = time.perf_counter()
    engine.feed_many(elements)
    engine.close()
    seconds = time.perf_counter() - start
    return RunTiming(len(elements), seconds, len(engine.results))


def repeat_timed(engine_factory, elements: List[StreamElement], repeats: int = 3) -> RunTiming:
    """Best-of-N timing with a fresh engine per repeat (reduces jitter)."""
    best: RunTiming = timed_run(engine_factory(), elements)
    for __ in range(max(0, repeats - 1)):
        candidate = timed_run(engine_factory(), elements)
        if candidate.seconds < best.seconds:
            best = candidate
    return best
