"""Measurement toolkit: latency, memory, throughput, quality, reporting."""

from repro.metrics.latency import (
    LatencySummary,
    arrival_latencies,
    occurrence_latencies,
    summarize_arrival_latency,
    summarize_occurrence_latency,
)
from repro.metrics.memory import StateProbe
from repro.metrics.quality import QualityReport, compare, compare_keys
from repro.metrics.reporter import (
    format_cell,
    print_series,
    print_table,
    render_histogram,
    render_series,
    render_table,
)
from repro.metrics.throughput import RunTiming, repeat_timed, timed_run

__all__ = [
    "LatencySummary",
    "QualityReport",
    "RunTiming",
    "StateProbe",
    "arrival_latencies",
    "compare",
    "compare_keys",
    "format_cell",
    "occurrence_latencies",
    "print_series",
    "print_table",
    "render_histogram",
    "render_series",
    "render_table",
    "repeat_timed",
    "summarize_arrival_latency",
    "summarize_occurrence_latency",
    "timed_run",
]
