"""Result-quality metrics: recall/precision against the oracle.

Experiment E1 (and every correctness assertion in the test suite)
reduces to comparing an engine's emitted result set with the offline
oracle's.  Matches compare by identity keys (pattern name + member
event ids), so set arithmetic is exact — no fuzzy matching.

Reports optionally carry a **shed** count — events the engine dropped
deliberately under overload (:class:`repro.core.shedding.ShedPolicy` or
the spill tier's disk bound).  Shedding trades recall for bounded
state, and a report that says "recall 0.92" without saying "because
4 000 events were shed" misattributes the loss to a correctness bug.
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple

from repro.core.pattern import Match


class QualityReport:
    """Recall / precision / F1 of a produced result set vs. ground truth."""

    __slots__ = (
        "truth_size", "produced_size", "missed", "spurious", "shed", "quarantined",
    )

    def __init__(
        self,
        truth: Set[Tuple],
        produced: Set[Tuple],
        shed: int = 0,
        quarantined: int = 0,
    ):
        self.truth_size = len(truth)
        self.produced_size = len(produced)
        self.missed = len(truth - produced)
        self.spurious = len(produced - truth)
        self.shed = shed
        self.quarantined = quarantined

    @property
    def recall(self) -> float:
        if self.truth_size == 0:
            return 1.0
        return (self.truth_size - self.missed) / self.truth_size

    @property
    def precision(self) -> float:
        if self.produced_size == 0:
            return 1.0 if self.truth_size == 0 else 0.0
        return (self.produced_size - self.spurious) / self.produced_size

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        if p + r == 0:
            return 0.0
        return 2 * p * r / (p + r)

    @property
    def exact(self) -> bool:
        """True when the produced set equals the truth set exactly."""
        return self.missed == 0 and self.spurious == 0

    @property
    def degraded(self) -> bool:
        """True when deliberate input loss may account for missing results.

        Covers both load shedding and admission quarantine: an event
        rejected at a gateway's schema check never reached the engine,
        so the matches it would have joined are missing for an
        *accounted* reason, not a correctness bug.  Gateway-side
        quarantine and engine-side ``ValidationPolicy.QUARANTINE``
        count here identically (the parity the ingestion tests pin).
        """
        return self.shed > 0 or self.quarantined > 0

    def __repr__(self) -> str:
        shed = f", shed={self.shed}" if self.shed else ""
        quarantined = f", quarantined={self.quarantined}" if self.quarantined else ""
        return (
            f"QualityReport(recall={self.recall:.3f}, precision={self.precision:.3f}, "
            f"missed={self.missed}, spurious={self.spurious}{shed}{quarantined})"
        )


def compare(
    truth: Iterable[Match],
    produced: Iterable[Match],
    shed: int = 0,
    quarantined: int = 0,
) -> QualityReport:
    """Build a report from two match collections (any iterables)."""
    truth_keys = {m.key() for m in truth}
    produced_keys = {m.key() for m in produced}
    return QualityReport(truth_keys, produced_keys, shed=shed, quarantined=quarantined)


def compare_keys(
    truth: Set[Tuple],
    produced: Set[Tuple],
    shed: int = 0,
    quarantined: int = 0,
) -> QualityReport:
    """Build a report from pre-extracted identity-key sets."""
    return QualityReport(set(truth), set(produced), shed=shed, quarantined=quarantined)
