"""Result-quality metrics: recall/precision against the oracle.

Experiment E1 (and every correctness assertion in the test suite)
reduces to comparing an engine's emitted result set with the offline
oracle's.  Matches compare by identity keys (pattern name + member
event ids), so set arithmetic is exact — no fuzzy matching.
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple

from repro.core.pattern import Match


class QualityReport:
    """Recall / precision / F1 of a produced result set vs. ground truth."""

    __slots__ = ("truth_size", "produced_size", "missed", "spurious")

    def __init__(self, truth: Set[Tuple], produced: Set[Tuple]):
        self.truth_size = len(truth)
        self.produced_size = len(produced)
        self.missed = len(truth - produced)
        self.spurious = len(produced - truth)

    @property
    def recall(self) -> float:
        if self.truth_size == 0:
            return 1.0
        return (self.truth_size - self.missed) / self.truth_size

    @property
    def precision(self) -> float:
        if self.produced_size == 0:
            return 1.0 if self.truth_size == 0 else 0.0
        return (self.produced_size - self.spurious) / self.produced_size

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        if p + r == 0:
            return 0.0
        return 2 * p * r / (p + r)

    @property
    def exact(self) -> bool:
        """True when the produced set equals the truth set exactly."""
        return self.missed == 0 and self.spurious == 0

    def __repr__(self) -> str:
        return (
            f"QualityReport(recall={self.recall:.3f}, precision={self.precision:.3f}, "
            f"missed={self.missed}, spurious={self.spurious})"
        )


def compare(truth: Iterable[Match], produced: Iterable[Match]) -> QualityReport:
    """Build a report from two match collections (any iterables)."""
    truth_keys = {m.key() for m in truth}
    produced_keys = {m.key() for m in produced}
    return QualityReport(truth_keys, produced_keys)


def compare_keys(truth: Set[Tuple], produced: Set[Tuple]) -> QualityReport:
    """Build a report from pre-extracted identity-key sets."""
    return QualityReport(set(truth), set(produced))
