"""State-size tracking: the memory axis of the experiments.

Engine memory in this reproduction is measured in *retained elements*
(stack instances + stored negatives + pending matches + reorder-buffer
entries), not process bytes: element counts are deterministic,
hardware-independent, and exactly what the paper's purge algorithms
control.  Engines track their own high-water mark
(``stats.peak_state_size``); :class:`StateProbe` adds full trajectories
for the plots that need shape, not just the peak.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.core.engine import Engine
from repro.core.event import StreamElement


class StateProbe:
    """Samples an engine's state size every *stride* fed elements."""

    def __init__(self, engine: Engine, stride: int = 100):
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.engine = engine
        self.stride = stride
        self.samples: List[Tuple[int, int]] = []  # (fed_count, state_size)
        self._fed = 0

    def feed_many(self, elements: Iterable[StreamElement]) -> None:
        """Feed elements through the engine, sampling along the way."""
        for element in elements:
            self.engine.feed(element)
            self._fed += 1
            if self._fed % self.stride == 0:
                self.samples.append((self._fed, self.engine.state_size()))

    def close(self) -> None:
        self.engine.close()
        self.samples.append((self._fed, self.engine.state_size()))

    @property
    def peak(self) -> int:
        """Largest sampled state size (engine stats may exceed between samples)."""
        return max((size for __, size in self.samples), default=0)

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(size for __, size in self.samples) / len(self.samples)

    def trajectory(self) -> List[Tuple[int, int]]:
        """(fed_count, state_size) samples in feed order."""
        return list(self.samples)
