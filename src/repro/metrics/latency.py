"""Result-latency measurement: how long correct answers take to appear.

Latency is the axis on which the paper's native out-of-order engine
beats buffer-and-sort, so it deserves careful definition.  For an
emitted match we measure two complementary delays:

* **arrival latency** — engine arrival index at emission minus the
  largest arrival index among the match's own positive events: "how
  many further events did the engine read before it told us?"  Zero
  means the match was reported the instant its last piece arrived.
* **occurrence latency** — stream clock at emission minus the match's
  final occurrence timestamp: the same delay on the occurrence-time
  axis, which is what an application's freshness SLA speaks about.

Both are derived after a run from the engine's emission log and the
arrival trace (no instrumentation inside the hot loop).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

from repro.core.engine import EmissionRecord
from repro.core.event import Event


class LatencySummary:
    """Percentile summary of a latency sample."""

    __slots__ = ("count", "mean", "p50", "p90", "p99", "max")

    def __init__(self, sample: Sequence[float]):
        values = sorted(sample)
        self.count = len(values)
        if not values:
            self.mean = self.p50 = self.p90 = self.p99 = self.max = 0.0
            return
        self.mean = sum(values) / len(values)
        self.p50 = _percentile(values, 0.50)
        self.p90 = _percentile(values, 0.90)
        self.p99 = _percentile(values, 0.99)
        self.max = float(values[-1])

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.max,
        }

    def __repr__(self) -> str:
        return (
            f"LatencySummary(n={self.count}, mean={self.mean:.2f}, p50={self.p50:.1f}, "
            f"p90={self.p90:.1f}, p99={self.p99:.1f}, max={self.max:.1f})"
        )


def percentile_index(count: int, q: float) -> int:
    """Rank of the q-quantile in a sorted sample of *count* values.

    The library-wide convention is ``ceil(q * n) - 1`` (clamped to the
    valid range): the smallest rank covering at least a fraction ``q``
    of the sample.  The floor rank ``int(q * n)`` overshoots by one on
    small samples — q=0.5 over two values would pick the max instead of
    the median — so every quantile consumer (here and
    :class:`repro.streams.kslack.QuantileK`) goes through this helper.
    """
    return min(count - 1, max(0, math.ceil(q * count) - 1))


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    return float(sorted_values[percentile_index(len(sorted_values), q)])


def arrival_latencies(
    emissions: Iterable[EmissionRecord],
    arrival: Sequence[Event],
) -> List[int]:
    """Per-match arrival latency given the fed arrival order.

    *arrival* must be the exact event sequence fed to the engine (the
    engine's arrival index is 1-based over it).
    """
    index_of: Dict[int, int] = {}
    for position, event in enumerate(arrival, start=1):
        index_of[event.eid] = position
    latencies: List[int] = []
    for record in emissions:
        member_arrivals = [
            index_of[event.eid]
            for event in record.match.events
            if event.eid in index_of
        ]
        if not member_arrivals:
            continue
        latencies.append(max(0, record.emitted_seq - max(member_arrivals)))
    return latencies


def occurrence_latencies(emissions: Iterable[EmissionRecord]) -> List[int]:
    """Per-match occurrence latency (emission clock minus match end ts)."""
    return [
        max(0, record.emitted_clock - record.match.end_ts) for record in emissions
    ]


def summarize_arrival_latency(
    emissions: Iterable[EmissionRecord], arrival: Sequence[Event]
) -> LatencySummary:
    """Convenience: :func:`arrival_latencies` → :class:`LatencySummary`."""
    return LatencySummary(arrival_latencies(emissions, arrival))


def summarize_occurrence_latency(emissions: Iterable[EmissionRecord]) -> LatencySummary:
    """Convenience: :func:`occurrence_latencies` → :class:`LatencySummary`."""
    return LatencySummary(occurrence_latencies(emissions))
