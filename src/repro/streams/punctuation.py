"""Punctuation injection: in-band progress assertions.

A punctuation ``<= t`` tells the engine no event with occurrence time
at or below *t* remains in flight, letting it purge and seal negation
beyond what the K promise alone allows.  Two injectors cover the usual
deployment shapes:

* :class:`PeriodicPunctuator` — a source that knows its own send buffer
  is flushed emits a punctuation every *period* events, lagging the
  max emitted timestamp by a *slack* it guarantees locally;
* :class:`HeartbeatPunctuator` — wall-clock-style heartbeats on the
  occurrence-time axis: whenever the stream's max timestamp advances by
  at least *interval*, assert ``<= max_ts - slack``.

Both are conservative: they never assert beyond what the configured
slack justifies, and the injected stream's event content is unchanged.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.core.errors import ConfigurationError
from repro.core.event import Event, Punctuation, StreamElement


class PeriodicPunctuator:
    """Insert a punctuation after every *period* events.

    The asserted timestamp is ``max_ts_so_far - slack - 1``; *slack*
    must dominate the residual disorder the source cannot rule out
    (zero for a source that is itself ordered).  The extra ``- 1``
    mirrors the engine-clock horizon convention: an event delayed by
    exactly *slack* — or a timestamp tie at slack zero — may still
    arrive, so only strictly older times are sealed.
    """

    def __init__(self, period: int, slack: int = 0):
        if period < 1:
            raise ConfigurationError(f"period must be >= 1, got {period}")
        if slack < 0:
            raise ConfigurationError(f"slack must be >= 0, got {slack}")
        self.period = period
        self.slack = slack

    def apply(self, events: Iterable[Event]) -> Iterator[StreamElement]:
        max_ts = -1
        count = 0
        last_asserted = -1
        for event in events:
            if event.ts > max_ts:
                max_ts = event.ts
            yield event
            count += 1
            if count % self.period == 0:
                asserted = max_ts - self.slack - 1
                if asserted > last_asserted and asserted >= 0:
                    last_asserted = asserted
                    yield Punctuation(asserted)


class HeartbeatPunctuator:
    """Punctuate whenever occurrence time advances by *interval*."""

    def __init__(self, interval: int, slack: int = 0):
        if interval < 1:
            raise ConfigurationError(f"interval must be >= 1, got {interval}")
        if slack < 0:
            raise ConfigurationError(f"slack must be >= 0, got {slack}")
        self.interval = interval
        self.slack = slack

    def apply(self, events: Iterable[Event]) -> Iterator[StreamElement]:
        max_ts = -1
        next_beat = self.interval
        last_asserted = -1
        for event in events:
            if event.ts > max_ts:
                max_ts = event.ts
            yield event
            if max_ts >= next_beat:
                asserted = max_ts - self.slack - 1
                if asserted > last_asserted and asserted >= 0:
                    last_asserted = asserted
                    yield Punctuation(asserted)
                while next_beat <= max_ts:
                    next_beat += self.interval


def strip_punctuation(elements: Iterable[StreamElement]) -> List[Event]:
    """Remove punctuations, keeping events in place (test helper)."""
    return [element for element in elements if isinstance(element, Event)]


def validate_punctuation(elements: Iterable[StreamElement]) -> bool:
    """True when no event contradicts a preceding punctuation."""
    asserted = -1
    for element in elements:
        if isinstance(element, Punctuation):
            asserted = max(asserted, element.ts)
        elif element.ts <= asserted:
            return False
    return True
