"""Punctuation injection: in-band progress assertions.

A punctuation ``<= t`` tells the engine no event with occurrence time
at or below *t* remains in flight, letting it purge and seal negation
beyond what the K promise alone allows.  Two injectors cover the usual
deployment shapes:

* :class:`PeriodicPunctuator` — a source that knows its own send buffer
  is flushed emits a punctuation every *period* events, lagging the
  max emitted timestamp by a *slack* it guarantees locally;
* :class:`HeartbeatPunctuator` — wall-clock-style heartbeats on the
  occurrence-time axis: whenever the stream's max timestamp advances by
  at least *interval*, assert ``<= max_ts - slack``.

Both are conservative: they never assert beyond what the configured
slack justifies, and the injected stream's event content is unchanged.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.core.errors import ConfigurationError
from repro.core.event import Event, Punctuation, StreamElement


class PeriodicPunctuator:
    """Insert a punctuation after every *period* events.

    The asserted timestamp is ``max_ts_so_far - slack - 1``; *slack*
    must dominate the residual disorder the source cannot rule out
    (zero for a source that is itself ordered).  The extra ``- 1``
    mirrors the engine-clock horizon convention: an event delayed by
    exactly *slack* — or a timestamp tie at slack zero — may still
    arrive, so only strictly older times are sealed.
    """

    def __init__(self, period: int, slack: int = 0):
        if period < 1:
            raise ConfigurationError(f"period must be >= 1, got {period}")
        if slack < 0:
            raise ConfigurationError(f"slack must be >= 0, got {slack}")
        self.period = period
        self.slack = slack

    def apply(self, events: Iterable[Event]) -> Iterator[StreamElement]:
        max_ts = -1
        count = 0
        last_asserted = -1
        for event in events:
            if event.ts > max_ts:
                max_ts = event.ts
            yield event
            count += 1
            if count % self.period == 0:
                asserted = max_ts - self.slack - 1
                if asserted > last_asserted and asserted >= 0:
                    last_asserted = asserted
                    yield Punctuation(asserted)


class HeartbeatPunctuator:
    """Punctuate whenever occurrence time advances by *interval*."""

    def __init__(self, interval: int, slack: int = 0):
        if interval < 1:
            raise ConfigurationError(f"interval must be >= 1, got {interval}")
        if slack < 0:
            raise ConfigurationError(f"slack must be >= 0, got {slack}")
        self.interval = interval
        self.slack = slack

    def apply(self, events: Iterable[Event]) -> Iterator[StreamElement]:
        max_ts = -1
        next_beat = self.interval
        last_asserted = -1
        for event in events:
            if event.ts > max_ts:
                max_ts = event.ts
            yield event
            if max_ts >= next_beat:
                asserted = max_ts - self.slack - 1
                if asserted > last_asserted and asserted >= 0:
                    last_asserted = asserted
                    yield Punctuation(asserted)
                while next_beat <= max_ts:
                    next_beat += self.interval


class SourceWatermarks:
    """Per-source high-water marks merged into one conservative assertion.

    A multi-source ingestion point cannot punctuate from the merged
    stream's max timestamp — one fast source would assert away another
    source's in-flight events.  The sound merge is per-source: each
    source maintains its own watermark (``max t_event - slack - 1``, the
    same ``- 1`` horizon convention as :class:`PeriodicPunctuator`, or
    an explicit assertion from the source), and the merged watermark is
    the **minimum over unfenced sources** — no source that may still
    send is ever overtaken.

    *Fencing* is the liveness escape hatch: a source marked fenced
    (degraded, disconnected) stops holding the minimum back, trading
    that source's late events — which the engine will count as late
    drops — for bounded sealing latency of everyone else's results.
    When every source is fenced the merge advances to the furthest
    known mark rather than stalling.

    The class is pure bookkeeping — no clock, no I/O — so the gateway's
    punctuation stream is a deterministic function of the observation
    sequence.  :meth:`advance` enforces monotonicity: merged output
    never regresses even when a reconnecting source reappears with a
    stale mark.
    """

    __slots__ = ("slack", "_marks", "_fenced", "_emitted")

    def __init__(self, slack: int = 0):
        if slack < 0:
            raise ConfigurationError(f"slack must be >= 0, got {slack}")
        self.slack = slack
        self._marks: dict = {}
        self._fenced: dict = {}  # source -> True; a dict for ordered, replayable iteration
        self._emitted = -1

    def observe(self, source: str, ts: int) -> None:
        """An event with occurrence time *ts* arrived from *source*.

        The first observation always registers the source — even at a
        negative mark — so a source still near the epoch participates
        in (and conservatively holds back) the merge from its very
        first frame; an unknown-vs-``-1`` conflation here would let the
        merge race past a slow starter and turn its early events into
        late drops.
        """
        mark = ts - self.slack - 1
        current = self._marks.get(source)
        if current is None or mark > current:
            self._marks[source] = mark

    def assert_watermark(self, source: str, ts: int) -> None:
        """The source itself asserts no future event ``<= ts``."""
        current = self._marks.get(source)
        if current is None or ts > current:
            self._marks[source] = ts

    def fence(self, source: str) -> None:
        """Stop *source* holding back the merge (degraded/disconnected)."""
        if source in self._marks or source in self._fenced:
            self._fenced[source] = True

    def unfence(self, source: str, floor: int = -1) -> None:
        """Re-admit *source* to the merge, lifting its mark to *floor*.

        *floor* is normally the last emitted merged watermark: a
        reconnecting source must not drag the minimum below assertions
        already delivered downstream (its own older events are late by
        definition — the engine's late policy accounts for them).

        A source unseen so far is *registered* at the floor: from the
        moment it (re)connects it counts in the merge, pinning the
        minimum until it speaks or the liveness tracker fences it — a
        connected-but-silent source is a bounded stall, not an ignored
        one.
        """
        self._fenced.pop(source, None)
        current = self._marks.get(source)
        if current is None or floor > current:
            self._marks[source] = floor

    def forget(self, source: str) -> None:
        """Drop *source* from the merge entirely."""
        self._marks.pop(source, None)
        self._fenced.pop(source, None)

    def mark(self, source: str) -> int:
        """The source's current watermark (-1 before any observation)."""
        return self._marks.get(source, -1)

    def is_fenced(self, source: str) -> bool:
        return source in self._fenced

    def merged(self) -> int:
        """The sound merged watermark at this instant (-1 when unknown)."""
        merged = None
        furthest = -1
        for source, mark in self._marks.items():
            if mark > furthest:
                furthest = mark
            if source in self._fenced:
                continue
            if merged is None or mark < merged:
                merged = mark
        if merged is not None:
            return merged
        return furthest

    @property
    def emitted(self) -> int:
        """The last merged watermark handed out by :meth:`advance`."""
        return self._emitted

    def advance(self) -> Optional[Punctuation]:
        """The punctuation to inject now, or None when nothing advanced."""
        merged = self.merged()
        if merged > self._emitted:
            self._emitted = merged
            if merged >= 0:
                return Punctuation(merged)
        return None

    def snapshot_state(self) -> dict:
        return {
            "marks": dict(self._marks),
            "fenced": sorted(self._fenced),
            "emitted": self._emitted,
        }

    def restore_state(self, state: dict) -> None:
        self._marks = dict(state["marks"])
        self._fenced = {source: True for source in state["fenced"]}
        self._emitted = state["emitted"]

    def __repr__(self) -> str:
        return (
            f"SourceWatermarks(sources={len(self._marks)}, "
            f"fenced={len(self._fenced)}, merged={self.merged()})"
        )


class EpochLedger:
    """Bookkeeping for punctuation-sealed epochs.

    The pipelined engine treats each punctuation broadcast as sealing
    one *epoch*: everything admitted since the previous broadcast.  The
    ledger records those seals — a monotone epoch counter plus a
    bounded tail of ``(epoch, asserted_ts)`` pairs — so diagnostics can
    answer "which timestamp sealed epoch *e*" and "how far behind is
    the merger" without the engine threading timestamps everywhere.

    Pure bookkeeping: no clock, no I/O.  :meth:`seal` enforces the
    monotonicity punctuation semantics already guarantee (asserted
    timestamps never regress across broadcasts).
    """

    __slots__ = ("capacity", "_count", "_last_ts", "_recent")

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._count = 0
        self._last_ts = -1
        self._recent: List[tuple] = []

    def seal(self, ts: int) -> int:
        """Record a seal at asserted time *ts*; returns the epoch sealed."""
        if ts < self._last_ts:
            raise ConfigurationError(
                f"epoch seal regressed: {ts} after {self._last_ts}"
            )
        epoch = self._count
        self._count += 1
        self._last_ts = ts
        self._recent.append((epoch, ts))
        if len(self._recent) > self.capacity:
            del self._recent[: len(self._recent) - self.capacity]
        return epoch

    @property
    def count(self) -> int:
        """Epochs sealed so far (the next seal gets this number)."""
        return self._count

    @property
    def last_ts(self) -> int:
        """Asserted timestamp of the most recent seal (-1 before any)."""
        return self._last_ts

    def recent(self) -> List[tuple]:
        """The tail of ``(epoch, asserted_ts)`` seals, oldest first."""
        return list(self._recent)

    def ts_of(self, epoch: int) -> Optional[int]:
        """Asserted timestamp of *epoch*, if still in the tail."""
        for sealed, ts in reversed(self._recent):
            if sealed == epoch:
                return ts
            if sealed < epoch:
                break
        return None

    def snapshot_state(self) -> dict:
        return {
            "count": self._count,
            "last_ts": self._last_ts,
            "recent": [list(pair) for pair in self._recent],
        }

    def restore_state(self, state: dict) -> None:
        self._count = state["count"]
        self._last_ts = state["last_ts"]
        self._recent = [tuple(pair) for pair in state["recent"]]

    def __repr__(self) -> str:
        return f"EpochLedger(count={self._count}, last_ts={self._last_ts})"


def strip_punctuation(elements: Iterable[StreamElement]) -> List[Event]:
    """Remove punctuations, keeping events in place (test helper)."""
    return [element for element in elements if isinstance(element, Event)]


def validate_punctuation(elements: Iterable[StreamElement]) -> bool:
    """True when no event contradicts a preceding punctuation."""
    asserted = -1
    for element in elements:
        if isinstance(element, Punctuation):
            asserted = max(asserted, element.ts)
        elif element.ts <= asserted:
            return False
    return True
