"""Stream merging: combining multiple arrival streams into one.

A CEP engine typically consumes the union of many source streams.  Two
merge disciplines matter here:

* :func:`interleave_by_arrival` — the physical merge: streams arrive
  over independent paths and the engine sees whatever order the
  transport produced.  Disorder of the merge can exceed the disorder
  of every input (a perfectly ordered slow stream still arrives late
  relative to a fast one) — the reason multi-source deployments need
  out-of-order processing even with reliable, ordered links.
* :class:`OrderedMerge` — the streaming sort-merge used when each
  input is *individually* ordered: it releases the globally smallest
  timestamp among the input heads.  This is the component a
  buffer-and-sort architecture would use at ingestion, and it blocks
  whenever any input is idle — the "output blocking" failure mode the
  paper describes (quantified via :attr:`OrderedMerge.blocked_pulls`).
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.core.errors import ConfigurationError
from repro.core.event import Event


def interleave_by_arrival(
    streams: Sequence[Sequence[Event]],
    seed: int = 0,
    burstiness: int = 1,
) -> List[Event]:
    """Randomly interleave arrival streams, preserving each stream's order.

    With *burstiness* > 1, each scheduling decision drains up to that
    many consecutive events from the chosen stream, modelling batched
    transport (e.g. TCP segments).  Deterministic under *seed*.
    """
    if burstiness < 1:
        raise ConfigurationError(f"burstiness must be >= 1, got {burstiness}")
    rng = random.Random(seed)
    iterators: List[Iterator[Event]] = [iter(s) for s in streams]
    heads: List[Optional[Event]] = []
    for iterator in iterators:
        heads.append(next(iterator, None))
    merged: List[Event] = []
    live = [i for i, head in enumerate(heads) if head is not None]
    while live:
        choice = rng.choice(live)
        for __ in range(rng.randint(1, burstiness)):
            head = heads[choice]
            if head is None:
                break
            merged.append(head)
            heads[choice] = next(iterators[choice], None)
        if heads[choice] is None:
            live.remove(choice)
    return merged


class OrderedMerge:
    """Streaming sort-merge over individually ordered inputs.

    Pull-based: :meth:`push` adds an event from input *i*;
    :meth:`ready` yields events that are safe to release (every input
    has either advanced past them or been closed).  Counts
    :attr:`blocked_pulls` — releases that had to wait on an idle input.
    """

    def __init__(self, inputs: int):
        if inputs < 1:
            raise ConfigurationError(f"inputs must be >= 1, got {inputs}")
        self.inputs = inputs
        self._heads: List[List[Event]] = [[] for _ in range(inputs)]
        self._closed = [False] * inputs
        self._last_ts = [-1] * inputs
        self._counter = itertools.count()
        self.blocked_pulls = 0

    def push(self, input_index: int, event: Event) -> List[Event]:
        """Add *event* from input *input_index*; returns releasable events."""
        if not 0 <= input_index < self.inputs:
            raise ConfigurationError(f"no such input {input_index}")
        if self._closed[input_index]:
            raise ConfigurationError(f"input {input_index} is closed")
        if event.ts < self._last_ts[input_index]:
            raise ConfigurationError(
                f"input {input_index} is not ordered: {event!r} after ts="
                f"{self._last_ts[input_index]}"
            )
        self._last_ts[input_index] = event.ts
        self._heads[input_index].append(event)
        return self._release()

    def close_input(self, input_index: int) -> List[Event]:
        """Mark input exhausted; may unblock buffered events."""
        self._closed[input_index] = True
        return self._release()

    def _frontier(self) -> Optional[int]:
        """Min over open inputs of the last seen ts (None = all closed)."""
        frontier: Optional[int] = None
        for index in range(self.inputs):
            if self._closed[index]:
                continue
            bound = self._last_ts[index]
            if frontier is None or bound < frontier:
                frontier = bound
        return frontier

    def _release(self) -> List[Event]:
        frontier = self._frontier()
        released: List[Event] = []
        heap = []
        for index, buffered in enumerate(self._heads):
            for event in buffered:
                heap.append((event.ts, event.eid, index, event))
        heap.sort()
        keep: List[List[Event]] = [[] for _ in range(self.inputs)]
        for ts, __, index, event in heap:
            if frontier is None or ts <= frontier:
                released.append(event)
            else:
                keep[index].append(event)
                self.blocked_pulls += 1
        self._heads = keep
        return released

    def pending(self) -> int:
        """Events buffered awaiting slower inputs."""
        return sum(len(buffered) for buffered in self._heads)


def merge_ordered_streams(streams: Sequence[Iterable[Event]]) -> List[Event]:
    """Offline k-way merge of ordered streams into one ordered list."""
    decorated = []
    for stream in streams:
        decorated.append(((e.ts, e.eid, e) for e in stream))
    return [entry[2] for entry in heapq.merge(*decorated)]
