"""Stream substrate: sources, disorder models, merging, K estimation."""

from repro.streams.disorder import (
    BurstDropoutModel,
    DelayModel,
    DisorderStats,
    NoDisorder,
    RandomDelayModel,
    SwapModel,
    measure_disorder,
    required_k,
)
from repro.streams.controller import AdaptiveKController, ControllerDecision
from repro.streams.kslack import (
    AdaptiveEngineFeeder,
    FixedK,
    KEstimator,
    MaxObservedK,
    QuantileK,
)
from repro.streams.merge import OrderedMerge, interleave_by_arrival, merge_ordered_streams
from repro.streams.punctuation import (
    EpochLedger,
    HeartbeatPunctuator,
    PeriodicPunctuator,
    strip_punctuation,
    validate_punctuation,
)
from repro.streams.replay import dump_trace, load_trace, roundtrip_equal
from repro.streams.spill import SpillingReorderBuffer
from repro.streams.source import (
    EventSource,
    PoissonSource,
    ScriptedSource,
    SyntheticSource,
)

__all__ = [
    "AdaptiveEngineFeeder",
    "AdaptiveKController",
    "BurstDropoutModel",
    "ControllerDecision",
    "DelayModel",
    "DisorderStats",
    "EpochLedger",
    "EventSource",
    "FixedK",
    "HeartbeatPunctuator",
    "KEstimator",
    "MaxObservedK",
    "NoDisorder",
    "OrderedMerge",
    "PeriodicPunctuator",
    "PoissonSource",
    "QuantileK",
    "RandomDelayModel",
    "ScriptedSource",
    "SpillingReorderBuffer",
    "SwapModel",
    "SyntheticSource",
    "dump_trace",
    "interleave_by_arrival",
    "load_trace",
    "measure_disorder",
    "merge_ordered_streams",
    "required_k",
    "roundtrip_equal",
    "strip_punctuation",
    "validate_punctuation",
]
