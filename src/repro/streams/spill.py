"""Bounded-memory reorder buffering with disk spill.

The buffer-and-sort architecture (and, under failure-recovery bursts,
any K-slack component) can face *spiky* buffering demand: a long
outage upstream means thousands of events become releasable at once,
and until the clock advances they must all be held.  The follow-up
literature (Liu et al., ICDE 2009) adds persistent-storage support for
exactly this; :class:`SpillingReorderBuffer` is that component.

Design: an in-memory min-heap (by occurrence time) holds up to
``memory_limit`` events; overflow is appended to *runs* — JSON-lines
segment files, each written in one burst and therefore re-sortable on
load.  Releasing up to a horizon merges the heap with the spilled runs
lazily: a run is only read back when the horizon reaches its minimum
timestamp.  All spill files live in a caller-supplied directory (or a
``TemporaryDirectory`` owned by the buffer) and are deleted as they are
consumed.

The buffer preserves the reorder contract exactly: ``release(horizon)``
returns every held event with ``ts <= horizon`` in (ts, eid) order,
regardless of which side of the memory boundary it sat on — pinned by
tests against the plain in-memory buffer.
"""

from __future__ import annotations

# repro: ignore-file[R002] -- spilling IS disk I/O: this buffer trades
# hot-path purity for bounded memory by design; replay determinism is
# preserved because runs are re-read in (ts, eid) order.

import heapq
import json
import tempfile
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.core.errors import ConfigurationError
from repro.core.event import Event, admission_error, malformed_reason


class _Run:
    """One spilled segment: events on disk, sorted at load time."""

    __slots__ = ("path", "min_ts", "count")

    def __init__(self, path: Path, min_ts: int, count: int):
        self.path = path
        self.min_ts = min_ts
        self.count = count

    def peek(self) -> List[Event]:
        """Read the segment's events without consuming the file.

        Used by checkpointing: a snapshot must capture spilled state
        without disturbing the live buffer.
        """
        events = []
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                events.append(
                    Event(
                        record["etype"],
                        record["ts"],
                        record.get("attrs") or {},
                        eid=record["eid"],
                    )
                )
        return events

    def load(self) -> List[Event]:
        events = self.peek()
        self.path.unlink()
        return events


class SpillingReorderBuffer:
    """K-slack reorder buffer that spills overflow to disk segments.

    Parameters
    ----------
    memory_limit:
        Maximum events held in memory; pushes beyond it spill.
    spill_batch:
        Events written per spill segment (one file per batch).
    directory:
        Where segments go; a private temporary directory when omitted.
    max_disk_events:
        Optional disk bound: when spilled segments exceed this many
        events, the oldest segments are shed (drop-oldest) and counted
        in :attr:`shed_events` — bounded degradation instead of filling
        the disk during a runaway burst.

    The buffer is a context manager: ``with SpillingReorderBuffer(...)
    as buf: ...`` guarantees :meth:`close` runs — spill segments and the
    owned temporary directory are reclaimed even when the body raises
    mid-stream.
    """

    def __init__(
        self,
        memory_limit: int = 10_000,
        spill_batch: int = 1_000,
        directory: Optional[Union[str, Path]] = None,
        max_disk_events: Optional[int] = None,
    ):
        if memory_limit < 1:
            raise ConfigurationError(f"memory_limit must be >= 1, got {memory_limit}")
        if spill_batch < 1:
            raise ConfigurationError(f"spill_batch must be >= 1, got {spill_batch}")
        if max_disk_events is not None and max_disk_events < 1:
            raise ConfigurationError(
                f"max_disk_events must be >= 1 or None, got {max_disk_events}"
            )
        self.memory_limit = memory_limit
        self.spill_batch = spill_batch
        self.max_disk_events = max_disk_events
        if directory is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-spill-")
            self.directory = Path(self._tmpdir.name)
        else:
            self._tmpdir = None
            self.directory = Path(directory)
            self.directory.mkdir(parents=True, exist_ok=True)
        self._heap: List[Tuple[int, int, Event]] = []
        self._pending_spill: List[Event] = []
        self._runs: List[_Run] = []
        # Run numbering keeps naming unique within *this process's* spill
        # directory; restoring it from a snapshot would collide with run
        # files the post-restore instance already wrote.
        self._run_counter = 0  # repro: ignore[R001] -- file-naming counter, must stay process-local
        # Lifecycle latch: a restored buffer is by definition open again.
        self._closed = False  # repro: ignore[R001] -- lifecycle latch, not replayable state
        self.spilled_events = 0
        self.spill_segments = 0
        self.shed_events = 0

    # -- lifecycle ----------------------------------------------------------------

    def __enter__(self) -> "SpillingReorderBuffer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- sizes --------------------------------------------------------------------

    def memory_size(self) -> int:
        """Events currently held in memory (heap + unsealed spill batch)."""
        return len(self._heap) + len(self._pending_spill)

    def disk_size(self) -> int:
        """Events currently spilled to disk."""
        return sum(run.count for run in self._runs)

    def __len__(self) -> int:
        return self.memory_size() + self.disk_size()

    def metrics(self) -> dict:
        """Point-in-time tier sizes and lifetime counters, for exporters.

        Keys mirror the observability layer's metric names (gauge-style
        sizes plus monotone totals) so the bundle can poll one dict
        instead of five attributes.
        """
        return {
            "memory_events": self.memory_size(),
            "disk_events": self.disk_size(),
            "segments": len(self._runs),
            "spilled_total": self.spilled_events,
            "shed_total": self.shed_events,
        }

    # -- operations -----------------------------------------------------------------

    def push(self, event: Event) -> None:
        """Add an event to the buffer, spilling if memory is full.

        Malformed events (NaN/float/negative timestamps — possible when
        the caller deserialises from the network) are rejected with
        :class:`~repro.core.errors.StreamError`: a NaN timestamp would
        silently corrupt the heap order the release contract rests on.
        """
        if malformed_reason(event) is not None:
            raise admission_error(event)
        if len(self._heap) < self.memory_limit:
            heapq.heappush(self._heap, (event.ts, event.eid, event))
            return
        # Memory full: displace into the pending spill batch.  Spill the
        # *youngest* events (heap events older than the newcomer stay in
        # memory — they release soonest), so compare against the heap max
        # cheaply by just spilling the incoming event; still correct, and
        # avoids O(n) max tracking.
        self._pending_spill.append(event)
        if len(self._pending_spill) >= self.spill_batch:
            self._flush_spill()

    def _flush_spill(self) -> None:
        if not self._pending_spill:
            return
        run = self._write_run(self._pending_spill)
        self._runs.append(run)
        self.spilled_events += run.count
        self.spill_segments += 1
        self._pending_spill.clear()
        if self.max_disk_events is not None:
            self._shed_disk_overflow()

    def _write_run(self, events: List[Event]) -> _Run:
        self._run_counter += 1
        path = self.directory / f"run-{self._run_counter:06d}.jsonl"
        with path.open("w", encoding="utf-8") as handle:
            for event in events:
                handle.write(
                    json.dumps(
                        {
                            "etype": event.etype,
                            "ts": event.ts,
                            "eid": event.eid,
                            "attrs": event.attrs,
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
        return _Run(path, min(event.ts for event in events), len(events))

    def _shed_disk_overflow(self) -> None:
        """Drop the oldest spilled segments until the disk bound holds.

        Oldest-first keeps the shed deterministic and sacrifices the
        events closest to release — the same drop-oldest rationale as
        engine-state shedding (``repro.core.shedding``).  Casualties
        accumulate in :attr:`shed_events`.
        """
        while self._runs and self.disk_size() > self.max_disk_events:
            oldest = min(self._runs, key=lambda run: run.min_ts)
            self._runs.remove(oldest)
            try:
                oldest.path.unlink()
            except FileNotFoundError:
                pass
            self.shed_events += oldest.count

    def release(self, horizon: int) -> List[Event]:
        """Every held event with ``ts <= horizon``, in (ts, eid) order."""
        self._reload_ripe_runs(horizon)
        released: List[Event] = []
        # Pending (unflushed) spill batch may also contain ripe events.
        if self._pending_spill and any(e.ts <= horizon for e in self._pending_spill):
            keep = []
            for event in self._pending_spill:
                if event.ts <= horizon:
                    heapq.heappush(self._heap, (event.ts, event.eid, event))
                else:
                    keep.append(event)
            self._pending_spill = keep
        while self._heap and self._heap[0][0] <= horizon:
            released.append(heapq.heappop(self._heap)[2])
        return released

    def _reload_ripe_runs(self, horizon: int) -> None:
        ripe = [run for run in self._runs if run.min_ts <= horizon]
        if not ripe:
            return
        self._runs = [run for run in self._runs if run.min_ts > horizon]
        for run in ripe:
            for event in run.load():
                heapq.heappush(self._heap, (event.ts, event.eid, event))

    def drain(self) -> List[Event]:
        """All held events in (ts, eid) order; empties the buffer."""
        self._flush_spill()
        self._reload_ripe_runs(horizon=2**62)
        drained = []
        while self._heap:
            drained.append(heapq.heappop(self._heap)[2])
        return drained

    # -- checkpoint / restore --------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Capture the full buffer state (both tiers) for checkpointing.

        Spilled segments are read back with :meth:`_Run.peek` — the live
        files are untouched, so snapshotting never perturbs the buffer.
        """
        return {
            "memory": [entry[2] for entry in self._heap],
            "pending": list(self._pending_spill),
            "runs": [run.peek() for run in self._runs],
            "spilled_events": self.spilled_events,
            "spill_segments": self.spill_segments,
            "shed_events": self.shed_events,
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild buffer state from :meth:`snapshot_state` output.

        Spilled segments are rewritten as fresh run files in *this*
        buffer's directory — a restore never depends on the crashed
        process's temporary files still existing.
        """
        self._heap = [(e.ts, e.eid, e) for e in state["memory"]]
        heapq.heapify(self._heap)
        self._pending_spill = list(state["pending"])
        for run in self._runs:
            try:
                run.path.unlink()
            except FileNotFoundError:
                pass
        self._runs = [self._write_run(events) for events in state["runs"] if events]
        self.spilled_events = state["spilled_events"]
        self.spill_segments = state["spill_segments"]
        self.shed_events = state["shed_events"]

    def close(self) -> None:
        """Delete any remaining spill segments.  Safe to call twice."""
        if self._closed:
            return
        self._closed = True
        for run in self._runs:
            try:
                run.path.unlink()
            except FileNotFoundError:
                pass
        self._runs.clear()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
