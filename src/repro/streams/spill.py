"""Bounded-memory reorder buffering with disk spill.

The buffer-and-sort architecture (and, under failure-recovery bursts,
any K-slack component) can face *spiky* buffering demand: a long
outage upstream means thousands of events become releasable at once,
and until the clock advances they must all be held.  The follow-up
literature (Liu et al., ICDE 2009) adds persistent-storage support for
exactly this; :class:`SpillingReorderBuffer` is that component.

Design: an in-memory min-heap (by occurrence time) holds up to
``memory_limit`` events; overflow is appended to *runs* — JSON-lines
segment files, each written in one burst and therefore re-sortable on
load.  Releasing up to a horizon merges the heap with the spilled runs
lazily: a run is only read back when the horizon reaches its minimum
timestamp.  All spill files live in a caller-supplied directory (or a
``TemporaryDirectory`` owned by the buffer) and are deleted as they are
consumed.

The buffer preserves the reorder contract exactly: ``release(horizon)``
returns every held event with ``ts <= horizon`` in (ts, eid) order,
regardless of which side of the memory boundary it sat on — pinned by
tests against the plain in-memory buffer.
"""

from __future__ import annotations

import heapq
import json
import tempfile
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.core.errors import ConfigurationError
from repro.core.event import Event


class _Run:
    """One spilled segment: events on disk, sorted at load time."""

    __slots__ = ("path", "min_ts", "count")

    def __init__(self, path: Path, min_ts: int, count: int):
        self.path = path
        self.min_ts = min_ts
        self.count = count

    def load(self) -> List[Event]:
        events = []
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                events.append(
                    Event(
                        record["etype"],
                        record["ts"],
                        record.get("attrs") or {},
                        eid=record["eid"],
                    )
                )
        self.path.unlink()
        return events


class SpillingReorderBuffer:
    """K-slack reorder buffer that spills overflow to disk segments.

    Parameters
    ----------
    memory_limit:
        Maximum events held in memory; pushes beyond it spill.
    spill_batch:
        Events written per spill segment (one file per batch).
    directory:
        Where segments go; a private temporary directory when omitted.
    """

    def __init__(
        self,
        memory_limit: int = 10_000,
        spill_batch: int = 1_000,
        directory: Optional[Union[str, Path]] = None,
    ):
        if memory_limit < 1:
            raise ConfigurationError(f"memory_limit must be >= 1, got {memory_limit}")
        if spill_batch < 1:
            raise ConfigurationError(f"spill_batch must be >= 1, got {spill_batch}")
        self.memory_limit = memory_limit
        self.spill_batch = spill_batch
        if directory is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-spill-")
            self.directory = Path(self._tmpdir.name)
        else:
            self._tmpdir = None
            self.directory = Path(directory)
            self.directory.mkdir(parents=True, exist_ok=True)
        self._heap: List[Tuple[int, int, Event]] = []
        self._pending_spill: List[Event] = []
        self._runs: List[_Run] = []
        self._run_counter = 0
        self.spilled_events = 0
        self.spill_segments = 0

    # -- sizes --------------------------------------------------------------------

    def memory_size(self) -> int:
        """Events currently held in memory (heap + unsealed spill batch)."""
        return len(self._heap) + len(self._pending_spill)

    def disk_size(self) -> int:
        """Events currently spilled to disk."""
        return sum(run.count for run in self._runs)

    def __len__(self) -> int:
        return self.memory_size() + self.disk_size()

    # -- operations -----------------------------------------------------------------

    def push(self, event: Event) -> None:
        """Add an event to the buffer, spilling if memory is full."""
        if len(self._heap) < self.memory_limit:
            heapq.heappush(self._heap, (event.ts, event.eid, event))
            return
        # Memory full: displace into the pending spill batch.  Spill the
        # *youngest* events (heap events older than the newcomer stay in
        # memory — they release soonest), so compare against the heap max
        # cheaply by just spilling the incoming event; still correct, and
        # avoids O(n) max tracking.
        self._pending_spill.append(event)
        if len(self._pending_spill) >= self.spill_batch:
            self._flush_spill()

    def _flush_spill(self) -> None:
        if not self._pending_spill:
            return
        self._run_counter += 1
        path = self.directory / f"run-{self._run_counter:06d}.jsonl"
        min_ts = min(event.ts for event in self._pending_spill)
        with path.open("w", encoding="utf-8") as handle:
            for event in self._pending_spill:
                handle.write(
                    json.dumps(
                        {
                            "etype": event.etype,
                            "ts": event.ts,
                            "eid": event.eid,
                            "attrs": event.attrs,
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
        self._runs.append(_Run(path, min_ts, len(self._pending_spill)))
        self.spilled_events += len(self._pending_spill)
        self.spill_segments += 1
        self._pending_spill.clear()

    def release(self, horizon: int) -> List[Event]:
        """Every held event with ``ts <= horizon``, in (ts, eid) order."""
        self._reload_ripe_runs(horizon)
        released: List[Event] = []
        # Pending (unflushed) spill batch may also contain ripe events.
        if self._pending_spill and any(e.ts <= horizon for e in self._pending_spill):
            keep = []
            for event in self._pending_spill:
                if event.ts <= horizon:
                    heapq.heappush(self._heap, (event.ts, event.eid, event))
                else:
                    keep.append(event)
            self._pending_spill = keep
        while self._heap and self._heap[0][0] <= horizon:
            released.append(heapq.heappop(self._heap)[2])
        return released

    def _reload_ripe_runs(self, horizon: int) -> None:
        ripe = [run for run in self._runs if run.min_ts <= horizon]
        if not ripe:
            return
        self._runs = [run for run in self._runs if run.min_ts > horizon]
        for run in ripe:
            for event in run.load():
                heapq.heappush(self._heap, (event.ts, event.eid, event))

    def drain(self) -> List[Event]:
        """All held events in (ts, eid) order; empties the buffer."""
        self._flush_spill()
        self._reload_ripe_runs(horizon=2**62)
        drained = []
        while self._heap:
            drained.append(heapq.heappop(self._heap)[2])
        return drained

    def close(self) -> None:
        """Delete any remaining spill segments."""
        for run in self._runs:
            try:
                run.path.unlink()
            except FileNotFoundError:
                pass
        self._runs.clear()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
