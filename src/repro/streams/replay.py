"""Trace record / replay: persistent, portable arrival traces.

Benchmarks and regression tests need the *same arrival sequence* across
runs and machines.  A trace file is a JSON-lines document: one header
line, then one line per stream element, preserving arrival order,
event identity (eid), occurrence timestamps and attributes — everything
result-set comparison depends on.

The format is deliberately boring (sorted-key JSON, no floats in
identity fields) so traces can be diffed and committed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.core.errors import StreamError
from repro.core.event import Event, Punctuation, StreamElement

_FORMAT = "repro-trace-v1"


def dump_trace(elements: Iterable[StreamElement], path: Union[str, Path]) -> int:
    """Write elements to *path*; returns the element count."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps({"format": _FORMAT}) + "\n")
        for element in elements:
            handle.write(json.dumps(_encode(element), sort_keys=True) + "\n")
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> List[StreamElement]:
    """Read a trace written by :func:`dump_trace`."""
    path = Path(path)
    elements: List[StreamElement] = []
    with path.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise StreamError(f"{path}: not a trace file ({exc})") from None
        if header.get("format") != _FORMAT:
            raise StreamError(
                f"{path}: unsupported trace format {header.get('format')!r}"
            )
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise StreamError(f"{path}:{line_number}: bad JSON ({exc})") from None
            elements.append(_decode(record, path, line_number))
    return elements


def _encode(element: StreamElement) -> dict:
    if isinstance(element, Punctuation):
        return {"kind": "punctuation", "ts": element.ts}
    if isinstance(element, Event):
        return {
            "kind": "event",
            "etype": element.etype,
            "ts": element.ts,
            "eid": element.eid,
            "attrs": element.attrs,
        }
    raise StreamError(f"cannot encode {element!r}")


def _decode(record: dict, path: Path, line_number: int) -> StreamElement:
    kind = record.get("kind")
    if kind == "punctuation":
        return Punctuation(record["ts"])
    if kind == "event":
        try:
            return Event(
                record["etype"],
                record["ts"],
                record.get("attrs") or {},
                eid=record["eid"],
            )
        except (KeyError, StreamError) as exc:
            raise StreamError(f"{path}:{line_number}: bad event record ({exc})") from None
    raise StreamError(f"{path}:{line_number}: unknown record kind {kind!r}")


def roundtrip_equal(elements: List[StreamElement], path: Union[str, Path]) -> bool:
    """dump + load and compare; True when identity is fully preserved."""
    dump_trace(elements, path)
    loaded = load_trace(path)
    if len(loaded) != len(elements):
        return False
    for original, restored in zip(elements, loaded):
        if type(original) is not type(restored):
            return False
        if isinstance(original, Event):
            if (
                original.key() != restored.key()
                or original.attrs != restored.attrs
            ):
                return False
        elif original != restored:
            return False
    return True
