"""Quality-driven adaptive-K: repeated re-freeze at punctuation boundaries.

:class:`~repro.streams.kslack.AdaptiveEngineFeeder` adapts K the honest
way exactly once — train, freeze, run — because the purge proofs forbid
the bound from shrinking mid-run.  This module generalises that freeze
protocol to *repeated* re-freeze points (Ji et al., "Quality-Driven
Disorder Handling", PAPERS.md): every punctuation closes an **epoch**,
and at the boundary the controller may pick a new K and flip the
optimistic/pessimistic choice for the next epoch.  Soundness is
preserved by :meth:`repro.core.clock.StreamClock.refreeze`, which folds
the pre-change horizon into the punctuated floor so the horizon stays
monotone — mid-epoch, K never changes at all.

The decision inputs are the engine's own quality signals:

* a delay-quantile estimator (:class:`~repro.streams.kslack.QuantileK`)
  fed every arrival, targeting the configured *quality_target* fraction
  of events admitted in time;
* the late-drop rate of the closing epoch — when it exceeds the
  ``1 - quality_target`` allowance, the bound never shrinks (and grows
  to the estimator's recommendation);
* the retraction rate of the closing epoch — speculation is switched
  off when it exceeds *retraction_budget* and back on once it falls to
  half the budget (hysteresis, so a single borderline epoch does not
  flap the mode).

Shrinking is damped (at most halving per epoch) so one calm epoch in a
bursty stream cannot collapse the bound; growing is immediate, because
under-provisioned K converts directly into late-drops.  The controller
is deterministic state: it snapshots/restores with the engine and every
decision is recorded in :attr:`AdaptiveKController.history`.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.core.errors import ConfigurationError
from repro.core.event import Event
from repro.streams.kslack import QuantileK

#: Decision-history bound: enough to reconstruct any plausible run's
#: trajectory while keeping snapshots O(1) in stream length.
HISTORY_LIMIT = 256


class ControllerDecision(NamedTuple):
    """One re-freeze outcome, recorded at a punctuation boundary."""

    at_ts: int  #: punctuation timestamp that closed the epoch
    k: int  #: the bound frozen for the next epoch
    speculate: bool  #: optimistic (True) or pessimistic next epoch
    reason: str  #: "grow" | "decay" | "hold" | "quality-floor"


class AdaptiveKController:
    """Per-engine (or per-partition) quality-driven disorder-bound policy.

    Pass one instance to the engine; it is cloned at attachment (and
    per partition by :class:`~repro.core.partition.PartitionedEngine`),
    so a single configured controller can parameterise a whole engine
    tree without sharing mutable state.

    Parameters
    ----------
    quality_target:
        Fraction of events that must arrive within the bound; drives
        both the delay quantile the estimator tracks and the late-drop
        allowance of the shrink guard.
    window:
        Sliding sample window of the delay estimator.
    margin:
        Additive safety margin on the quantile estimate (ts units).
    initial_k:
        Cold-start floor for the recommendation (see
        ``QuantileK(initial=...)``) — prevents the first re-freeze from
        locking in K=0 before the estimator has seen real disorder.
    min_k / max_k:
        Hard clamp on every recommendation (``max_k=None`` = unbounded).
    retraction_budget:
        Highest tolerable fraction of speculative emissions withdrawn
        per epoch before the controller falls back to pessimistic mode.
    min_epoch_events:
        Epochs with fewer processed events than this do not trigger a
        decision (the epoch simply extends to the next punctuation) —
        a near-empty epoch has no statistics worth acting on.
    """

    def __init__(
        self,
        quality_target: float = 0.99,
        window: int = 1024,
        margin: int = 1,
        initial_k: int = 0,
        min_k: int = 0,
        max_k: Optional[int] = None,
        retraction_budget: float = 0.1,
        min_epoch_events: int = 32,
    ) -> None:
        if min_k < 0:
            raise ConfigurationError(f"min_k must be >= 0, got {min_k}")
        if max_k is not None and max_k < min_k:
            raise ConfigurationError(
                f"max_k must be >= min_k, got max_k={max_k} min_k={min_k}"
            )
        if not 0.0 <= retraction_budget <= 1.0:
            raise ConfigurationError(
                f"retraction_budget must be in [0, 1], got {retraction_budget}"
            )
        if min_epoch_events < 1:
            raise ConfigurationError(
                f"min_epoch_events must be >= 1, got {min_epoch_events}"
            )
        # QuantileK validates quality_target/window/margin/initial_k.
        self.estimator = QuantileK(
            quantile=quality_target,
            window=window,
            margin=margin,
            initial=max(initial_k, min_k),
        )
        self.quality_target = quality_target
        self.initial_k = initial_k
        self.min_k = min_k
        self.max_k = max_k
        self.retraction_budget = retraction_budget
        self.min_epoch_events = min_epoch_events
        self.speculate = True
        self.history: List[ControllerDecision] = []
        self.adjustments = 0
        # Counter baselines at the last decision; epoch deltas are
        # computed against these, and a skipped (too-small) epoch leaves
        # them untouched so it merges into the next one.
        self._base_events = 0
        self._base_late = 0
        self._base_speculated = 0
        self._base_retracted = 0

    # -- signal intake -----------------------------------------------------------

    def observe(self, event: Event) -> None:
        """Feed one arrival (called by the engine before lateness triage,
        so the estimator sees delays the current bound would drop —
        otherwise K could never grow out of an under-provisioned start).
        """
        self.estimator.observe(event)

    def recommended_k(self) -> int:
        """The estimator's current recommendation, clamped to [min_k, max_k]."""
        k = max(self.min_k, self.estimator.current())
        if self.max_k is not None and k > self.max_k:
            k = self.max_k
        return k

    # -- the re-freeze point ------------------------------------------------------

    def refreeze(self, at_ts, current_k, stats) -> Optional[ControllerDecision]:
        """Close an epoch and choose the bound/mode for the next one.

        Called by the engine at each punctuation with the bound now in
        force and its live :class:`~repro.core.stats.EngineStats`.
        Returns None when the closing epoch was too small to act on.
        """
        events = stats.events_in - self._base_events
        if events < self.min_epoch_events:
            return None
        late = stats.late_dropped - self._base_late
        speculated = stats.speculative_emitted - self._base_speculated
        retracted = stats.retractions_issued - self._base_retracted

        target = self.recommended_k()
        if current_k is None:
            # No promise yet: the controller introduces one (that is the
            # point of quality-driven adaptation — bounded state and
            # latency instead of punctuation-only sealing).
            new_k, reason = target, "grow"
        elif target > current_k:
            new_k, reason = target, "grow"
        elif target < current_k:
            # Damped shrink: at most halve per epoch, so one calm epoch
            # in a bursty stream cannot collapse the bound.
            new_k, reason = max(target, current_k // 2), "decay"
        else:
            new_k, reason = current_k, "hold"
        if late / events > (1.0 - self.quality_target) and current_k is not None:
            # The closing epoch already missed the quality target: never
            # shrink on top of that, whatever the estimator thinks.
            if new_k < current_k:
                new_k, reason = current_k, "quality-floor"

        if speculated > 0:
            rate = retracted / speculated
            if rate > self.retraction_budget:
                self.speculate = False
            elif rate <= self.retraction_budget / 2.0:
                self.speculate = True

        decision = ControllerDecision(at_ts, new_k, self.speculate, reason)
        self.history.append(decision)
        if len(self.history) > HISTORY_LIMIT:
            del self.history[: len(self.history) - HISTORY_LIMIT]
        if new_k != current_k:
            self.adjustments += 1
        self._base_events = stats.events_in
        self._base_late = stats.late_dropped
        self._base_speculated = stats.speculative_emitted
        self._base_retracted = stats.retractions_issued
        return decision

    # -- identity / attachment ---------------------------------------------------

    def fingerprint(self) -> tuple:
        """Hashable configuration identity for snapshot verification."""
        return (
            self.quality_target,
            self.estimator.window,
            self.estimator.margin,
            self.initial_k,
            self.min_k,
            self.max_k,
            self.retraction_budget,
            self.min_epoch_events,
        )

    def clone(self) -> "AdaptiveKController":
        """A fresh controller with identical configuration and no state."""
        return AdaptiveKController(
            quality_target=self.quality_target,
            window=self.estimator.window,
            margin=self.estimator.margin,
            initial_k=self.initial_k,
            min_k=self.min_k,
            max_k=self.max_k,
            retraction_budget=self.retraction_budget,
            min_epoch_events=self.min_epoch_events,
        )

    # -- checkpointing -------------------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "estimator": {
                "max_ts": self.estimator._max_ts,
                "recent": list(self.estimator._recent),
                "sorted": list(self.estimator._sorted),
            },
            "speculate": self.speculate,
            "history": [list(d) for d in self.history],
            "adjustments": self.adjustments,
            "baselines": [
                self._base_events,
                self._base_late,
                self._base_speculated,
                self._base_retracted,
            ],
        }

    def restore_state(self, state: dict) -> None:
        from collections import deque

        self.estimator._max_ts = state["estimator"]["max_ts"]
        self.estimator._recent = deque(state["estimator"]["recent"])
        self.estimator._sorted = list(state["estimator"]["sorted"])
        self.speculate = state["speculate"]
        self.history = [
            ControllerDecision(at_ts, k, speculate, reason)
            for at_ts, k, speculate, reason in state["history"]
        ]
        self.adjustments = state["adjustments"]
        (
            self._base_events,
            self._base_late,
            self._base_speculated,
            self._base_retracted,
        ) = state["baselines"]

    def __repr__(self) -> str:
        return (
            f"AdaptiveKController(target={self.quality_target}, "
            f"recommended={self.recommended_k()}, speculate={self.speculate}, "
            f"adjustments={self.adjustments})"
        )
