"""Event sources: deterministic generators of in-order event streams.

Every generator in the library is seeded and fully deterministic, so
benchmarks and tests are reproducible bit-for-bit.  Sources produce
events in **occurrence order**; disorder is applied afterwards by the
models in ``repro.streams.disorder`` or physically by the network
simulator in ``repro.netsim`` — mirroring reality, where sources emit
in order and the transport scrambles.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.core.errors import ConfigurationError
from repro.core.event import Event

AttrMaker = Callable[[random.Random, int], Dict[str, Any]]


class EventSource:
    """Base class: an iterable, restartable producer of in-order events."""

    def events(self) -> Iterator[Event]:
        """Yield events in non-decreasing occurrence-time order."""
        raise NotImplementedError

    def take(self, count: int) -> List[Event]:
        """Materialise the first *count* events."""
        result: List[Event] = []
        for event in self.events():
            result.append(event)
            if len(result) >= count:
                break
        return result


class SyntheticSource(EventSource):
    """Uniform-random typed events on a regular or jittered time grid.

    Parameters
    ----------
    types:
        Event type alphabet to draw from (uniformly, or per *weights*).
    count:
        Number of events to produce.
    seed:
        RNG seed; two sources with equal parameters yield equal streams.
    interval:
        Mean occurrence-time gap between consecutive events.
    jitter:
        When > 0, the gap is uniform in ``[max(interval - jitter, 0),
        interval + jitter]``; gaps of zero produce timestamp ties,
        exercising the engines' tie handling.
    attr_maker:
        Callable ``(rng, ts) -> attrs`` for event attributes; default
        gives each event an ``x`` attribute uniform in ``[0, 9]``.
    weights:
        Optional per-type selection weights (parallel to *types*).
    """

    def __init__(
        self,
        types: Sequence[str],
        count: int,
        seed: int = 0,
        interval: int = 1,
        jitter: int = 0,
        attr_maker: Optional[AttrMaker] = None,
        weights: Optional[Sequence[float]] = None,
    ):
        if not types:
            raise ConfigurationError("SyntheticSource needs a non-empty type alphabet")
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        if interval < 0 or jitter < 0:
            raise ConfigurationError("interval and jitter must be >= 0")
        if weights is not None and len(weights) != len(types):
            raise ConfigurationError("weights must parallel types")
        self.types = list(types)
        self.count = count
        self.seed = seed
        self.interval = interval
        self.jitter = jitter
        self.attr_maker = attr_maker or (lambda rng, ts: {"x": rng.randint(0, 9)})
        self.weights = list(weights) if weights is not None else None

    def events(self) -> Iterator[Event]:
        rng = random.Random(self.seed)
        ts = 0
        for __ in range(self.count):
            gap = self.interval
            if self.jitter:
                gap = rng.randint(max(self.interval - self.jitter, 0), self.interval + self.jitter)
            ts += gap
            if self.weights is not None:
                etype = rng.choices(self.types, weights=self.weights, k=1)[0]
            else:
                etype = rng.choice(self.types)
            yield Event(etype, ts, self.attr_maker(rng, ts))


class ScriptedSource(EventSource):
    """A fixed, explicit list of events (tests and documentation).

    Accepts either :class:`Event` objects or ``(etype, ts)`` /
    ``(etype, ts, attrs)`` tuples.
    """

    def __init__(self, script: Sequence):
        events: List[Event] = []
        last_ts = -1
        for item in script:
            if isinstance(item, Event):
                event = item
            elif isinstance(item, tuple) and len(item) in (2, 3):
                event = Event(item[0], item[1], item[2] if len(item) == 3 else None)
            else:
                raise ConfigurationError(f"bad script item {item!r}")
            if event.ts < last_ts:
                raise ConfigurationError(
                    f"ScriptedSource must be in occurrence order; {event!r} after ts={last_ts}"
                )
            last_ts = event.ts
            events.append(event)
        self._events = events

    def events(self) -> Iterator[Event]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)


class PoissonSource(EventSource):
    """Events with exponential inter-arrival gaps (discretised to ints).

    The occurrence process the CEP literature usually assumes; mean gap
    ``1/rate`` time units, minimum gap of zero (ties possible).
    """

    def __init__(
        self,
        types: Sequence[str],
        count: int,
        rate: float = 1.0,
        seed: int = 0,
        attr_maker: Optional[AttrMaker] = None,
    ):
        if rate <= 0:
            raise ConfigurationError(f"rate must be > 0, got {rate}")
        if not types:
            raise ConfigurationError("PoissonSource needs a non-empty type alphabet")
        self.types = list(types)
        self.count = count
        self.rate = rate
        self.seed = seed
        self.attr_maker = attr_maker or (lambda rng, ts: {"x": rng.randint(0, 9)})

    def events(self) -> Iterator[Event]:
        rng = random.Random(self.seed)
        ts = 0
        for __ in range(self.count):
            ts += int(rng.expovariate(self.rate))
            etype = rng.choice(self.types)
            yield Event(etype, ts, self.attr_maker(rng, ts))
