"""Disorder-bound estimation: choosing K from observed lateness.

The engines take the disorder bound K as a promise.  Where does K come
from in practice?  Either from domain knowledge (the paper's setting —
e.g. a known retransmission timeout), or *estimated* from the stream
itself.  This module provides the estimation side, the ablation axis of
experiment E12:

* :class:`FixedK` — a static promise;
* :class:`MaxObservedK` — running maximum of observed delays, with an
  optional safety margin.  Never shrinks, so it eventually dominates
  any stationary disorder process;
* :class:`QuantileK` — tracks a delay quantile over a sliding sample
  window, trading a bounded violation rate for much smaller K (hence
  lower latency and memory) on heavy-tailed disorder.

An estimator consumes arrival observations (via :meth:`observe`) and
exposes the current recommendation (:meth:`current`).  The
:class:`AdaptiveEngineFeeder` utility drives an engine whose K cannot
change mid-run the honest way: it measures a *training prefix*, fixes
K, and feeds the rest, reporting violations.
"""

from __future__ import annotations

import bisect
import math
from collections import deque
from fractions import Fraction
from typing import Deque, List, Optional

from repro.core.engine import LatePolicy
from repro.core.errors import ConfigurationError
from repro.core.event import Event
from repro.metrics.latency import percentile_index


class KEstimator:
    """Base class for disorder-bound estimators."""

    def observe(self, event: Event) -> None:
        """Record one arrival (in arrival order)."""
        raise NotImplementedError

    def current(self) -> int:
        """The currently recommended disorder bound."""
        raise NotImplementedError


class FixedK(KEstimator):
    """A constant K, for symmetry with the adaptive estimators."""

    def __init__(self, k: int):
        if k < 0:
            raise ConfigurationError(f"K must be >= 0, got {k}")
        self.k = k

    def observe(self, event: Event) -> None:
        return None

    def current(self) -> int:
        return self.k


class MaxObservedK(KEstimator):
    """Running maximum of observed delays, plus a safety margin.

    ``delay(e) = max_ts_seen_before_e - e.ts`` (clamped at zero); the
    recommendation is ``max_delay * (1 + margin)`` rounded up.  The
    classic conservative estimator: zero observed violations on
    re-played history, at the cost of being driven by the single worst
    straggler ever seen.
    """

    def __init__(self, margin: float = 0.0, initial: int = 0):
        if margin < 0:
            raise ConfigurationError(f"margin must be >= 0, got {margin}")
        if initial < 0:
            raise ConfigurationError(f"initial must be >= 0, got {initial}")
        self.margin = margin
        self._max_ts = -1
        self._max_delay = initial

    def observe(self, event: Event) -> None:
        if event.ts < self._max_ts:
            delay = self._max_ts - event.ts
            if delay > self._max_delay:
                self._max_delay = delay
        elif event.ts > self._max_ts:
            self._max_ts = event.ts

    def current(self) -> int:
        if self.margin == 0.0:
            return self._max_delay
        # Exact ceiling arithmetic: ``int()`` would truncate a
        # fractional margin downward (int(10 * 1.25) == 12 where the
        # margin demands 13), silently converting the safety margin
        # into late-drops, and raw float rounding can land either side
        # of an integer boundary.  ``limit_denominator`` recovers the
        # decimal margin the caller wrote (0.25 -> 1/4) so the ceiling
        # is taken over the intended product, never a float artifact.
        margin = Fraction(self.margin).limit_denominator(1_000_000)
        return math.ceil(self._max_delay * (1 + margin))


class QuantileK(KEstimator):
    """Sliding-window delay quantile: bounded violations, smaller K.

    Keeps the last *window* delay observations in a sorted structure
    and recommends the *quantile*-th delay (e.g. 0.999).  On
    heavy-tailed disorder this yields a far smaller K than the running
    max, at the price of a controlled violation rate — the trade-off
    experiment E12 quantifies.
    """

    def __init__(
        self,
        quantile: float = 0.99,
        window: int = 1000,
        margin: int = 0,
        initial: int = 0,
    ):
        if not 0.0 < quantile <= 1.0:
            raise ConfigurationError(f"quantile must be in (0, 1], got {quantile}")
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if margin < 0:
            raise ConfigurationError(f"margin must be >= 0, got {margin}")
        if initial < 0:
            raise ConfigurationError(f"initial must be >= 0, got {initial}")
        self.quantile = quantile
        self.window = window
        self.margin = margin
        self.initial = initial
        self._max_ts = -1
        self._recent: Deque[int] = deque()
        self._sorted: List[int] = []

    def observe(self, event: Event) -> None:
        delay = 0
        if event.ts < self._max_ts:
            delay = self._max_ts - event.ts
        elif event.ts > self._max_ts:
            self._max_ts = event.ts
        self._recent.append(delay)
        bisect.insort(self._sorted, delay)
        if len(self._recent) > self.window:
            expired = self._recent.popleft()
            index = bisect.bisect_left(self._sorted, expired)
            del self._sorted[index]

    def current(self) -> int:
        # The `initial` floor (mirroring MaxObservedK) covers the
        # cold-start: with zero observations the bare margin would
        # recommend an effective K=0, which a controller re-freezing at
        # punctuation boundaries would lock in during warm-up.  The
        # floor holds only until the window fills — after that the
        # observed quantile is the whole point of this estimator, and a
        # warm-start value must not pin the bound forever.
        if not self._sorted:
            return max(self.initial, self.margin)
        # ceil(q*n)-1 rank, shared with metrics.latency: the floor rank
        # int(q*n) picks one too high on small windows (q=0.5 over two
        # delays would return the max, silently inflating K).
        index = percentile_index(len(self._sorted), self.quantile)
        estimate = self._sorted[index] + self.margin
        if len(self._sorted) < self.window:
            return max(self.initial, estimate)
        return estimate


class AdaptiveEngineFeeder:
    """Train-then-run harness for engines with a fixed-K contract.

    The engines' purge proofs assume K never shrinks mid-run, so
    adapting K live would be unsound.  The honest protocol, used by
    experiment E12: observe a training prefix of the arrival stream
    with an estimator, freeze ``K = estimator.current()``, construct
    the engine via *engine_factory(k)*, and feed the remainder.  The
    report includes the chosen K and the violation count the frozen
    bound incurred.
    """

    def __init__(self, estimator: KEstimator, training: int):
        if training < 0:
            raise ConfigurationError(f"training must be >= 0, got {training}")
        self.estimator = estimator
        self.training = training
        self.chosen_k: Optional[int] = None
        self.violations: Optional[int] = None

    def run(self, engine_factory, arrival: List[Event]):
        """Returns the constructed engine after feeding the full stream."""
        prefix = arrival[: self.training]
        rest = arrival[self.training :]
        for event in prefix:
            self.estimator.observe(event)
        self.chosen_k = self.estimator.current()
        engine = engine_factory(self.chosen_k)
        # The training prefix is replayed into the engine first so no
        # results are lost.  A quantile-derived K *expects* a fraction
        # of its own training data to be late, so the replay must not
        # run under LatePolicy.RAISE — the harness would crash on the
        # very data the bound was fitted to.  The policy is restored for
        # the remainder, where RAISE keeps its contractual meaning.
        original_policy = getattr(engine, "late_policy", None)
        try:
            if original_policy is LatePolicy.RAISE:
                engine.late_policy = LatePolicy.DROP
            engine.feed_many(prefix)
        finally:
            if original_policy is LatePolicy.RAISE:
                engine.late_policy = original_policy
            self.violations = engine.stats.late_dropped
        engine.feed_many(rest)
        engine.close()
        self.violations = engine.stats.late_dropped
        return engine

    def report(self) -> dict:
        """Outcome of the train-then-run protocol (None before ``run``)."""
        return {
            "training": self.training,
            "chosen_k": self.chosen_k,
            "violations": self.violations,
        }
