"""Disorder models: turn an in-order stream into a realistic arrival order.

The paper attributes out-of-order arrival to *network latency* and
*machine failure*.  This module provides logical-level disorder
injectors parameterised the way the experiments need (disorder **rate**
— what fraction of events arrive out of position — and disorder
**extent** — how far they are displaced).  For physically-motivated
disorder (per-link latency distributions, failure bursts) use
``repro.netsim``, which produces arrival orders of the same shape from
an actual latency simulation.

All models are deterministic under a seed, preserve the event set
exactly (disorder never drops or duplicates), and report the *actual*
disorder statistics of the permutation they produced, because a
sampled disorder rate of 0.2 rarely lands on exactly 20%.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Tuple

from repro.core.errors import ConfigurationError
from repro.core.event import Event


class DisorderStats:
    """Measured properties of an arrival permutation."""

    __slots__ = ("total", "displaced", "max_delay", "mean_delay")

    def __init__(self, total: int, displaced: int, max_delay: int, mean_delay: float):
        self.total = total
        self.displaced = displaced
        self.max_delay = max_delay
        self.mean_delay = mean_delay

    @property
    def rate(self) -> float:
        """Fraction of events that arrived after a younger event."""
        return self.displaced / self.total if self.total else 0.0

    def __repr__(self) -> str:
        return (
            f"DisorderStats(rate={self.rate:.3f}, max_delay={self.max_delay}, "
            f"mean_delay={self.mean_delay:.2f}, n={self.total})"
        )


def measure_disorder(arrival: List[Event]) -> DisorderStats:
    """Compute disorder statistics of an arrival sequence.

    An event is *displaced* when some younger-timestamped event arrives
    before it; its *delay* is ``max_ts_seen_before_it - its_ts``
    (clamped at zero) — exactly the quantity the disorder bound K must
    dominate for the K promise to hold.
    """
    displaced = 0
    max_delay = 0
    total_delay = 0
    max_seen = -1
    for event in arrival:
        if event.ts < max_seen:
            displaced += 1
            delay = max_seen - event.ts
            total_delay += delay
            if delay > max_delay:
                max_delay = delay
        if event.ts > max_seen:
            max_seen = event.ts
    n = len(arrival)
    return DisorderStats(n, displaced, max_delay, total_delay / n if n else 0.0)


def required_k(arrival: List[Event]) -> int:
    """Smallest disorder bound K under which no event in *arrival* is late."""
    return measure_disorder(arrival).max_delay


class DelayModel:
    """Base class: maps an in-order stream to an arrival order."""

    def apply(self, events: Iterable[Event]) -> List[Event]:
        raise NotImplementedError

    def arrange(self, events: Iterable[Event]) -> Tuple[List[Event], DisorderStats]:
        """Apply the model and report measured disorder."""
        arrival = self.apply(events)
        return arrival, measure_disorder(arrival)


class NoDisorder(DelayModel):
    """Identity model: arrival order equals occurrence order."""

    def apply(self, events: Iterable[Event]) -> List[Event]:
        return list(events)


class RandomDelayModel(DelayModel):
    """Each event independently suffers a random arrival delay.

    With probability *rate* an event's arrival position is delayed by a
    uniform ``[1, max_delay]`` occurrence-time offset; the arrival order
    is the sort by ``ts + delay`` (stable on ties).  This is the
    standard "lag model" of the out-of-order literature: it produces
    both the disorder rate and extent axes the experiments sweep.
    """

    def __init__(self, rate: float, max_delay: int, seed: int = 0):
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {rate}")
        if max_delay < 0:
            raise ConfigurationError(f"max_delay must be >= 0, got {max_delay}")
        self.rate = rate
        self.max_delay = max_delay
        self.seed = seed

    def apply(self, events: Iterable[Event]) -> List[Event]:
        rng = random.Random(self.seed)
        keyed = []
        for index, event in enumerate(events):
            delay = 0
            if self.rate > 0 and self.max_delay > 0 and rng.random() < self.rate:
                delay = rng.randint(1, self.max_delay)
            keyed.append((event.ts + delay, index, event))
        keyed.sort()
        return [event for __, __, event in keyed]


class BurstDropoutModel(DelayModel):
    """Machine-failure disorder: a node buffers during outages, then flushes.

    Mimics the paper's second disorder cause.  The stream is the merge
    of many sources; when one source's node goes down (entered with
    probability *fail_rate* per event, lasting *outage_length* events),
    the share of events belonging to it (*affected*, default one half)
    is buffered while the other sources' events keep flowing; on
    recovery the buffer flushes behind the events that overtook it.
    Produces bursty, heavy-tailed displacement — very different from
    the smooth lag model, and the reason adaptive K estimation (E12)
    earns its keep.
    """

    def __init__(
        self,
        fail_rate: float,
        outage_length: int,
        affected: float = 0.5,
        seed: int = 0,
    ):
        if not 0.0 <= fail_rate <= 1.0:
            raise ConfigurationError(f"fail_rate must be in [0, 1], got {fail_rate}")
        if outage_length < 1:
            raise ConfigurationError(f"outage_length must be >= 1, got {outage_length}")
        if not 0.0 <= affected <= 1.0:
            raise ConfigurationError(f"affected must be in [0, 1], got {affected}")
        self.fail_rate = fail_rate
        self.outage_length = outage_length
        self.affected = affected
        self.seed = seed

    def apply(self, events: Iterable[Event]) -> List[Event]:
        rng = random.Random(self.seed)
        arrival: List[Event] = []
        buffered: List[Event] = []
        remaining_outage = 0
        for event in events:
            if remaining_outage > 0:
                remaining_outage -= 1
                if rng.random() < self.affected:
                    buffered.append(event)
                else:
                    arrival.append(event)
                if remaining_outage == 0:
                    arrival.extend(buffered)
                    buffered.clear()
            else:
                arrival.append(event)
                if rng.random() < self.fail_rate:
                    remaining_outage = self.outage_length
        arrival.extend(buffered)
        return arrival


class SwapModel(DelayModel):
    """Adjacent-window shuffles: local disorder with a hard extent cap.

    Splits the stream into blocks of *block* events and shuffles each
    block independently.  Displacement is bounded by the block's time
    span, giving a crisp worst-case K — useful in property tests.
    """

    def __init__(self, block: int, seed: int = 0):
        if block < 1:
            raise ConfigurationError(f"block must be >= 1, got {block}")
        self.block = block
        self.seed = seed

    def apply(self, events: Iterable[Event]) -> List[Event]:
        rng = random.Random(self.seed)
        ordered = list(events)
        arrival: List[Event] = []
        for start in range(0, len(ordered), self.block):
            chunk = ordered[start : start + self.block]
            rng.shuffle(chunk)
            arrival.extend(chunk)
        return arrival
