"""Deterministic fault injection for crash-recovery testing.

Recovery code that is only exercised by real crashes is recovery code
that does not work.  This module injects the failure modes the
robustness layer must survive, all of them **deterministic** — a seed
and a schedule fully determine where every fault lands, so a failing
run reproduces exactly:

* **crash points** — :class:`CrashError` raised at chosen input indices
  (after the element is durably WAL-logged, before the engine processes
  it — the moment state and log disagree the most), or in the middle of
  a purge run (:meth:`FaultInjector.arm`), where engine state is
  mid-mutation;
* **corrupted events** — malformed elements (NaN / float / negative
  timestamps, missing type) forged past :class:`~repro.core.event.Event`
  constructor validation, the way a buggy upstream serialiser would
  produce them;
* **stuck clocks** — from a chosen index onward, a source's timestamps
  stop advancing, the pathological case for progress that K-slack and
  punctuation-based clocks must tolerate.

The injector plugs into :class:`repro.core.recovery.ResilientRunner`
(crash points) and wraps raw element streams (:meth:`wrap`, corruption
and clock faults).  :meth:`from_outages` converts a netsim failure
schedule into crash points so simulated node outages kill and restart
the engine at the matching stream positions.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Iterator, List, Optional, Sequence

from repro.core.errors import ReproError
from repro.core.event import Event, StreamElement


class CrashError(ReproError):
    """An injected crash: the process is presumed dead at this point.

    Tests catch this where a supervisor would observe a process exit;
    everything the dead incarnation held in memory must be presumed
    lost, and recovery must proceed from the on-disk logs alone.
    """


#: Malformed-event shapes :func:`forge_event` can produce.
CORRUPT_SHAPES = ("negative_ts", "float_ts", "nan_ts", "missing_type")


def forge_event(
    etype: Any, ts: Any, eid: Optional[int] = None, attrs: Optional[dict] = None
) -> Event:
    """Build an :class:`Event` bypassing constructor validation.

    The Event constructor (rightly) refuses malformed timestamps and
    types, but fault injection needs to produce exactly those objects —
    the way a buggy deserialiser or a corrupted wire message would.
    """
    event = object.__new__(Event)
    object.__setattr__(event, "etype", etype)
    object.__setattr__(event, "ts", ts)
    object.__setattr__(event, "eid", eid if eid is not None else -1)
    object.__setattr__(event, "_attrs", dict(attrs) if attrs else {})
    object.__setattr__(event, "_hash", object.__hash__(event))
    return event


def corrupt_event(event: Event, shape: str) -> Event:
    """A malformed copy of *event* in the given :data:`CORRUPT_SHAPES` shape."""
    if shape == "negative_ts":
        return forge_event(event.etype, -event.ts - 1, event.eid, event.attrs)
    if shape == "float_ts":
        return forge_event(event.etype, float(event.ts) + 0.5, event.eid, event.attrs)
    if shape == "nan_ts":
        return forge_event(event.etype, math.nan, event.eid, event.attrs)
    if shape == "missing_type":
        return forge_event("", event.ts, event.eid, event.attrs)
    raise ReproError(f"unknown corruption shape {shape!r}; known: {CORRUPT_SHAPES}")


class _CrashingPurger:
    """Proxy around :class:`repro.core.purge.Purger` that fires crash points.

    ``Purger`` uses ``__slots__`` so its ``run`` cannot be monkeypatched
    on the instance; a delegating proxy injects the crash check instead.
    """

    def __init__(self, inner: Any, injector: "FaultInjector"):
        self._inner = inner
        self._injector = injector

    def run(self, *args: Any, **kwargs: Any) -> Any:
        self._injector.on_purge()
        return self._inner.run(*args, **kwargs)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class FaultInjector:
    """A deterministic schedule of crashes, corruption and clock faults.

    Parameters
    ----------
    crash_at:
        0-based input-element indices at which :meth:`on_logged` raises
        :class:`CrashError`.  Each index fires **once** — an injector
        shared across runner incarnations scripts a multi-crash
        schedule without crashing forever at the same element.
    crash_on_purge:
        When set to *n*, the *n*-th purge run of an armed engine
        (:meth:`arm`) raises :class:`CrashError` mid-mutation.  Fires
        once.  Purge crash points require the per-event feed path; the
        fused batch loops inline purging and bypass the hook.
    corrupt_at:
        0-based event indices :meth:`wrap` replaces with a malformed
        forgery of the event at that position.
    corrupt_shape:
        Which :data:`CORRUPT_SHAPES` member :meth:`wrap` forges.
    stuck_clock_at:
        0-based event index after which :meth:`wrap` stops source time:
        later events keep their identity but their timestamps are
        clamped to the maximum seen before the fault.
    duplicate_at:
        0-based event indices :meth:`wrap` *redelivers*: the event is
        yielded again immediately after itself, identity and all — the
        shape an at-least-once transport produces when an ack is lost.
        Downstream layers with idempotent admission must count exactly
        one of each pair; engines fed directly will double-process,
        which is precisely what the gateway tests assert cannot leak
        through admission.
    """

    def __init__(
        self,
        crash_at: Sequence[int] = (),
        crash_on_purge: Optional[int] = None,
        corrupt_at: Sequence[int] = (),
        corrupt_shape: str = "nan_ts",
        stuck_clock_at: Optional[int] = None,
        duplicate_at: Sequence[int] = (),
    ):
        if corrupt_shape not in CORRUPT_SHAPES:
            raise ReproError(
                f"unknown corruption shape {corrupt_shape!r}; known: {CORRUPT_SHAPES}"
            )
        if crash_on_purge is not None and crash_on_purge < 1:
            raise ReproError(f"crash_on_purge must be >= 1, got {crash_on_purge}")
        self._crash_at = set(crash_at)
        self._purge_remaining = crash_on_purge
        self.corrupt_at = set(corrupt_at)
        self.corrupt_shape = corrupt_shape
        self.stuck_clock_at = stuck_clock_at
        self.duplicate_at = set(duplicate_at)
        self.crashes_fired: List[int] = []

    @classmethod
    def from_outages(
        cls,
        crash_indices: Optional[Sequence[int]] = None,
        schedule: Optional[Any] = None,
        result: Optional[Any] = None,
        node: Optional[str] = None,
        **kwargs: Any,
    ) -> "FaultInjector":
        """Crash schedule from netsim outage positions.

        Two forms:

        * ``from_outages(indices)`` — precomputed positions, paired
          with :meth:`repro.netsim.simulator.SimulationResult.
          crash_indices`;
        * ``from_outages(schedule=failures, result=sim, node="s1")`` —
          target a *single* source/node id: only that node's outages
          become crash points, computed against the simulated arrival
          stream.  Before this form existed, outage-derived crash
          schedules were necessarily global — every scripted outage hit
          the same engine — which made per-source fault drills (one
          flaky source among healthy ones, the E21 soak scenario)
          impossible to express.
        """
        if crash_indices is None:
            if schedule is None or result is None or node is None:
                raise ReproError(
                    "from_outages needs either crash_indices or all of "
                    "schedule=, result=, node="
                )
            crash_indices = result.crash_indices(schedule, node)
        elif schedule is not None or result is not None or node is not None:
            raise ReproError(
                "from_outages takes crash_indices or schedule/result/node, not both"
            )
        return cls(crash_at=crash_indices, **kwargs)

    # -- crash points ---------------------------------------------------------------

    def on_logged(self, index: int) -> None:
        """Crash check at input element *index* (fired by the runner)."""
        if index in self._crash_at:
            self._crash_at.discard(index)
            self.crashes_fired.append(index)
            raise CrashError(f"injected crash at input element {index}")

    def on_purge(self) -> None:
        """Crash check at the start of a purge run (fired by armed engines)."""
        if self._purge_remaining is None:
            return
        self._purge_remaining -= 1
        if self._purge_remaining == 0:
            self._purge_remaining = None
            self.crashes_fired.append(-1)
            raise CrashError("injected crash during state purge")

    def arm(self, engine: Any) -> Any:
        """Install the purge crash point into *engine* (recursively).

        Wraps the purger of out-of-order engines, the ``_purge`` method
        of in-order engines, the inner engine of a reordering engine,
        and every (current and future) sub-engine of a partitioned
        engine.  Returns *engine* for chaining.
        """
        from repro.core.engine import OutOfOrderEngine
        from repro.core.inorder import InOrderEngine
        from repro.core.partition import PartitionedEngine
        from repro.core.reorder import ReorderingEngine

        if isinstance(engine, ReorderingEngine):
            self.arm(engine.inner)
        elif isinstance(engine, PartitionedEngine):
            blank = engine._blank_sub_engine
            engine._blank_sub_engine = lambda: self.arm(blank())
            for sub in engine._partitions.values():
                self.arm(sub)
        elif isinstance(engine, OutOfOrderEngine):
            engine.purger = _CrashingPurger(engine.purger, self)
        elif isinstance(engine, InOrderEngine):
            purge = engine._purge

            def crashing_purge() -> None:
                self.on_purge()
                purge()

            engine._purge = crashing_purge
        else:
            raise ReproError(
                f"cannot arm purge crash point on {type(engine).__name__}"
            )
        return engine

    # -- stream transforms ------------------------------------------------------------

    def wrap(self, elements: Iterable[StreamElement]) -> Iterator[StreamElement]:
        """Apply corruption and clock faults to an element stream.

        Indices count *all* stream elements (events and punctuations);
        only events are corrupted, duplicated or clock-clamped —
        punctuations pass through untouched.  A duplicated event is
        redelivered *after* any clock clamping, so both copies are
        byte-identical (the redelivery an at-least-once transport
        produces is a copy of what was sent, not a fresh read).
        """
        max_ts = 0
        for index, element in enumerate(elements):
            if not isinstance(element, Event):
                yield element
                continue
            if index in self.corrupt_at:
                yield corrupt_event(element, self.corrupt_shape)
                continue
            if type(element.ts) is int and element.ts > max_ts:
                if self.stuck_clock_at is None or index <= self.stuck_clock_at:
                    max_ts = element.ts
            if (
                self.stuck_clock_at is not None
                and index > self.stuck_clock_at
                and element.ts > max_ts
            ):
                delivered = Event(element.etype, max_ts, element.attrs, eid=element.eid)
            else:
                delivered = element
            yield delivered
            if index in self.duplicate_at:
                yield delivered
