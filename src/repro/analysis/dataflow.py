"""Flow-sensitive intra-function dataflow: CFG, await segments, def-use.

The per-class rules (R001–R005) read the flow-*insensitive* summaries in
:mod:`repro.analysis.model`: which attributes a method touches, which
calls it makes.  The async rules added for the ingestion gateway need
more — *order* matters ("was this attribute read **before** the await
and written **after** it?") and *flow* matters ("does the value read
from ``self._x`` actually reach the returned snapshot dict?").  This
module provides both, still over nothing but :mod:`ast`:

* :func:`build_cfg` — a basic-block control-flow graph of one function
  body.  Each block carries an ordered stream of :class:`AttrEvent`\\ s:
  ``self`` attribute reads, writes, in-place mutations (directly or
  through hoisted local aliases), and **await points** (``await``
  expressions, ``async for`` iteration, ``async with`` enter/exit).
  Branches, loops (with back edges), ``try``/``except``/``finally``
  (with approximate exceptional edges into handlers) and ``break``/
  ``continue``/``return`` are wired explicitly; nested ``def``/
  ``lambda`` bodies are separate scopes and contribute no events.
* :func:`stale_attr_writes` — the R006 engine: a worklist fixpoint over
  the CFG that reports writes clobbering a value read *before* an
  intervening await.  A re-read after the await refreshes ("validate
  then write" is the blessed pattern), a write consumes pending reads
  ("read-modify-write completed before suspending" is safe), and reads
  guarded by an ``async with <...lock...>`` held across the await are
  exempt.
* :func:`attr_reads_reaching_return` / :func:`restore_derivations` —
  the R009 def-use halves: which ``self`` attribute reads flow into a
  function's return value, and which attribute writes in a restore
  method derive from its state parameter.

Everything here is deliberately approximate in the *safe* direction for
each client rule and is calibrated (like the rest of the analyzer)
toward zero false positives on this tree; ``docs/analysis.md`` records
the approximations.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.model import MUTATOR_METHODS, _root_and_path

#: Event kinds.
READ = "read"
WRITE = "write"
MUTATE = "mutate"
AWAIT = "await"

#: ``heapq`` functions whose first argument is mutated (kept in sync
#: with the model's vocabulary).
_HEAP_FUNCTIONS = frozenset(
    {"heappush", "heappop", "heapify", "heappushpop", "heapreplace"}
)

#: Receiver-name fragments that make an ``async with`` a lock region.
_LOCK_HINTS = ("lock", "mutex", "semaphore", "sem_", "cond")

#: Scope boundaries: their bodies are separate functions/namespaces.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def walk_scope(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested scopes.

    The bodies of nested ``def``/``async def``/``lambda``/``class``
    belong to other functions: their reads and awaits must not be
    attributed to the enclosing function's flow.
    """
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, _SCOPE_NODES):
                continue
            stack.append(child)


@dataclass(frozen=True)
class AttrEvent:
    """One ordered effect inside a basic block."""

    kind: str  # READ | WRITE | MUTATE | AWAIT
    attr: Optional[str]  # None for AWAIT
    line: int
    guarded: bool = False  # inside an async-with lock region


@dataclass
class Block:
    """A basic block: an event stream plus successor indices."""

    index: int
    events: List[AttrEvent] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)


@dataclass
class ControlFlowGraph:
    """Blocks of one function body; ``entry``/``exit`` are block indices."""

    blocks: List[Block]
    entry: int
    exit: int


def _collect_aliases(fn_node: ast.AST) -> Dict[str, Set[str]]:
    """Flow-insensitive local -> self-attribute alias map.

    ``clock = self.clock`` lets a later ``clock._max_ts = ts`` count as
    a mutation of ``self.clock``.  Call results never alias (a call
    returns a new object); two passes resolve one level of re-aliasing.
    """
    aliases: Dict[str, Set[str]] = {}
    for _ in range(2):
        for node in walk_scope(fn_node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            attrs: Set[str] = set()
            stack: List[ast.AST] = [node.value]
            while stack:
                sub = stack.pop()
                if isinstance(sub, ast.Call):
                    continue
                if isinstance(sub, ast.Attribute) and isinstance(
                    sub.value, ast.Name
                ):
                    if sub.value.id == "self":
                        attrs.add(sub.attr)
                elif isinstance(sub, ast.Name):
                    attrs.update(aliases.get(sub.id, ()))
                stack.extend(ast.iter_child_nodes(sub))
            if attrs:
                aliases[target.id] = attrs
    return aliases


def _is_lockish(expr: ast.AST) -> bool:
    """True when an ``async with`` context expression looks like a lock."""
    for node in ast.walk(expr):
        name: Optional[str] = None
        if isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Name):
            name = node.id
        if name is not None and any(h in name.lower() for h in _LOCK_HINTS):
            return True
    return False


class _CFGBuilder:
    """One pass over a function body building blocks and edges."""

    def __init__(self, fn_node: ast.AST):
        self.aliases = _collect_aliases(fn_node)
        self.blocks: List[Block] = []
        self.entry = self._new_block()
        self.exit = self._new_block()
        #: (loop head index, loop exit index) for break/continue.
        self._loops: List[Tuple[int, int]] = []
        #: active handler-entry indices, innermost try last.
        self._handlers: List[List[int]] = []
        self._guard_depth = 0

    # -- graph plumbing ---------------------------------------------------------

    def _new_block(self) -> int:
        self.blocks.append(Block(index=len(self.blocks)))
        return len(self.blocks) - 1

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].successors:
            self.blocks[src].successors.append(dst)

    def _emit(self, block: int, kind: str, attr: Optional[str], line: int) -> None:
        self.blocks[block].events.append(
            AttrEvent(kind, attr, line, guarded=self._guard_depth > 0)
        )

    # -- expression events ------------------------------------------------------

    def _receiver_attrs(self, expr: ast.AST) -> Set[str]:
        """Self-attributes a receiver expression denotes (attr or alias)."""
        root, path = _root_and_path(expr)
        if root == "self" and path:
            return {path[0]}
        if root is not None:
            return set(self.aliases.get(root, set()))
        return set()

    def _expr(self, block: int, node: Optional[ast.AST]) -> None:
        """Append *node*'s events in approximate evaluation order."""
        if node is None:
            return
        if isinstance(node, ast.Await):
            self._expr(block, node.value)
            self._emit(block, AWAIT, None, node.lineno)
            return
        if isinstance(node, ast.Lambda):
            return  # deferred body: separate scope
        if isinstance(node, ast.Call):
            self._call(block, node)
            return
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and isinstance(node.ctx, ast.Load)
            ):
                self._emit(block, READ, node.attr, node.lineno)
                return
            self._expr(block, node.value)
            return
        if isinstance(node, ast.Name):
            return  # alias *uses* re-read nothing; the read happened at bind
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                continue
            if isinstance(child, (ast.expr, ast.comprehension, ast.keyword)):
                self._expr(block, child)
            elif isinstance(child, ast.AST) and not isinstance(
                child, (ast.expr_context, ast.operator, ast.boolop, ast.cmpop, ast.unaryop)
            ):
                self._expr(block, child)

    def _call(self, block: int, node: ast.Call) -> None:
        func = node.func
        deferred_mutate: Set[str] = set()
        if isinstance(func, ast.Attribute):
            receivers = self._receiver_attrs(func.value)
            if receivers and func.attr in MUTATOR_METHODS:
                deferred_mutate = receivers
            else:
                self._expr(block, func.value)
        elif not isinstance(func, ast.Name):
            self._expr(block, func)
        for arg in node.args:
            self._expr(block, arg)
        for kw in node.keywords:
            self._expr(block, kw.value)
        if isinstance(func, ast.Name) and func.id in _HEAP_FUNCTIONS and node.args:
            deferred_mutate |= self._receiver_attrs(node.args[0])
        for attr in sorted(deferred_mutate):
            self._emit(block, MUTATE, attr, node.lineno)

    def _target(self, block: int, target: ast.AST, line: int) -> None:
        if isinstance(target, ast.Name):
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._target(block, element, line)
            return
        if isinstance(target, ast.Starred):
            self._target(block, target.value, line)
            return
        if isinstance(target, ast.Subscript):
            self._expr(block, target.slice)
        root, path = _root_and_path(target)
        if root == "self" and len(path) == 1 and isinstance(target, ast.Attribute):
            self._emit(block, WRITE, path[0], line)
        elif root == "self" and path:
            self._emit(block, MUTATE, path[0], line)
        elif root is not None:
            for attr in sorted(self.aliases.get(root, set())):
                self._emit(block, MUTATE, attr, line)

    # -- statements -------------------------------------------------------------

    def build(self, body: List[ast.stmt]) -> ControlFlowGraph:
        end = self._stmts(body, self.entry)
        self._edge(end, self.exit)
        return ControlFlowGraph(blocks=self.blocks, entry=self.entry, exit=self.exit)

    def _stmts(self, body: List[ast.stmt], current: int) -> int:
        for stmt in body:
            current = self._stmt(stmt, current)
        return current

    def _abrupt(self, current: int, targets: List[int]) -> int:
        """Wire an abrupt jump and continue building in a dead block."""
        for target in targets:
            self._edge(current, target)
        return self._new_block()

    def _stmt(self, node: ast.stmt, current: int) -> int:
        if isinstance(node, _SCOPE_NODES):
            return current
        if isinstance(node, ast.Expr):
            self._expr(current, node.value)
            return current
        if isinstance(node, ast.Assign):
            self._expr(current, node.value)
            for target in node.targets:
                self._target(current, target, node.lineno)
            return current
        if isinstance(node, ast.AnnAssign):
            self._expr(current, node.value)
            self._target(current, node.target, node.lineno)
            return current
        if isinstance(node, ast.AugAssign):
            # Load-op-store: the target is read, then the value, then
            # the store — `self.n += await f()` is a genuine lost update.
            if isinstance(node.target, ast.Attribute) and isinstance(
                node.target.value, ast.Name
            ) and node.target.value.id == "self":
                self._emit(current, READ, node.target.attr, node.lineno)
            self._expr(current, node.value)
            self._target(current, node.target, node.lineno)
            return current
        if isinstance(node, ast.Return):
            self._expr(current, node.value)
            return self._abrupt(current, [self.exit])
        if isinstance(node, ast.Raise):
            self._expr(current, node.exc)
            targets = [self.exit]
            if self._handlers:
                targets = list(self._handlers[-1]) + targets
            return self._abrupt(current, targets)
        if isinstance(node, ast.Break):
            if self._loops:
                return self._abrupt(current, [self._loops[-1][1]])
            return current
        if isinstance(node, ast.Continue):
            if self._loops:
                return self._abrupt(current, [self._loops[-1][0]])
            return current
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    self._expr(current, target.slice)
                    for attr in sorted(self._receiver_attrs(target.value)):
                        self._emit(current, MUTATE, attr, node.lineno)
            return current
        if isinstance(node, ast.Assert):
            self._expr(current, node.test)
            self._expr(current, node.msg)
            return current
        if isinstance(node, ast.If):
            return self._if(node, current)
        if isinstance(node, (ast.While,)):
            return self._while(node, current)
        if isinstance(node, (ast.For, ast.AsyncFor)):
            return self._for(node, current)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            return self._with(node, current)
        if isinstance(node, ast.Try):
            return self._try(node, current)
        trystar = getattr(ast, "TryStar", None)
        if trystar is not None and isinstance(node, trystar):
            return self._try(node, current)  # same shape as Try
        # Fallback (Match, future nodes): sequential over-approximation.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(current, child)
            elif isinstance(child, ast.stmt):
                current = self._stmt(child, current)
        return current

    def _if(self, node: ast.If, current: int) -> int:
        self._expr(current, node.test)
        join = self._new_block()
        then_entry = self._new_block()
        self._edge(current, then_entry)
        self._edge(self._stmts(node.body, then_entry), join)
        if node.orelse:
            else_entry = self._new_block()
            self._edge(current, else_entry)
            self._edge(self._stmts(node.orelse, else_entry), join)
        else:
            self._edge(current, join)
        return join

    def _while(self, node: ast.While, current: int) -> int:
        head = self._new_block()
        self._edge(current, head)
        self._expr(head, node.test)
        exit_block = self._new_block()
        self._edge(head, exit_block)
        body_entry = self._new_block()
        self._edge(head, body_entry)
        self._loops.append((head, exit_block))
        self._edge(self._stmts(node.body, body_entry), head)
        self._loops.pop()
        if node.orelse:
            else_entry = self._new_block()
            self._edge(head, else_entry)
            self._edge(self._stmts(node.orelse, else_entry), exit_block)
        return exit_block

    def _for(self, node: ast.stmt, current: int) -> int:
        iter_expr = node.iter  # type: ignore[attr-defined]
        self._expr(current, iter_expr)
        head = self._new_block()
        self._edge(current, head)
        if isinstance(node, ast.AsyncFor):
            # Every iteration resumes through ``__anext__``.
            self._emit(head, AWAIT, None, node.lineno)
        self._target(head, node.target, node.lineno)  # type: ignore[attr-defined]
        exit_block = self._new_block()
        self._edge(head, exit_block)
        body_entry = self._new_block()
        self._edge(head, body_entry)
        self._loops.append((head, exit_block))
        self._edge(self._stmts(node.body, body_entry), head)  # type: ignore[attr-defined]
        self._loops.pop()
        orelse = node.orelse  # type: ignore[attr-defined]
        if orelse:
            else_entry = self._new_block()
            self._edge(head, else_entry)
            self._edge(self._stmts(orelse, else_entry), exit_block)
        return exit_block

    def _with(self, node: ast.stmt, current: int) -> int:
        is_async = isinstance(node, ast.AsyncWith)
        lockish = False
        for item in node.items:  # type: ignore[attr-defined]
            self._expr(current, item.context_expr)
            if is_async:
                lockish = lockish or _is_lockish(item.context_expr)
                # ``__aenter__`` may suspend; reads made before entering
                # the region go stale here, not inside it.
                self._emit(current, AWAIT, None, node.lineno)
        if is_async and lockish:
            self._guard_depth += 1
        current = self._stmts(node.body, current)  # type: ignore[attr-defined]
        if is_async and lockish:
            self._guard_depth -= 1
        if is_async:
            # ``__aexit__`` is an await point *after* the lock releases.
            end_line = getattr(node, "end_lineno", None) or node.lineno
            self._emit(current, AWAIT, None, end_line)
        return current

    def _try(self, node: ast.stmt, current: int) -> int:
        handlers = node.handlers  # type: ignore[attr-defined]
        handler_entries = [self._new_block() for _ in handlers]
        if handler_entries:
            self._handlers.append(handler_entries)
        body_current = current
        for stmt in node.body:  # type: ignore[attr-defined]
            for entry in handler_entries:
                self._edge(body_current, entry)
            body_current = self._stmt(stmt, body_current)
            for entry in handler_entries:
                self._edge(body_current, entry)
        if handler_entries:
            self._handlers.pop()
        body_current = self._stmts(node.orelse, body_current)  # type: ignore[attr-defined]
        ends = [body_current]
        for handler, entry in zip(handlers, handler_entries):
            ends.append(self._stmts(handler.body, entry))
        finalbody = node.finalbody  # type: ignore[attr-defined]
        if finalbody:
            final_entry = self._new_block()
            for end in ends:
                self._edge(end, final_entry)
            return self._stmts(finalbody, final_entry)
        join = self._new_block()
        for end in ends:
            self._edge(end, join)
        return join


def build_cfg(fn_node: ast.AST) -> ControlFlowGraph:
    """CFG of one ``FunctionDef``/``AsyncFunctionDef`` body."""
    builder = _CFGBuilder(fn_node)
    return builder.build(list(getattr(fn_node, "body", [])))


# -- R006 engine: stale reads across awaits --------------------------------------


@dataclass(frozen=True, order=True)
class StaleWrite:
    """A write clobbering a value read before an intervening await."""

    attr: str
    read_line: int
    await_line: int
    write_line: int


#: Abstract value states: ('fresh', read line, guarded) before any await,
#: ('stale', read line, await line) once one suspends past it.
_State = Dict[str, FrozenSet[Tuple[str, int, int, bool]]]


def _transfer(
    state: _State, events: List[AttrEvent], out: Set[StaleWrite]
) -> _State:
    new: _State = {attr: entries for attr, entries in state.items()}
    for event in events:
        if event.kind == READ and event.attr is not None:
            # A (re-)read refreshes: validate-after-await is the fix.
            new[event.attr] = frozenset({("fresh", event.line, 0, event.guarded)})
        elif event.kind in (WRITE, MUTATE) and event.attr is not None:
            for tag, read_line, await_line, _guarded in new.get(
                event.attr, frozenset()
            ):
                if tag == "stale":
                    out.add(
                        StaleWrite(event.attr, read_line, await_line, event.line)
                    )
            # The write consumes pending reads: RMW completed before the
            # next suspension is atomic on a single loop.
            new[event.attr] = frozenset()
        elif event.kind == AWAIT:
            for attr, entries in list(new.items()):
                moved = set()
                for tag, read_line, await_line, guarded in entries:
                    if tag == "fresh":
                        if guarded and event.guarded:
                            # Read and suspension both under the lock.
                            moved.add((tag, read_line, await_line, guarded))
                        else:
                            moved.add(("stale", read_line, event.line, False))
                    else:
                        moved.add((tag, read_line, await_line, guarded))
                new[attr] = frozenset(moved)
    return new


def _merge(into: Optional[_State], other: _State) -> Tuple[_State, bool]:
    if into is None:
        return {attr: entries for attr, entries in other.items()}, True
    changed = False
    for attr, entries in other.items():
        merged = into.get(attr, frozenset()) | entries
        if merged != into.get(attr, frozenset()):
            into[attr] = merged
            changed = True
    return into, changed


def stale_attr_writes(fn_node: ast.AST) -> List[StaleWrite]:
    """R006: writes to ``self`` state whose basis predates an await.

    Reports every ``(attr, read, await, write)`` where some CFG path
    reads ``self.attr``, suspends at an await, then writes or mutates
    ``self.attr`` — the interleaving window in which another task may
    have changed the attribute, making the write a lost update (or the
    earlier read a stale guard).  Reads and suspensions both inside an
    ``async with <...lock...>`` region are exempt.
    """
    cfg = build_cfg(fn_node)
    violations: Set[StaleWrite] = set()
    in_states: Dict[int, Optional[_State]] = {
        block.index: None for block in cfg.blocks
    }
    in_states[cfg.entry] = {}
    worklist: List[int] = [cfg.entry]
    while worklist:
        index = worklist.pop(0)
        state = in_states[index]
        if state is None:
            continue
        out_state = _transfer(dict(state), cfg.blocks[index].events, violations)
        for successor in cfg.blocks[index].successors:
            merged, changed = _merge(in_states[successor], out_state)
            in_states[successor] = merged
            if changed and successor not in worklist:
                worklist.append(successor)
    return sorted(violations)


# -- R009 def-use: snapshot capture and restore derivation -----------------------


def _names_in(node: ast.AST) -> Set[str]:
    return {sub.id for sub in walk_scope(node) if isinstance(sub, ast.Name)}


def _self_reads_in(node: ast.AST) -> List[Tuple[str, int]]:
    reads: List[Tuple[str, int]] = []
    for sub in walk_scope(node):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
            and isinstance(sub.ctx, ast.Load)
        ):
            reads.append((sub.attr, sub.lineno))
    return reads


def attr_reads_reaching_return(fn_node: ast.AST) -> Dict[str, int]:
    """``self`` attributes whose read value flows into the return.

    Backward closure over local assignments: a local *flows* when it
    appears in a return expression or feeds (by assignment, subscript/
    attribute store, or accumulator call like ``state.update(...)``) a
    local that flows.  Attribute reads inside return expressions or
    inside the right-hand side of a flowing assignment are *captured* —
    anything else is read-and-dropped, which R009 reports.

    Non-``self`` parameters seed the flow: data stored into a
    caller-visible argument (``out["x"] = self._x``) escapes just like a
    return value does.

    Returns ``attr -> first captured read line``.
    """
    returns: List[ast.AST] = []
    #: (receiving local, contributing expression)
    feeds: List[Tuple[str, ast.AST]] = []
    for node in walk_scope(fn_node):
        if isinstance(node, ast.Return) and node.value is not None:
            returns.append(node.value)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                root, _path = _root_and_path(target)
                if root is not None and root != "self":
                    feeds.append((root, node.value))
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            root, _path = _root_and_path(node.target)
            if root is not None and root != "self":
                feeds.append((root, node.value))
        elif isinstance(node, ast.AugAssign):
            root, _path = _root_and_path(node.target)
            if root is not None and root != "self":
                feeds.append((root, node.value))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            # Loop variables feed from the iterable: when the element
            # flows into the snapshot, the collection it came from (a
            # ``self`` read, typically) is captured.
            for name_node in ast.walk(node.target):
                if isinstance(name_node, ast.Name):
                    feeds.append((name_node.id, node.iter))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    feeds.append((item.optional_vars.id, item.context_expr))
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            if isinstance(receiver, ast.Name) and node.func.attr in MUTATOR_METHODS:
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    feeds.append((receiver.id, arg))
    flowing: Set[str] = set()
    args = getattr(fn_node, "args", None)
    if args is not None:
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if arg.arg != "self":
                flowing.add(arg.arg)
    for expr in returns:
        flowing |= _names_in(expr)
    changed = True
    while changed:
        changed = False
        for local, expr in feeds:
            if local in flowing:
                fresh = _names_in(expr) - flowing
                if fresh:
                    flowing |= fresh
                    changed = True
    captured: Dict[str, int] = {}
    sources: List[ast.AST] = list(returns)
    sources.extend(expr for local, expr in feeds if local in flowing)
    for expr in sources:
        for attr, line in _self_reads_in(expr):
            captured.setdefault(attr, line)
            captured[attr] = min(captured[attr], line)
    return captured


@dataclass
class RestoreSummary:
    """What a restore-side method does to ``self`` state."""

    #: attrs written/mutated with data derived from the state parameter.
    derived: Set[str] = field(default_factory=set)
    #: attr -> first line it is written or mutated at all.
    touched: Dict[str, int] = field(default_factory=dict)


def restore_derivations(fn_node: ast.AST) -> RestoreSummary:
    """R009's restore half: which attribute stores derive from the input.

    Forward closure from the method's parameters: a local derives when
    bound (by assignment, loop target, or ``with`` alias) from an
    expression mentioning a deriving name, or when a method call on it
    is fed deriving data (``stats.restore_from(payload)`` makes
    ``stats`` derived).  Derivation also propagates *through*
    attributes already restored in the same method: after
    ``self._order = deque(state["order"])``, a later
    ``self._ids = set(self._order)`` rebuilds from restored state and
    counts as derived — the canonical derived-index idiom.

    An attribute store counts as *derived* when its statement mentions
    a deriving name or deriving attribute — covering
    ``self._x = state["x"]``, rebuild loops over ``state[...]``, and
    component hand-offs like ``self.clock.restore_state(state["clock"])``.
    A store that never involves derived data (``self._cursor = 0``)
    resets state the snapshot carried — the R009 restore finding.
    """
    summary = RestoreSummary()
    args = getattr(fn_node, "args", None)
    param_names: List[str] = []
    if args is not None:
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            param_names.append(arg.arg)
        if args.vararg is not None:
            param_names.append(args.vararg.arg)
        if args.kwarg is not None:
            param_names.append(args.kwarg.arg)
    deriving: Set[str] = {name for name in param_names if name != "self"}

    binds: List[Tuple[str, ast.AST]] = []
    for node in walk_scope(fn_node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name) and isinstance(
                        name_node.ctx, ast.Store
                    ):
                        binds.append((name_node.id, node.value))
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                binds.append((node.target.id, node.value))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for name_node in ast.walk(node.target):
                if isinstance(name_node, ast.Name):
                    binds.append((name_node.id, node.iter))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    binds.append((item.optional_vars.id, item.context_expr))
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            # ``stats.restore_from(payload)`` / ``bucket.append(item)``:
            # a method call on a local fed deriving data stores into the
            # local, so the local (and whatever it is later assigned to)
            # derives.
            receiver = node.func.value
            if isinstance(receiver, ast.Name) and (node.args or node.keywords):
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    binds.append((receiver.id, arg))

    #: self-attribute stores: (attr, line, whole statement/call node).
    stores: List[Tuple[str, int, ast.AST]] = []
    #: component hand-offs: (attr, call node) for self.attr.method(...).
    handoffs: List[Tuple[str, ast.AST]] = []
    for node in walk_scope(fn_node):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                root, path = _root_and_path(target)
                if root == "self" and path:
                    stores.append((path[0], node.lineno, node))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    root, path = _root_and_path(target)
                    if root == "self" and path:
                        stores.append((path[0], node.lineno, node))
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                root, path = _root_and_path(func)
                if root == "self" and len(path) >= 2:
                    attr = path[0]
                    if func.attr in MUTATOR_METHODS:
                        stores.append((attr, node.lineno, node))
                    else:
                        handoffs.append((attr, node))
            elif isinstance(func, ast.Name) and func.id in _HEAP_FUNCTIONS:
                if node.args:
                    root, path = _root_and_path(node.args[0])
                    if root == "self" and path:
                        stores.append((path[0], node.lineno, node))

    deriving_attrs: Set[str] = set()

    def _derives(node: ast.AST) -> bool:
        if _names_in(node) & deriving:
            return True
        return any(attr in deriving_attrs for attr, _ in _self_reads_in(node))

    changed = True
    while changed:
        changed = False
        for local, expr in binds:
            if local not in deriving and _derives(expr):
                deriving.add(local)
                changed = True
        for attr, _line, node in stores:
            if attr not in deriving_attrs and _derives(node):
                deriving_attrs.add(attr)
                changed = True
        for attr, call in handoffs:
            # Component hand-off: any method on the attr fed with
            # derived data restores into it.
            if attr not in deriving_attrs and _derives(call):
                deriving_attrs.add(attr)
                changed = True

    for attr, line, node in stores:
        if attr not in summary.touched or line < summary.touched[attr]:
            summary.touched[attr] = line
        if _derives(node):
            summary.derived.add(attr)
    for attr, call in handoffs:
        if _derives(call):
            summary.derived.add(attr)
    return summary
