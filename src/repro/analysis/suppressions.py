"""Suppression comments: opting out of a rule with a recorded reason.

Two comment forms are recognised (parsed with :mod:`tokenize`, since
:mod:`ast` drops comments):

* ``# repro: ignore[R001]`` — suppress the listed rules on this line;
  placed on a ``def`` or ``class`` header it suppresses them for the
  whole symbol's line range.
* ``# repro: ignore-file[R002]`` — suppress the listed rules for the
  entire file.

Several rules may be listed (``ignore[R001,R003]``), and everything
after ``--`` is a free-form justification::

    self._keys = []  # repro: ignore[R001] -- derived, rebuilt on restore

Suppressions are deliberately explicit: there is no bare ``ignore``
that silences every rule, so each opt-out names the contract it is
waiving.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

_PATTERN = re.compile(
    r"#\s*repro:\s*(?P<scope>ignore-file|ignore)\[(?P<rules>[A-Z0-9,\s]+)\]"
)


@dataclass(frozen=True, order=True)
class SuppressionDecl:
    """One suppression comment, as written: where, what scope, which rules.

    The burn-down pass matches raw findings back against declarations:
    a ``(declaration, rule)`` pair that suppressed nothing is *dead* and
    reported as a warning so stale opt-outs get deleted instead of
    silently masking future regressions.
    """

    line: int
    scope: str  # "line" | "file"
    rules: FrozenSet[str]


def parse_suppressions(
    source: str,
) -> Tuple[Dict[int, Set[str]], Set[str], List[SuppressionDecl]]:
    """Extract ``(line -> rule ids, file-level rule ids, declarations)``.

    Unreadable sources (tokenisation errors) yield no suppressions —
    the analyzer reports the parse failure separately.
    """
    per_line: Dict[int, Set[str]] = {}
    per_file: Set[str] = set()
    decls: List[SuppressionDecl] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PATTERN.search(token.string)
            if match is None:
                continue
            rules = {
                rule.strip()
                for rule in match.group("rules").split(",")
                if rule.strip()
            }
            if match.group("scope") == "ignore-file":
                per_file |= rules
                decls.append(
                    SuppressionDecl(token.start[0], "file", frozenset(rules))
                )
            else:
                per_line.setdefault(token.start[0], set()).update(rules)
                decls.append(
                    SuppressionDecl(token.start[0], "line", frozenset(rules))
                )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return per_line, per_file, decls
