"""CLI: ``python -m repro.analysis [--format text|json] [paths...]``.

Exit codes: 0 — clean; 1 — at least one non-suppressed finding;
2 — usage error or unparsable input file.  The ``repro-analyze``
console script (pyproject) routes here.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis import all_rules, run_analysis

_DEFAULT_PATHS = ["src/repro"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description=(
            "Check the repro engine contracts (snapshot completeness, "
            "hot-path purity, determinism, batch parity, purge safety)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.summary}")
        return 0
    paths: List[str] = options.paths or _DEFAULT_PATHS
    report = run_analysis(paths)
    if report.checked_files == 0 and not report.parse_errors:
        print(f"no python files found under: {', '.join(paths)}", file=sys.stderr)
        return 2
    print(report.render(options.format))
    if report.parse_errors:
        for path, error in report.parse_errors:
            print(f"parse error: {path}: {error}", file=sys.stderr)
        return 2
    return 1 if report.findings else 0


if __name__ == "__main__":
    sys.exit(main())
