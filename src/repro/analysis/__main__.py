"""CLI: ``python -m repro.analysis [options] [paths...]``.

Exit codes: 0 — clean; 1 — at least one non-suppressed finding;
2 — usage error, unparsable input file, or (with ``--changed-only``)
a git invocation that failed.  Dead-suppression warnings never affect
the exit code.  The ``repro-analyze`` console script (pyproject)
routes here.

``--changed-only <git-ref>`` keeps only findings in files that differ
from *git-ref* (``git diff --name-only <ref>`` plus untracked files) —
the editor/CI incremental mode.  The whole tree is still analyzed, so
interprocedural findings (a changed caller making an unchanged callee
async-reachable) are filtered by where they *land*, not by what
triggered them.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from typing import List, Optional, Sequence, Set

from repro.analysis import all_rules, run_analysis

_DEFAULT_PATHS = ["src/repro"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description=(
            "Check the repro engine contracts: snapshot completeness and "
            "round-trip dataflow, hot-path purity, determinism, batch "
            "parity, purge safety, and asyncio safety (await-atomicity, "
            "blocking calls, task/resource hygiene)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--changed-only",
        metavar="GIT_REF",
        default=None,
        help=(
            "report only findings in files changed relative to GIT_REF "
            "(git diff --name-only GIT_REF, plus untracked files); the "
            "full tree is still analyzed for call-graph context"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _changed_files(ref: str) -> Optional[Set[str]]:
    """Absolute paths changed vs *ref*, or None when git fails."""
    changed: Set[str] = set()
    for args in (
        ["git", "diff", "--name-only", ref],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            result = subprocess.run(
                args, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError) as exc:
            message = getattr(exc, "stderr", "") or str(exc)
            print(
                f"--changed-only: '{' '.join(args)}' failed: "
                f"{message.strip()}",
                file=sys.stderr,
            )
            return None
        for line in result.stdout.splitlines():
            if line.strip():
                changed.add(os.path.abspath(line.strip()))
    return changed


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.summary}")
        return 0
    paths: List[str] = options.paths or _DEFAULT_PATHS
    report = run_analysis(paths)
    if report.checked_files == 0 and not report.parse_errors:
        print(f"no python files found under: {', '.join(paths)}", file=sys.stderr)
        return 2
    if options.changed_only is not None:
        changed = _changed_files(options.changed_only)
        if changed is None:
            return 2
        report.findings = [
            finding
            for finding in report.findings
            if os.path.abspath(finding.path) in changed
        ]
        report.dead_suppressions = [
            entry
            for entry in report.dead_suppressions
            if os.path.abspath(entry[0]) in changed
        ]
    print(report.render(options.format))
    if report.parse_errors:
        for path, error in report.parse_errors:
            print(f"parse error: {path}: {error}", file=sys.stderr)
        return 2
    return 1 if report.findings else 0


if __name__ == "__main__":
    sys.exit(main())
