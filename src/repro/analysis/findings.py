"""Findings: what a rule reports, and how it is rendered.

A :class:`Finding` is one violated invariant, anchored to a file and
line so editors and CI annotations can jump to it.  Findings are value
objects — rules yield them, the analyzer filters suppressed ones, the
CLI renders the survivors as text or JSON.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: A suppression comment that silenced nothing: ``(path, line, rule)``.
DeadSuppression = Tuple[str, int, str]


class Severity(enum.Enum):
    """How bad a finding is; ERROR findings fail the build."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to ``path:line``.

    Attributes
    ----------
    path:
        File the finding lives in (as given to the analyzer).
    line:
        1-indexed line the finding anchors to.
    rule:
        Rule identifier (``R001`` … ``R009``).
    symbol:
        Dotted name of the offending symbol (``Class.attr`` or
        ``Class.method``) — what a reader greps for.
    message:
        One-sentence statement of the violated contract.
    severity:
        :class:`Severity`; the CLI exits non-zero when any ERROR
        finding survives suppression filtering.
    """

    path: str
    line: int
    rule: str
    symbol: str
    message: str
    severity: Severity = Severity.ERROR

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.rule} "
            f"[{self.severity.value}] {self.symbol}: {self.message}"
        )


def render_text(
    findings: List[Finding],
    checked: int,
    suppressed: int,
    dead: Optional[Sequence[DeadSuppression]] = None,
) -> str:
    """Human-readable report (the committed baseline uses this format).

    Dead suppressions render as warning lines above the summary: they
    never fail the run, but leaving them in-tree means a future real
    finding at that site would be silently masked.
    """
    lines = [finding.render() for finding in sorted(findings)]
    for path, line, rule in sorted(dead or ()):
        lines.append(
            f"{path}:{line}: {rule} [warning] suppression matches no "
            f"finding — dead comment, remove it"
        )
    noun = "finding" if len(findings) == 1 else "findings"
    summary = (
        f"{len(findings)} {noun} ({suppressed} suppressed) "
        f"in {checked} files"
    )
    if dead:
        summary += f", {len(dead)} dead suppression" + (
            "s" if len(dead) != 1 else ""
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: List[Finding],
    checked: int,
    suppressed: int,
    dead: Optional[Sequence[DeadSuppression]] = None,
) -> str:
    """Machine-readable report for the CI gate."""
    return json.dumps(
        {
            "version": 1,
            "checked_files": checked,
            "suppressed": suppressed,
            "dead_suppressions": [
                {"path": path, "line": line, "rule": rule}
                for path, line, rule in sorted(dead or ())
            ],
            "findings": [finding.as_dict() for finding in sorted(findings)],
        },
        indent=2,
        sort_keys=True,
    )
