"""Rule framework and registry.

A rule is a class with an ``rule_id``, a one-line ``summary``, and a
``check(project)`` generator yielding
:class:`~repro.analysis.findings.Finding` objects.  Rules see the whole
:class:`~repro.analysis.model.Project` so they can reason across
modules (inheritance, call graphs); they must not read files or mutate
the model.

Adding a rule: subclass :class:`Rule` in a new module under
``repro/analysis/rules/``, give it the next free ``R0xx`` id, and list
it in :data:`ALL_RULES` below.  ``docs/analysis.md`` documents the
conventions a rule should follow (anchor findings at the declaration
the developer must edit, name the attribute/method in the message).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.analysis.findings import Finding
from repro.analysis.model import Project


class Rule:
    """Base class for analysis rules."""

    rule_id: str = ""
    summary: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, id-ordered."""
    from repro.analysis.rules.snapshot_completeness import SnapshotCompleteness
    from repro.analysis.rules.hot_path_purity import HotPathPurity
    from repro.analysis.rules.determinism import Determinism
    from repro.analysis.rules.batch_parity import BatchParity
    from repro.analysis.rules.purge_safety import PurgeSafety
    from repro.analysis.rules.await_atomicity import AwaitAtomicity
    from repro.analysis.rules.blocking_async import BlockingInCoroutine
    from repro.analysis.rules.task_hygiene import TaskHygiene
    from repro.analysis.rules.snapshot_dataflow import SnapshotDataflow

    rules: List[Rule] = [
        SnapshotCompleteness(),
        HotPathPurity(),
        Determinism(),
        BatchParity(),
        PurgeSafety(),
        AwaitAtomicity(),
        BlockingInCoroutine(),
        TaskHygiene(),
        SnapshotDataflow(),
    ]
    return sorted(rules, key=lambda rule: rule.rule_id)
