"""R003 — output determinism.

The recovery layer verifies exactly-once delivery by replaying the WAL
and comparing emissions, position by position, against the delivery
log.  That comparison — and the paper's out-of-order-equals-in-order
equivalence check — assumes the engine emits matches in a reproducible
order.  Iterating a ``set`` anywhere on an output-producing path
breaks that: Python's set order depends on insertion history and hash
seeding, so two runs over identical input can emit identical matches
in different orders and fail verification.

The rule walks functions reachable from output-producing roots
(``feed``/``feed_batch``/``feed_many``/``close``/``run``/``_flush``/
``_process_event``/``_on_punctuation``/``_deliver``/``_emit`` methods
of any analyzed class) and flags ``for``-loops and comprehensions whose
iterable is set-typed: a set literal/constructor/comprehension, a
``self`` attribute declared or annotated as ``set``/``frozenset``
(including via a local alias), or a set-producing binary operation.
Wrapping the iterable in ``sorted(...)`` fixes the finding — that is
the repair the engines use (e.g. revoked-key emission).

Plain ``dict`` iteration is *not* flagged: insertion order is a
language guarantee since Python 3.7, and the engines' dicts are keyed
by arrival order, which is exactly the reproducible order replay needs.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.analysis.callgraph import Reachability
from repro.analysis.findings import Finding
from repro.analysis.model import ClassInfo, FunctionInfo, Project
from repro.analysis.rules import Rule

_ROOT_METHODS = frozenset(
    {
        "feed",
        "feed_batch",
        "feed_many",
        "close",
        "run",
        "flush",
        "_flush",
        "_process_event",
        "_on_punctuation",
        "_deliver",
        "_emit",
    }
)


def _set_typed_attrs(project: Project, fn: FunctionInfo) -> Set[str]:
    attrs: Set[str] = set()
    if fn.class_name is None:
        return attrs
    for cls in project.class_index.get(fn.class_name, ()):
        if fn.name not in cls.methods or cls.methods[fn.name] is not fn:
            continue
        for klass in project.mro(cls):
            attrs |= klass.set_typed_attrs
    return attrs


def _expr_is_set(node: ast.AST, set_attrs: Set[str], aliases: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id == "self" and node.attr in set_attrs:
            return True
    if isinstance(node, ast.Name) and node.id in aliases:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _expr_is_set(node.left, set_attrs, aliases) or _expr_is_set(
            node.right, set_attrs, aliases
        )
    return False


def _set_aliases(fn: FunctionInfo, set_attrs: Set[str]) -> Set[str]:
    """Locals bound (flow-insensitively) to a set-typed expression."""
    aliases: Set[str] = set()
    # Two passes so ``a = self._keys; b = a`` resolves.
    for _ in range(2):
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if _expr_is_set(node.value, set_attrs, aliases):
                aliases.add(target.id)
    return aliases


def _iterables(fn: FunctionInfo) -> List[ast.expr]:
    """Every expression the function iterates (for-loops, comprehensions)."""
    exprs: List[ast.expr] = []
    for node in ast.walk(fn.node):
        if isinstance(node, ast.For):
            exprs.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            exprs.extend(gen.iter for gen in node.generators)
    return exprs


class Determinism(Rule):
    rule_id = "R003"
    summary = (
        "output-producing paths must not iterate sets; wrap the "
        "iterable in sorted()"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        roots: List[FunctionInfo] = []
        for module in project.modules:
            for cls in module.classes.values():
                for name in _ROOT_METHODS:
                    fn = cls.methods.get(name)
                    if fn is not None and not fn.is_stub:
                        roots.append(fn)
        reach = Reachability(project, roots)
        seen = set()
        for fn in reach.functions():
            set_attrs = _set_typed_attrs(project, fn)
            aliases = _set_aliases(fn, set_attrs)
            for expr in _iterables(fn):
                if not _expr_is_set(expr, set_attrs, aliases):
                    continue
                key = (fn.module.path, expr.lineno)
                if key in seen:
                    continue
                seen.add(key)
                yield Finding(
                    path=fn.module.path,
                    line=expr.lineno,
                    rule=self.rule_id,
                    symbol=fn.qualname,
                    message=(
                        "iterates a set on an output-producing path "
                        f"({reach.describe_chain(fn.qualname)}); set order "
                        "is not reproducible across runs — iterate "
                        "sorted(...) instead"
                    ),
                )
