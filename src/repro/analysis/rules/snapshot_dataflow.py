"""R009 — snapshot round-trip dataflow.

R001 checks the snapshot/restore contract by *name*: every mutable
attribute must be mentioned by a snapshot method and a restore method.
Names are necessary but not sufficient — a snapshot method can read
``self._pending`` into a local that never reaches the returned dict,
and a restore method can mention ``self._cursor`` only to reset it to a
constant.  Both pass R001 and both silently lose state across a
crash-recovery round trip, which is precisely the divergence the
paper's exactly-once replay argument forbids.

R009 upgrades the check to def-use, via
:mod:`repro.analysis.dataflow`:

* **capture flow** — for every snapshot-side method, the backward
  closure from its return expressions (and its non-``self`` output
  parameters) over local assignments and accumulator calls
  (``state.update(...)``, ``out["k"] = ...``).  A mutable attribute
  that is *read* by a snapshot method but whose value never flows into
  that closure is read-and-dropped.
* **restore derivation** — for every restore-side method, the forward
  closure from its parameters over local binds (assignments, loop and
  ``with`` targets).  An attribute the method writes or mutates without
  any derived data involved — ``self._cursor = 0`` — is reset, not
  restored.  Rebuild idioms stay clean: ``self._index = {}`` followed
  by a loop inserting ``state["items"]`` derives the attribute on the
  second statement.  Component hand-offs
  (``self.clock.restore_state(state["clock"])``) derive the component
  attribute.

Only attributes R001 already considers mutable round-trip state are
examined, and attributes R001 itself reports (never mentioned at all)
are skipped — each gap is reported exactly once, at its strongest rule.
"""

from __future__ import annotations

from typing import Dict, Iterator, Set, Tuple

from repro.analysis.dataflow import (
    RestoreSummary,
    attr_reads_reaching_return,
    restore_derivations,
)
from repro.analysis.findings import Finding
from repro.analysis.model import (
    RESTORE_METHODS,
    SNAPSHOT_METHODS,
    ClassInfo,
    FunctionInfo,
    Project,
)
from repro.analysis.rules import Rule
from repro.analysis.rules.snapshot_completeness import (
    collect_mutable_attrs,
    participates_in_round_trip,
)


class SnapshotDataflow(Rule):
    rule_id = "R009"
    summary = (
        "snapshot reads must flow into the returned state and restore "
        "writes must derive from it (def-use upgrade of R001)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        emitted: Set[Tuple[str, int, str, str]] = set()
        for module in project.modules:
            for cls in module.classes.values():
                for finding in self._check_class(project, cls):
                    key = (
                        finding.path,
                        finding.line,
                        finding.symbol,
                        finding.message,
                    )
                    if key not in emitted:
                        emitted.add(key)
                        yield finding

    def _check_class(
        self, project: Project, cls: ClassInfo
    ) -> Iterator[Finding]:
        if not participates_in_round_trip(project, cls):
            return
        mutable = collect_mutable_attrs(project, cls)

        snapshot_fns: list[FunctionInfo] = []
        restore_fns: list[FunctionInfo] = []
        for klass in project.mro(cls):
            for method in klass.methods.values():
                if method.is_stub:
                    continue
                if method.name in SNAPSHOT_METHODS:
                    snapshot_fns.append(method)
                elif method.name in RESTORE_METHODS:
                    restore_fns.append(method)

        yield from self._capture_findings(mutable, snapshot_fns)
        yield from self._restore_findings(mutable, restore_fns)

    def _capture_findings(
        self,
        mutable: Dict[str, Tuple[ClassInfo, int]],
        snapshot_fns: list[FunctionInfo],
    ) -> Iterator[Finding]:
        captured_by_name: Set[str] = set()
        flowing: Set[str] = set()
        for fn in snapshot_fns:
            captured_by_name |= set(fn.self_reads)
            flowing |= set(attr_reads_reaching_return(fn.node))
        for attr in sorted(mutable):
            if attr.startswith("__"):
                continue
            if attr not in captured_by_name:
                continue  # never mentioned: that is R001's finding
            if attr in flowing:
                continue
            fn, line = self._read_site(snapshot_fns, attr)
            if fn is None:
                continue
            yield Finding(
                path=fn.module.path,
                line=line,
                rule=self.rule_id,
                symbol=fn.qualname,
                message=(
                    f"snapshot method reads 'self.{attr}' but the value "
                    f"never flows into the returned snapshot state — the "
                    f"read is dropped and restore cannot recover '{attr}'"
                ),
            )

    @staticmethod
    def _read_site(
        snapshot_fns: list[FunctionInfo], attr: str
    ) -> Tuple[FunctionInfo, int] | Tuple[None, int]:
        for fn in snapshot_fns:
            if attr in fn.self_reads:
                return fn, fn.self_reads[attr]
        return None, 0

    def _restore_findings(
        self,
        mutable: Dict[str, Tuple[ClassInfo, int]],
        restore_fns: list[FunctionInfo],
    ) -> Iterator[Finding]:
        # Union across the restore side: one MRO method may reset an
        # attribute another one rebuilds from state (split-restore).
        touched: Dict[str, Tuple[FunctionInfo, int]] = {}
        derived: Set[str] = set()
        for fn in restore_fns:
            summary: RestoreSummary = restore_derivations(fn.node)
            derived |= summary.derived
            for attr, line in summary.touched.items():
                touched.setdefault(attr, (fn, line))
        for attr in sorted(touched):
            if attr.startswith("__") or attr not in mutable:
                continue
            if attr in derived:
                continue
            fn, line = touched[attr]
            yield Finding(
                path=fn.module.path,
                line=line,
                rule=self.rule_id,
                symbol=fn.qualname,
                message=(
                    f"restore method assigns 'self.{attr}' without "
                    f"deriving it from the snapshot state — the round "
                    f"trip resets '{attr}' instead of restoring it"
                ),
            )
