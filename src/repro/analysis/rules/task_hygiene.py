"""R008 — task and resource hygiene in asyncio code.

Two leak shapes that testing rarely catches:

* **Fire-and-forget tasks.**  ``loop.create_task(coro())`` as a bare
  expression statement discards the only handle to the task.  CPython
  keeps only a weak reference to running tasks, so the task can be
  garbage-collected mid-flight, its exceptions vanish into the
  "exception was never retrieved" void, and shutdown cannot cancel or
  drain it — the gateway's liveness tick kept running after ``stop()``
  for exactly this reason.  Retain the handle, and cancel-and-await it
  on shutdown.
* **Half-closed stream writers.**  ``StreamWriter.close()`` only
  *schedules* the close; without ``await writer.wait_closed()`` the
  transport and its buffers linger, and on process exit the loop warns
  about unclosed transports after the test that leaked them has already
  passed.

Detection is intra-function and syntactic.  A writer receiver is
recognised by annotation (``asyncio.StreamWriter``) or by the exact
conventional name ``writer`` (loop variables over writer sets); a
``close()`` on one is a finding unless the same function also awaits
``wait_closed()`` on the same receiver.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.model import FunctionInfo, Project, _root_and_path
from repro.analysis.rules import Rule

_SPAWN_NAMES = frozenset({"create_task", "ensure_future"})


def _call_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _receiver_key(expr: ast.AST) -> Optional[Tuple[str, Tuple[str, ...]]]:
    root, path = _root_and_path(expr)
    if root is None:
        return None
    return root, tuple(path)


def _is_writer_key(
    key: Tuple[str, Tuple[str, ...]], annotated: Set[str]
) -> bool:
    # Annotation is the reliable signal; the name fallback is the exact
    # conventional local ``writer`` (loop variables over writer sets).
    # Substring matching would swallow unrelated objects that happen to
    # be called ``*_writer`` (journal writers, CSV writers).
    root, path = key
    final = path[-1] if path else root
    return final in annotated or final == "writer"


def _annotated_writers(fn_node: ast.AST) -> Set[str]:
    """Names annotated ``StreamWriter`` anywhere in the function."""
    names: Set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                if arg.annotation is not None and _mentions_stream_writer(
                    arg.annotation
                ):
                    names.add(arg.arg)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            if _mentions_stream_writer(node.annotation):
                names.add(node.target.id)
    return names


def _mentions_stream_writer(annotation: ast.AST) -> bool:
    for sub in ast.walk(annotation):
        if isinstance(sub, ast.Attribute) and sub.attr == "StreamWriter":
            return True
        if isinstance(sub, ast.Name) and sub.id == "StreamWriter":
            return True
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            if "StreamWriter" in sub.value:
                return True
    return False


class TaskHygiene(Rule):
    rule_id = "R008"
    summary = (
        "task handles must be retained (awaited or cancelled) and stream "
        "writers closed with wait_closed()"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            functions: List[FunctionInfo] = list(module.functions.values())
            for cls in module.classes.values():
                functions.extend(cls.methods.values())
            for fn in functions:
                yield from self._check_fire_and_forget(fn)
                yield from self._check_writer_close(fn)

    def _check_fire_and_forget(self, fn: FunctionInfo) -> Iterator[Finding]:
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Expr):
                continue
            value = node.value
            if isinstance(value, ast.Await):
                continue  # awaited inline: not fire-and-forget
            if not isinstance(value, ast.Call):
                continue
            name = _call_name(value)
            if name not in _SPAWN_NAMES:
                continue
            yield Finding(
                path=fn.module.path,
                line=value.lineno,
                rule=self.rule_id,
                symbol=fn.qualname,
                message=(
                    f"result of '{name}' is discarded — the task may be "
                    f"garbage-collected mid-flight, its exceptions are "
                    f"never retrieved, and shutdown cannot cancel it "
                    f"(retain the handle; cancel and await it on stop)"
                ),
            )

    def _check_writer_close(self, fn: FunctionInfo) -> Iterator[Finding]:
        annotated = _annotated_writers(fn.node)
        closes: List[Tuple[Tuple[str, Tuple[str, ...]], int]] = []
        waited: Set[Tuple[str, Tuple[str, ...]]] = set()
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            key = _receiver_key(node.func.value)
            if key is None:
                continue
            if node.func.attr == "close" and _is_writer_key(key, annotated):
                closes.append((key, node.lineno))
            elif node.func.attr == "wait_closed":
                waited.add(key)
        for key, line in closes:
            if key in waited:
                continue
            root, path = key
            display = ".".join((root,) + path)
            yield Finding(
                path=fn.module.path,
                line=line,
                rule=self.rule_id,
                symbol=fn.qualname,
                message=(
                    f"'{display}.close()' without 'await "
                    f"{display}.wait_closed()' — close() only schedules "
                    f"the teardown; the transport and its buffers leak "
                    f"until the loop gets around to it"
                ),
            )
