"""R007 — blocking calls in async-reachable code.

One thread drives the whole gateway: liveness ticks, watermark
publication, every client connection.  A synchronous ``open``/``write``
or ``time.sleep`` anywhere a coroutine can reach does not slow one
request — it freezes *all* of them, which is how a journal append on a
slow disk turns into spurious liveness expiries for perfectly healthy
sources.

The rule computes the async-context closure
(:func:`repro.analysis.callgraph.async_reachability`): every function a
coroutine transitively calls — awaited or plain — runs on the loop
thread.  Calls matching the blocking vocabulary below are findings,
annotated with the coroutine chain that reaches them.  The sanctioned
escape hatches produce no edge by construction: callables handed to
``loop.run_in_executor`` or ``threading.Thread(target=...)`` run off
the loop, so the closure excludes callback-argument references.

Not in the vocabulary, deliberately: ``print`` (diagnostics are cheap
and line-buffered), ``StreamWriter.write``/``drain`` (the async API is
sync-write-then-await-drain by design), and in-memory ``io`` objects.
Deliberately synchronous durability (the recovery WAL's group-commit
fsync) opts out with ``# repro: ignore-file[R007]`` and a recorded
justification.
"""

from __future__ import annotations

from typing import Iterator, Optional, Set, Tuple

from repro.analysis.callgraph import async_reachability
from repro.analysis.findings import Finding
from repro.analysis.model import CallSite, ModuleInfo, Project
from repro.analysis.rules import Rule

#: Fully-resolved dotted names that block the calling thread.
_BLOCKING_EXACT = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "os.wait",
        "os.waitpid",
        "os.fsync",
        "socket.create_connection",
        "socket.getaddrinfo",
        "open",
        "input",
    }
)

#: Dotted prefixes that are wholesale blocking.
_BLOCKING_PREFIXES = (
    "subprocess.",
    "urllib.request.",
    "requests.",
)

#: Method names that are blocking I/O regardless of receiver: the
#: ``pathlib.Path`` file verbs this codebase uses (receiver types for
#: Path objects are rarely statically known) plus blocking socket ops.
_BLOCKING_METHODS = frozenset(
    {
        "open",
        "unlink",
        "mkdir",
        "rmdir",
        "touch",
        "rename",
        "replace",
        "write_text",
        "read_text",
        "write_bytes",
        "read_bytes",
        # raw-socket verbs
        "recv",
        "recv_into",
        "sendall",
        "accept",
        "makefile",
    }
)

#: Call-site kinds the method-name vocabulary applies to.  ``expr_method``
#: is what catches ``(self.directory / JOURNAL_NAME).open("a")``.
_METHOD_KINDS = ("attr_method", "typed_method", "dotted", "expr_method")


def _resolve_dotted(module: ModuleInfo, call: CallSite) -> Optional[str]:
    """Fully-qualified dotted name of a call, or None if not name-like."""
    if call.kind == "name":
        return module.imports.get(call.target, call.target)
    if call.kind == "dotted" and call.dotted:
        root, _, rest = call.dotted.partition(".")
        resolved_root = module.imports.get(root, root)
        return f"{resolved_root}.{rest}" if rest else resolved_root
    return None


def _blocking_label(module: ModuleInfo, call: CallSite) -> Optional[str]:
    dotted = _resolve_dotted(module, call)
    if dotted is not None:
        if dotted in _BLOCKING_EXACT:
            return dotted
        if any(dotted.startswith(prefix) for prefix in _BLOCKING_PREFIXES):
            return dotted
    if call.target in _BLOCKING_METHODS and call.kind in _METHOD_KINDS:
        receiver = call.receiver_attr or call.receiver_type or "<expr>"
        return f"{receiver}.{call.target}"
    return None


class BlockingInCoroutine(Rule):
    rule_id = "R007"
    summary = (
        "code async-reachable from a coroutine must not perform blocking "
        "I/O, sleep, or spawn subprocesses on the event loop"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        reach = async_reachability(project)
        seen: Set[Tuple[str, int, str]] = set()
        for fn in reach.functions():
            for call in fn.calls:
                label = _blocking_label(fn.module, call)
                if label is None:
                    continue
                key = (fn.module.path, call.line, label)
                if key in seen:
                    continue
                seen.add(key)
                yield Finding(
                    path=fn.module.path,
                    line=call.line,
                    rule=self.rule_id,
                    symbol=fn.qualname,
                    message=(
                        f"blocking call to '{label}' stalls the event loop: "
                        f"{reach.describe_chain(fn.qualname)} (move it to "
                        f"loop.run_in_executor, a worker thread, or an async "
                        f"equivalent)"
                    ),
                )
