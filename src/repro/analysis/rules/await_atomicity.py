"""R006 — await-atomicity of shared instance state.

A single event loop gives every coroutine atomicity *between* awaits
and none across them.  The gateway's admission ladder, liveness table
and watermark merge all follow the same shape — read shared instance
state, decide, write it back — and that shape is only correct while no
``await`` sits between the read and the write.  The moment one does,
another connection's coroutine can interleave, and the write commits a
decision based on a world that no longer exists: a lost epoch bump, a
resurrection of a fenced source, a watermark regressing.

The rule runs :func:`repro.analysis.dataflow.stale_attr_writes` — a
CFG fixpoint — over every ``async def`` method and reports each write
or in-place mutation of a ``self`` attribute whose value basis (the
last read of that attribute on some path) precedes an await the
coroutine may suspend at.  Two idioms are recognised as safe and
terminate the window:

* **re-validation** — reading the attribute again after the await
  refreshes the basis (the generation/epoch-check pattern);
* **lock regions** — a read and all awaits up to the write inside one
  ``async with <...lock/mutex/semaphore...>`` block.

Writes complete before any await (classic RMW) never fire: the write
itself closes the window.
"""

from __future__ import annotations

from typing import Iterator, List, Set, Tuple

from repro.analysis.dataflow import stale_attr_writes
from repro.analysis.findings import Finding
from repro.analysis.model import FunctionInfo, Project
from repro.analysis.rules import Rule


class AwaitAtomicity(Rule):
    rule_id = "R006"
    summary = (
        "a read-modify-write of shared instance state must not span an "
        "await without a lock or re-validation"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            methods: List[FunctionInfo] = []
            for cls in module.classes.values():
                methods.extend(cls.methods.values())
            for fn in methods:
                if not fn.is_async or fn.is_stub:
                    continue
                reported: Set[Tuple[str, int]] = set()
                for stale in stale_attr_writes(fn.node):
                    key = (stale.attr, stale.write_line)
                    if key in reported:
                        continue
                    reported.add(key)
                    yield Finding(
                        path=module.path,
                        line=stale.write_line,
                        rule=self.rule_id,
                        symbol=fn.qualname,
                        message=(
                            f"write to 'self.{stale.attr}' uses a value read "
                            f"on line {stale.read_line}, but the coroutine "
                            f"may suspend at the await on line "
                            f"{stale.await_line} in between — a concurrent "
                            f"task can change '{stale.attr}' and this write "
                            f"clobbers it (hold a lock across the section or "
                            f"re-read after awaiting)"
                        ),
                    )
