"""R004 — batch/snapshot parity.

PR 1 added a batched hot path (``feed_batch``) and PR 2 made every
engine checkpointable (``snapshot``/``restore``).  Both are *protocol*
surfaces: the partitioned fan-out batches per partition, and the
recovery runner checkpoints whatever engine it wraps.  An engine
lacking any of the three either crashes those drivers or — worse —
silently falls off the fast/recoverable path.

The columnar feed path (``feed_colbatch``, PR 10) joined the protocol
for the same reason: the pipelined fan-out ships ``EventBatch``
payloads to whatever sub-engine class a partition holds, so an engine
outside the ``feed_colbatch`` surface silently loses the columnar
fast path (the ``Engine`` base provides the reference implementation;
defining ``feed`` while dodging the base class is the hazard).

The rule fires on every engine-protocol class (one that derives from
``Engine`` or defines ``_process_event``) that defines a concrete
``feed`` but does not define *or inherit* a concrete ``feed_batch``,
``feed_colbatch``, ``snapshot``, or ``restore``.  Non-engine wrappers
that happen to have a ``feed`` method (drivers, adapters, registries)
are out of scope by design: they forward to an engine rather than
implement the protocol.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.model import Project
from repro.analysis.rules import Rule

_REQUIRED = ("feed_batch", "feed_colbatch", "snapshot", "restore")


class BatchParity(Rule):
    rule_id = "R004"
    summary = (
        "an engine defining feed must define or inherit feed_batch, "
        "feed_colbatch, snapshot, and restore"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            for cls in module.classes.values():
                if not project.is_engine_class(cls):
                    continue
                feed = cls.methods.get("feed")
                if feed is None or feed.is_stub:
                    continue
                for required in _REQUIRED:
                    resolved = project.resolve_method(cls, required)
                    if resolved is not None and not resolved.is_stub:
                        continue
                    yield Finding(
                        path=module.path,
                        line=feed.line,
                        rule=self.rule_id,
                        symbol=f"{cls.name}.{required}",
                        message=(
                            f"engine defines feed but neither defines nor "
                            f"inherits a concrete '{required}'"
                        ),
                    )
