"""R002 — hot-path purity.

``feed``/``feed_batch`` are the per-event hot paths and, through the
recovery layer, the *replay* paths: after a crash the WAL re-feeds the
same events and the delivery log is diffed against what the engine
emits.  Anything environment-dependent on that path — wall-clock
reads, unseeded randomness, console or file I/O — makes replay diverge
from the original run and breaks both exactly-once delivery and the
benchmark's reproducibility.

The rule walks the call graph reachable from every engine-protocol
class's ``feed``/``feed_batch`` (see
:mod:`repro.analysis.callgraph`) and reports calls matching the
forbidden vocabulary below.  Deliberate I/O components (the spilling
reorder buffer trades purity for bounded memory by design) opt out
with ``# repro: ignore-file[R002]`` and a justification.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.analysis.callgraph import Reachability
from repro.analysis.findings import Finding
from repro.analysis.model import CallSite, FunctionInfo, ModuleInfo, Project
from repro.analysis.rules import Rule

#: Fully-resolved dotted names that read the environment.
_FORBIDDEN_EXACT = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.sleep",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "print",
        "open",
        "input",
    }
)

#: Dotted prefixes that are wholesale forbidden (module-level RNG state
#: is process-global and unseeded by default; sockets are I/O).
_FORBIDDEN_PREFIXES = (
    "random.",
    "secrets.",
    "socket.",
    "urllib.",
    "http.",
    "requests.",
    "tempfile.",
)

#: Method names that are file I/O regardless of receiver — the
#: ``pathlib.Path`` verbs this codebase uses for spilling and WALs.
#: Receiver types for Path objects are rarely statically known, so
#: these match on the method name alone.
_FORBIDDEN_METHODS = frozenset(
    {
        "open",
        "unlink",
        "mkdir",
        "rmdir",
        "touch",
        "rename",
        "replace",
        "write_text",
        "read_text",
        "write_bytes",
        "read_bytes",
    }
)


def _resolve_dotted(module: ModuleInfo, call: CallSite) -> Optional[str]:
    """Fully-qualified dotted name of a call, or None if not name-like."""
    if call.kind == "name":
        return module.imports.get(call.target, call.target)
    if call.kind == "dotted" and call.dotted:
        root, _, rest = call.dotted.partition(".")
        resolved_root = module.imports.get(root, root)
        return f"{resolved_root}.{rest}" if rest else resolved_root
    return None


def _violation(dotted: str) -> bool:
    if dotted in _FORBIDDEN_EXACT:
        return True
    return any(dotted.startswith(prefix) for prefix in _FORBIDDEN_PREFIXES)


class HotPathPurity(Rule):
    rule_id = "R002"
    summary = (
        "code reachable from feed/feed_batch must not read the clock or "
        "RNG, perform I/O, or print"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        roots: List[FunctionInfo] = []
        for module in project.modules:
            for cls in module.classes.values():
                if not project.is_engine_class(cls):
                    continue
                for name in ("feed", "feed_batch"):
                    fn = cls.methods.get(name)
                    if fn is not None and not fn.is_stub:
                        roots.append(fn)
        reach = Reachability(project, roots)
        seen = set()
        for fn in reach.functions():
            for call in fn.calls:
                dotted = _resolve_dotted(fn.module, call)
                if dotted is None or not _violation(dotted):
                    if call.target not in _FORBIDDEN_METHODS:
                        continue
                    if call.kind not in ("attr_method", "typed_method", "dotted"):
                        continue
                    receiver = call.receiver_attr or call.receiver_type or "?"
                    dotted = f"{receiver}.{call.target}"
                key = (fn.module.path, call.line, dotted)
                if key in seen:
                    continue
                seen.add(key)
                yield Finding(
                    path=fn.module.path,
                    line=call.line,
                    rule=self.rule_id,
                    symbol=fn.qualname,
                    message=(
                        f"call to '{dotted}' on the hot path: "
                        f"{reach.describe_chain(fn.qualname)}"
                    ),
                )
