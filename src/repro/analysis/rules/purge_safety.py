"""R005 — purge safety.

Purging is where the paper's state-management argument gets sharp:
K-slack guarantees events older than ``max_ts - K`` cannot contribute
to new matches, so purge walks stacks/buffers and drops the dead
prefix.  The natural way to write that walk — iterate the container
and remove as you go — is exactly the bug Python punishes
nondeterministically: ``list.remove`` shifts elements under the
iterator (silently skipping survivors, i.e. *under*-purging or
*over*-purging live state), and dict/set resizes raise ``RuntimeError``
only sometimes.

The rule inspects every method whose name suggests eviction
(``purge``/``evict``/``expire``/``shed``/``trim`` as a word in the
name) and flags loops that mutate the very container they iterate —
directly (``for s in self.stacks: self.stacks.remove(s)``), through
the loop's own alias (``buf = self._buffer; for e in buf:
buf.pop()``), or via ``del`` on a subscript of the iterated container.
Iterating a copy (``list(...)``), a slice, or collecting victims first
and deleting after the loop all pass.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.analysis.findings import Finding
from repro.analysis.model import MUTATOR_METHODS, FunctionInfo, Project
from repro.analysis.rules import Rule

_PURGE_NAME = re.compile(r"(?:^|_)(purge|evict|expire|shed|trim)(?:_|$)")

#: Accessors that iterate the underlying container's storage.
_VIEW_METHODS = frozenset({"values", "keys", "items"})


def _iter_key(expr: ast.AST) -> Optional[str]:
    """Canonical key for 'what container does this expression iterate'.

    ``self.stacks`` -> ``self.stacks``; ``self._buf.values()`` ->
    ``self._buf``; a bare local ``buf`` -> ``buf``.  Calls other than
    dict views (``list(...)``, ``sorted(...)``, slices) return None —
    they materialise a copy, so mutating the source is safe.
    """
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Attribute) and func.attr in _VIEW_METHODS:
            return _iter_key(func.value)
        return None
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        inner = _iter_key(expr.value)
        return f"{inner}.{expr.attr}" if inner else None
    return None


def _mutation_of(node: ast.AST, key: str) -> Optional[int]:
    """Line of the first statement in *node* mutating container *key*."""
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            func = child.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS
                and _iter_key(func.value) == key
            ):
                return child.lineno
        elif isinstance(child, ast.Delete):
            for target in child.targets:
                if isinstance(target, ast.Subscript):
                    if _iter_key(target.value) == key:
                        return child.lineno
    return None


class PurgeSafety(Rule):
    rule_id = "R005"
    summary = (
        "purge/evict methods must not mutate a container while "
        "iterating it"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            functions = list(module.functions.values())
            for cls in module.classes.values():
                functions.extend(cls.methods.values())
            for fn in functions:
                if not _PURGE_NAME.search(fn.name):
                    continue
                yield from self._check_function(fn)

    def _check_function(self, fn: FunctionInfo) -> Iterator[Finding]:
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.For):
                continue
            key = _iter_key(node.iter)
            if key is None:
                continue
            line = None
            for stmt in node.body:
                line = _mutation_of(stmt, key)
                if line is not None:
                    break
            if line is None:
                continue
            yield Finding(
                path=fn.module.path,
                line=line,
                rule=self.rule_id,
                symbol=fn.qualname,
                message=(
                    f"mutates '{key}' while iterating it (line "
                    f"{node.lineno}); collect victims first or iterate "
                    "a copy"
                ),
            )
