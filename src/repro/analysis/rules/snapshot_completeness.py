"""R001 — snapshot completeness.

Every class that participates in the snapshot/restore protocol must
capture *all* of its mutable state.  A forgotten attribute does not
fail loudly: ``restore()`` succeeds, the engine resumes, and results
silently diverge from the in-order reference — the exact failure mode
the paper's correctness argument (out-of-order results observably
identical to in-order ones) cannot tolerate.

Scope: classes whose MRO defines both a concrete snapshot-side method
(``snapshot``/``_snapshot_state``/``_base_state``/``snapshot_state``)
and a concrete restore-side method.  For each such class:

* **mutable attrs** — ``self.X`` rebinds or in-place mutations in any
  MRO method outside ``__init__``/snapshot/restore contexts (alias
  writes like ``clock = self.clock; clock._max_ts = ts`` count), plus
  component attrs built in ``__init__`` from snapshot-capable classes.
* **captured** — attrs read by any snapshot-side MRO method.
* **restored** — attrs referenced by any restore-side MRO method.

Mutable attrs missing from either side are findings, anchored at the
attribute's declaring assignment so ``# repro: ignore[R001]`` on that
line suppresses with a recorded justification (derived caches that are
rebuilt on restore are the legitimate case).
"""

from __future__ import annotations

from typing import Dict, Iterator, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.model import (
    RESTORE_METHODS,
    SNAPSHOT_METHODS,
    ClassInfo,
    Project,
)
from repro.analysis.rules import Rule

#: Methods whose attribute effects do not make an attribute "mutable
#: engine state": construction and restore legitimately assign,
#: snapshot only reads.
_EXEMPT_METHODS = frozenset({"__init__"}) | SNAPSHOT_METHODS | RESTORE_METHODS


def _has_concrete(project: Project, cls: ClassInfo, names: Set[str]) -> bool:
    return any(not fn.is_stub for fn in project.mro_methods(cls, names))


def _component_is_snapshotable(project: Project, type_name: str) -> bool:
    for cls in project.class_index.get(type_name, ()):
        if any(
            name in cls.methods and not cls.methods[name].is_stub
            for name in SNAPSHOT_METHODS
        ):
            return True
    return False


def _note(
    mutable: Dict[str, Tuple[ClassInfo, int]],
    project: Project,
    klass: ClassInfo,
    attr: str,
    line: int,
) -> None:
    # Anchor at the declaring assignment (usually __init__) of the
    # nearest MRO class that assigns the attr; fall back to the
    # mutation site for attrs never directly assigned.
    for candidate in project.mro(klass):
        if attr in candidate.assigned_attrs:
            mutable.setdefault(attr, (candidate, candidate.assigned_attrs[attr]))
            return
    mutable.setdefault(attr, (klass, line))


def participates_in_round_trip(project: Project, cls: ClassInfo) -> bool:
    """True when *cls* has concrete snapshot **and** restore sides."""
    return _has_concrete(project, cls, SNAPSHOT_METHODS) and _has_concrete(
        project, cls, RESTORE_METHODS
    )


def collect_mutable_attrs(
    project: Project, cls: ClassInfo
) -> Dict[str, Tuple[ClassInfo, int]]:
    """Mutable round-trip state of *cls*: attr -> (declaring class, line).

    Shared between R001 (name-level completeness) and R009 (def-use
    round-trip): attributes rebound or mutated outside construction/
    snapshot/restore contexts anywhere in the MRO, plus component attrs
    built in ``__init__`` from snapshot-capable classes.
    """
    mutable: Dict[str, Tuple[ClassInfo, int]] = {}
    for klass in project.mro(cls):
        for method in klass.methods.values():
            if method.name in _EXEMPT_METHODS:
                continue
            for attr, line in method.self_writes.items():
                _note(mutable, project, klass, attr, line)
            for attr, line in method.self_mutations.items():
                _note(mutable, project, klass, attr, line)
        # Components built in __init__ from snapshot-capable classes
        # hold state even when never textually mutated here.
        for attr, type_name in klass.attr_types.items():
            if _component_is_snapshotable(project, type_name):
                line = klass.assigned_attrs.get(attr, klass.line)
                mutable.setdefault(attr, (klass, line))
    return mutable


class SnapshotCompleteness(Rule):
    rule_id = "R001"
    summary = (
        "every mutable attribute of a snapshot-capable class must be "
        "captured by its snapshot methods and restored by its restore "
        "methods"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        emitted: Set[Tuple[str, int, str, str]] = set()
        for module in project.modules:
            for cls in module.classes.values():
                yield from self._check_class(project, cls, emitted)

    def _check_class(
        self,
        project: Project,
        cls: ClassInfo,
        emitted: Set[Tuple[str, int, str, str]],
    ) -> Iterator[Finding]:
        if not participates_in_round_trip(project, cls):
            return

        mutable = collect_mutable_attrs(project, cls)
        captured: Set[str] = set()
        restored: Set[str] = set()
        for klass in project.mro(cls):
            for method in klass.methods.values():
                if method.name in SNAPSHOT_METHODS and not method.is_stub:
                    captured |= set(method.self_reads)
                if method.name in RESTORE_METHODS and not method.is_stub:
                    restored |= set(method.self_reads)
                    restored |= set(method.self_writes)
                    restored |= set(method.self_mutations)

        for attr in sorted(mutable):
            owner, line = mutable[attr]
            if attr.startswith("__"):
                continue  # name-mangled internals are never protocol state
            missing = []
            if attr not in captured:
                missing.append("captured by a snapshot method")
            if attr not in restored:
                missing.append("restored by a restore method")
            if not missing:
                continue
            finding = Finding(
                path=owner.module.path,
                line=line,
                rule=self.rule_id,
                symbol=f"{owner.name}.{attr}",
                message=(
                    f"mutable attribute '{attr}' is not "
                    + " or ".join(missing)
                    + " (snapshot/restore round-trip would lose it)"
                ),
            )
            key = (finding.path, finding.line, finding.symbol, finding.message)
            if key not in emitted:
                emitted.add(key)
                yield finding
