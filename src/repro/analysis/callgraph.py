"""Reachability over an approximate, type-assisted call graph.

Rules R002 (hot-path purity) and R003 (determinism) are *path*
properties: "nothing reachable from ``feed`` reads the wall clock",
"no output-producing path iterates a set".  This module turns the
per-function :class:`~repro.analysis.model.CallSite` summaries into
edges and walks them breadth-first, remembering one predecessor per
function so findings can print the offending call chain.

Edge resolution, in decreasing precision:

* ``self.m(...)`` from a method of class C — resolves through C's MRO
  *and* through analyzed subclasses of C (a base-class hot path calls
  overridden hooks: ``Engine.feed`` → ``OutOfOrderEngine._process_event``).
* ``self.attr.m(...)`` — when ``attr``'s class is known (constructor
  assignment in ``__init__``), resolve ``m`` in that class's MRO and
  subclasses.
* ``local.m(...)`` with a typed local (``x = ClassName(...)``) —
  resolve in ``ClassName``.
* ``fn(...)`` — module-level functions of the same module, then any
  analyzed module function of that name; bare names passed as call
  arguments (callback registration) are treated as potential calls.

Unresolvable receivers simply contribute no edge — the graph is an
under-approximation there, which the rules accept: the alternative
(matching every same-named method anywhere) drowned real findings in
cross-class noise during calibration.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.model import ClassInfo, FunctionInfo, Project


def _method_candidates(
    project: Project, cls: ClassInfo, name: str
) -> List[FunctionInfo]:
    """Definitions of *name* visible from *cls*: MRO hit plus overrides."""
    found: List[FunctionInfo] = []
    resolved = project.resolve_method(cls, name)
    if resolved is not None:
        found.append(resolved)
    for sub in project.subclasses(cls):
        if name in sub.methods:
            found.append(sub.methods[name])
    return found


def _classes_declaring_attr(
    project: Project, cls: ClassInfo, attr: str
) -> List[ClassInfo]:
    """Classes whose ``__init__`` typed ``self.<attr>`` — cls's MRO first."""
    hits: List[ClassInfo] = []
    for klass in project.mro(cls):
        if attr in klass.attr_types:
            hits.append(klass)
    return hits


def resolve_call_targets(
    project: Project,
    fn: FunctionInfo,
    include_name_refs: bool = True,
) -> List[Tuple[FunctionInfo, int]]:
    """Every analyzed function *fn* may call, with the call line.

    ``include_name_refs=False`` drops the callback-pattern edges (bare
    function names passed as arguments).  Async-context propagation uses
    that: a callable *handed to* ``run_in_executor``/``Thread(target=)``
    runs off the event loop, so treating argument references as calls
    would wrongly mark executor-dispatched helpers async-reachable.
    """
    targets: List[Tuple[FunctionInfo, int]] = []
    owner = _owning_class(project, fn)
    for call in fn.calls:
        if call.kind == "self_method" and owner is not None:
            for candidate in _method_candidates(project, owner, call.target):
                targets.append((candidate, call.line))
        elif call.kind == "attr_method" and owner is not None:
            for decl in _classes_declaring_attr(project, owner, call.receiver_attr or ""):
                type_name = decl.attr_types[call.receiver_attr or ""]
                for attr_cls in project.class_index.get(type_name, ()):
                    for candidate in _method_candidates(
                        project, attr_cls, call.target
                    ):
                        targets.append((candidate, call.line))
        elif call.kind == "typed_method":
            for attr_cls in project.class_index.get(call.receiver_type or "", ()):
                for candidate in _method_candidates(project, attr_cls, call.target):
                    targets.append((candidate, call.line))
        elif call.kind == "name":
            local = fn.module.functions.get(call.target)
            if local is not None:
                targets.append((local, call.line))
            else:
                for candidate in project.function_index.get(call.target, ()):
                    targets.append((candidate, call.line))
            # ``ClassName(...)`` runs that class's __init__.
            for cls in project.class_index.get(call.target, ()):
                init = cls.methods.get("__init__")
                if init is not None:
                    targets.append((init, call.line))
    # Callback pattern: a bare function name passed as an argument may be
    # invoked downstream; treat it as an edge.
    if include_name_refs:
        for name in fn.name_refs:
            local = fn.module.functions.get(name)
            if local is not None:
                targets.append((local, fn.line))
    return targets


def _owning_class(project: Project, fn: FunctionInfo) -> Optional[ClassInfo]:
    if fn.class_name is None:
        return None
    for cls in project.class_index.get(fn.class_name, ()):
        if fn.name in cls.methods and cls.methods[fn.name] is fn:
            return cls
    return None


class Reachability:
    """BFS closure from a set of root functions, with call chains."""

    def __init__(
        self,
        project: Project,
        roots: Iterable[FunctionInfo],
        include_name_refs: bool = True,
    ):
        self.project = project
        #: qualname -> (function, predecessor qualname or None, call line)
        self.visited: Dict[str, Tuple[FunctionInfo, Optional[str], int]] = {}
        frontier: List[FunctionInfo] = []
        for root in roots:
            if root.qualname not in self.visited:
                self.visited[root.qualname] = (root, None, root.line)
                frontier.append(root)
        while frontier:
            fn = frontier.pop(0)
            for target, line in resolve_call_targets(
                project, fn, include_name_refs=include_name_refs
            ):
                if target.qualname in self.visited:
                    continue
                self.visited[target.qualname] = (target, fn.qualname, line)
                frontier.append(target)

    def functions(self) -> List[FunctionInfo]:
        return [entry[0] for entry in self.visited.values()]

    def chain(self, qualname: str) -> List[str]:
        """Root-first qualname chain leading to *qualname*."""
        names: List[str] = []
        cursor: Optional[str] = qualname
        seen: Set[str] = set()
        while cursor is not None and cursor not in seen:
            seen.add(cursor)
            names.append(cursor)
            entry = self.visited.get(cursor)
            cursor = entry[1] if entry else None
        return list(reversed(names))

    def describe_chain(self, qualname: str) -> str:
        """Short arrow-free chain for messages: ``a, called from b``."""
        chain = self.chain(qualname)
        if len(chain) <= 1:
            return chain[0] if chain else qualname
        return f"{chain[-1]} (reached from {chain[0]} via {len(chain) - 1} calls)"


def coroutine_roots(project: Project) -> List[FunctionInfo]:
    """Every ``async def`` in the project — module functions and methods."""
    roots: List[FunctionInfo] = []
    for module in project.modules:
        roots.extend(fn for fn in module.functions.values() if fn.is_async)
        for cls in module.classes.values():
            roots.extend(fn for fn in cls.methods.values() if fn.is_async)
    return roots


def async_reachability(project: Project) -> Reachability:
    """Functions that may run on an event loop: the async-context closure.

    A function is *async-reachable* when a coroutine transitively calls
    it — whether with ``await`` or as a plain synchronous call — because
    either way its body executes on the loop thread and anything
    blocking in it stalls every other task.  Propagation deliberately
    excludes callback-argument edges (``include_name_refs=False``):
    a callable handed to ``run_in_executor`` / ``Thread(target=...)``
    is the sanctioned escape hatch and runs off the loop.
    """
    return Reachability(project, coroutine_roots(project), include_name_refs=False)
