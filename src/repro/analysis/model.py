"""Semantic model the rules run against.

:func:`build_project` parses every ``.py`` file under the given paths
into a :class:`Project`: modules, classes (with resolved ancestry),
and per-function summaries of how ``self`` attributes are read, written
and mutated, plus every call site in a resolution-friendly form.

The summaries are deliberately *approximate* — Python cannot be
soundly call-resolved statically — but the approximations are chosen so
the engine contracts stay checkable:

* **alias tracking** — ``clock = self.clock; clock._max_ts = ts`` (the
  batched hot paths hoist attributes into locals) is attributed back to
  the ``clock`` attribute.  Aliases over-approximate: a local assigned
  from an expression mentioning several attributes aliases all of them.
* **mutator calls** — ``self.pending.add(...)`` or
  ``heapq.heappush(self._heap, ...)`` count as mutations of the
  receiver attribute, using a fixed vocabulary of mutating method names
  (:data:`MUTATOR_METHODS`).
* **attribute typing** — ``self.clock = StreamClock(k)`` records the
  attribute's class when the constructor resolves to an analyzed
  class, which lets rules ask "is this attribute a snapshot-capable
  component?" and resolve ``self.clock.observe(...)`` calls precisely.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.suppressions import SuppressionDecl, parse_suppressions

#: Method names treated as mutating their receiver.  Generic container
#: vocabulary plus this codebase's stateful-component verbs (the stream
#: clock's ``observe``, the purge schedule's ``due``, store maintenance
#: like ``purge_through``).  Over-approximation is safe: it can only
#: widen the set of attributes a snapshot must capture.
MUTATOR_METHODS = frozenset(
    {
        "append", "appendleft", "extend", "insert", "add", "update",
        "setdefault", "pop", "popleft", "popitem", "remove", "discard",
        "clear", "push", "drain", "release", "observe",
        "observe_punctuation", "due", "purge_through", "drop_oldest",
        "reset", "sort", "reverse",
    }
)

#: ``heapq`` functions whose first argument is mutated.
_HEAP_FUNCTIONS = frozenset(
    {"heappush", "heappop", "heapify", "heappushpop", "heapreplace", "merge"}
)

#: Methods that serialise state (the "capture" side of the contract).
SNAPSHOT_METHODS = frozenset(
    {"snapshot", "_snapshot_state", "_base_state", "snapshot_state"}
)

#: Methods that rebuild state (the "restore" side of the contract).
RESTORE_METHODS = frozenset(
    {"restore", "_restore_state", "_restore_base", "restore_state"}
)

#: Methods excluded when deciding whether an attribute is mutable
#: engine state: construction builds it, restore legitimately assigns
#: it, and snapshot methods only read.
_NON_MUTATING_CONTEXTS = (
    frozenset({"__init__"}) | RESTORE_METHODS | SNAPSHOT_METHODS
)


@dataclass
class CallSite:
    """One call expression, summarised for later resolution.

    ``kind`` is one of:

    * ``"name"`` — ``foo(...)``; ``target`` is the bare name.
    * ``"self_method"`` — ``self.m(...)``; ``target`` is ``m``.
    * ``"attr_method"`` — ``self.attr.m(...)`` (directly or through a
      local alias); ``target`` is ``m``, ``receiver_attr`` the attr.
    * ``"typed_method"`` — ``local.m(...)`` where the local's class is
      known; ``target`` is ``m``, ``receiver_type`` the class name.
    * ``"dotted"`` — ``mod.path.fn(...)``; ``dotted`` carries the full
      dotted string for forbidden-call matching.
    * ``"expr_method"`` — ``<expr>.m(...)`` on a receiver too complex to
      resolve (``(self.dir / NAME).open(...)``); ``target`` is ``m``.
      Contributes no call-graph edge, but method-vocabulary rules
      (blocking I/O, file verbs) still match on the name.
    """

    kind: str
    target: str
    line: int
    receiver_attr: Optional[str] = None
    receiver_type: Optional[str] = None
    dotted: Optional[str] = None


@dataclass
class FunctionInfo:
    """Per-function summary of attribute effects and call sites."""

    name: str
    qualname: str
    module: "ModuleInfo"
    node: ast.AST
    class_name: Optional[str] = None
    #: ``self.X = ...`` direct rebinds: attr -> first line.
    self_writes: Dict[str, int] = field(default_factory=dict)
    #: in-place changes (nested writes, mutator calls): attr -> first line.
    self_mutations: Dict[str, int] = field(default_factory=dict)
    #: ``self.X`` loads: attr -> first line.
    self_reads: Dict[str, int] = field(default_factory=dict)
    calls: List[CallSite] = field(default_factory=list)
    #: bare-name references passed as arguments (callback pattern).
    name_refs: Set[str] = field(default_factory=set)
    is_stub: bool = False
    #: True for ``async def`` — the roots of async-context propagation.
    is_async: bool = False

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    """One class definition plus derived attribute facts."""

    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    base_names: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: attr -> line of first assignment anywhere in the class.
    assigned_attrs: Dict[str, int] = field(default_factory=dict)
    #: attr -> resolved class name (``self.x = ClassName(...)`` in __init__).
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: attrs whose initialiser or annotation is set-like.
    set_typed_attrs: Set[str] = field(default_factory=set)

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: str
    modname: str
    tree: ast.Module
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: imported name -> dotted module path (``import time`` -> ``time``;
    #: ``from time import time`` -> ``time.time``).
    imports: Dict[str, str] = field(default_factory=dict)
    suppress_lines: Dict[int, Set[str]] = field(default_factory=dict)
    suppress_file: Set[str] = field(default_factory=set)
    #: (first line, last line, rules, declaring comment line) ranges
    #: derived from ``def``/``class`` header comments.
    suppress_ranges: List[Tuple[int, int, Set[str], int]] = field(
        default_factory=list
    )
    #: every suppression comment as written, for the burn-down pass.
    suppress_decls: List[SuppressionDecl] = field(default_factory=list)

    def is_suppressed(self, line: int, rule: str) -> bool:
        if rule in self.suppress_file:
            return True
        if rule in self.suppress_lines.get(line, ()):
            return True
        return any(
            lo <= line <= hi and rule in rules
            for lo, hi, rules, _decl in self.suppress_ranges
        )

    def matching_decl_lines(self, line: int, rule: str) -> List[int]:
        """Comment lines of every declaration suppressing (*line*, *rule*).

        Feeds the dead-suppression burn-down: each returned comment line
        is credited with one real finding.
        """
        lines: List[int] = []
        for decl in self.suppress_decls:
            if rule not in decl.rules:
                continue
            if decl.scope == "file" or decl.line == line:
                lines.append(decl.line)
        for lo, hi, rules, decl_line in self.suppress_ranges:
            if lo <= line <= hi and rule in rules and decl_line not in lines:
                lines.append(decl_line)
        return lines


@dataclass
class Project:
    """Everything the rules see: modules plus cross-module resolution."""

    modules: List[ModuleInfo]
    #: class name -> definitions (names are unique in this repo, but a
    #: list keeps resolution honest if that ever changes).
    class_index: Dict[str, List[ClassInfo]] = field(default_factory=dict)
    #: module function qualname index: bare name -> definitions.
    function_index: Dict[str, List[FunctionInfo]] = field(
        default_factory=dict
    )
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)

    # -- hierarchy ------------------------------------------------------------

    def ancestors(self, cls: ClassInfo) -> List[ClassInfo]:
        """All resolved base classes, nearest first (duplicates removed)."""
        seen: Set[int] = {id(cls)}
        order: List[ClassInfo] = []
        frontier = list(cls.base_names)
        while frontier:
            base_name = frontier.pop(0)
            for candidate in self.class_index.get(base_name, ()):
                if id(candidate) in seen:
                    continue
                seen.add(id(candidate))
                order.append(candidate)
                frontier.extend(candidate.base_names)
        return order

    def mro(self, cls: ClassInfo) -> List[ClassInfo]:
        """The class followed by its resolved ancestors."""
        return [cls] + self.ancestors(cls)

    def subclasses(self, cls: ClassInfo) -> List[ClassInfo]:
        """Every analyzed class whose ancestry includes *cls*."""
        found = []
        for module in self.modules:
            for candidate in module.classes.values():
                if candidate is cls:
                    continue
                if any(a is cls for a in self.ancestors(candidate)):
                    found.append(candidate)
        return found

    def resolve_method(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        """Nearest definition of method *name* in *cls*'s MRO."""
        for klass in self.mro(cls):
            if name in klass.methods:
                return klass.methods[name]
        return None

    def mro_methods(self, cls: ClassInfo, names: Iterable[str]) -> List[FunctionInfo]:
        """Every MRO definition whose name is in *names* (all overrides)."""
        wanted = set(names)
        return [
            klass.methods[name]
            for klass in self.mro(cls)
            for name in klass.methods
            if name in wanted
        ]

    def is_engine_class(self, cls: ClassInfo) -> bool:
        """True for classes speaking the engine protocol.

        Either the resolved ancestry reaches a class named ``Engine``,
        or the class (or an ancestor) defines ``_process_event`` — the
        subclass hook that only engines implement.  Wrappers that
        merely *drive* an engine (recovery runner, query registry,
        output adapter) define neither and are out of scope.
        """
        for klass in self.mro(cls):
            if klass.name == "Engine" or "_process_event" in klass.methods:
                return True
        return "Engine" in _transitive_base_names(self, cls)


def _transitive_base_names(project: Project, cls: ClassInfo) -> Set[str]:
    """Base names reachable through the registry, plus unresolved ones."""
    names: Set[str] = set(cls.base_names)
    for ancestor in project.ancestors(cls):
        names.update(ancestor.base_names)
        names.add(ancestor.name)
    return names


# -- per-function extraction -----------------------------------------------------


def _root_and_path(expr: ast.AST) -> Tuple[Optional[str], List[str]]:
    """Root ``Name`` id and attribute path of an Attribute/Subscript chain.

    ``self.stacks[i].insert`` -> ("self", ["stacks", "insert"]);
    subscripts are transparent.  Returns (None, []) for anything that
    is not a simple chain.
    """
    path: List[str] = []
    node = expr
    while True:
        if isinstance(node, ast.Attribute):
            path.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            return node.id, list(reversed(path))
        else:
            return None, []


class _FunctionScanner(ast.NodeVisitor):
    """Single pass over one function body; fills a :class:`FunctionInfo`."""

    def __init__(self, info: FunctionInfo):
        self.info = info
        #: local name -> self-attributes it may alias (over-approximate).
        self.aliases: Dict[str, Set[str]] = {}
        #: local name -> class name (``x = ClassName(...)``).
        self.local_types: Dict[str, str] = {}

    # -- helpers ---------------------------------------------------------------

    def _attrs_of(self, expr: ast.AST) -> Set[str]:
        """Self-attributes an expression may *alias* (directly or via alias).

        Call subtrees are skipped: a call returns a new object (or an
        immutable view), so ``out = self._process_event(ev)`` must not
        alias ``out`` to the ``_process_event`` attribute — only plain
        attribute/subscript access propagates aliasing.
        """
        attrs: Set[str] = set()
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Call):
                continue
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                if node.value.id == "self":
                    attrs.add(node.attr)
            elif isinstance(node, ast.Name):
                attrs.update(self.aliases.get(node.id, ()))
            stack.extend(ast.iter_child_nodes(node))
        return attrs

    def _note(self, table: Dict[str, int], attr: str, line: int) -> None:
        table.setdefault(attr, line)

    def _record_target(self, target: ast.AST, line: int) -> None:
        if isinstance(target, ast.Name):
            # Rebinding a bare local never mutates what it aliased.
            return
        root, path = _root_and_path(target)
        if root == "self" and len(path) == 1 and isinstance(target, ast.Attribute):
            self._note(self.info.self_writes, path[0], line)
        elif root == "self" and path:
            # Nested write (``self.stats.x = ...`` / ``self._routed[k] = ...``)
            # mutates the base attribute's value in place.
            self._note(self.info.self_mutations, path[0], line)
        elif root is not None and root != "self":
            # Attribute/subscript store through a local alias
            # (``clock = self.clock; clock._max_ts = ts``).
            for attr in self.aliases.get(root, ()):
                self._note(self.info.self_mutations, attr, line)

    def _bind_aliases(self, targets: Sequence[ast.AST], value: ast.AST) -> None:
        attrs = self._attrs_of(value)
        rhs_type = self._type_of(value)
        names: List[ast.Name] = []
        for target in targets:
            if isinstance(target, ast.Name):
                names.append(target)
            elif isinstance(target, (ast.Tuple, ast.List)):
                names.extend(
                    el for el in target.elts if isinstance(el, ast.Name)
                )
        for name in names:
            if attrs:
                self.aliases[name.id] = set(attrs)
            else:
                self.aliases.pop(name.id, None)
            if rhs_type is not None:
                self.local_types[name.id] = rhs_type
            else:
                self.local_types.pop(name.id, None)

    def _type_of(self, expr: ast.AST) -> Optional[str]:
        """Class name of an expression when statically evident."""
        if isinstance(expr, ast.Call):
            root, path = _root_and_path(expr.func)
            if root is not None and root != "self" and not path:
                return root  # ``ClassName(...)`` — resolved later
            if root is not None and path:
                return path[-1]  # ``mod.ClassName(...)`` — last segment
        return None

    # -- statements -------------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target, node.lineno)
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    self._record_target(element, node.lineno)
        self._bind_aliases(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_target(node.target, node.lineno)
        if node.value is not None:
            self._bind_aliases([node.target], node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node.target, node.lineno)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._bind_aliases([node.target], node.iter)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if item.optional_vars is not None:
                self._bind_aliases([item.optional_vars], item.context_expr)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                root, path = _root_and_path(target)
                if root == "self" and path:
                    self._note(self.info.self_mutations, path[0], node.lineno)
                elif root is not None:
                    for attr in self.aliases.get(root, ()):
                        self._note(self.info.self_mutations, attr, node.lineno)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and isinstance(node.ctx, ast.Load)
        ):
            self._note(self.info.self_reads, node.attr, node.lineno)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self._record_call(node)
        for arg in node.args:
            if isinstance(arg, ast.Name):
                self.info.name_refs.add(arg.id)
        self.generic_visit(node)

    # -- call classification -----------------------------------------------------

    def _record_call(self, node: ast.Call) -> None:
        line = node.lineno
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _HEAP_FUNCTIONS and node.args:
                self._mutate_first_arg(node.args[0], line)
            self.info.calls.append(CallSite("name", func.id, line))
            return
        root, path = _root_and_path(func)
        if root is None or not path:
            # Method call on an unresolvable receiver expression, e.g.
            # ``(self.directory / NAME).open(...)``.  No call-graph edge,
            # but the method name still matters to vocabulary rules.
            if isinstance(func, ast.Attribute):
                self.info.calls.append(CallSite("expr_method", func.attr, line))
            return
        method = path[-1]
        if root == "self" and len(path) == 1:
            self.info.calls.append(CallSite("self_method", method, line))
            return
        if root == "self" and len(path) == 2:
            receiver = path[0]
            if method in MUTATOR_METHODS:
                self._note(self.info.self_mutations, receiver, line)
            self.info.calls.append(
                CallSite("attr_method", method, line, receiver_attr=receiver)
            )
            return
        if root == "self":
            # Deeper chain: attribute of attribute — attribute mutation
            # still lands on the base attribute.
            if method in MUTATOR_METHODS:
                self._note(self.info.self_mutations, path[0], line)
            self.info.calls.append(
                CallSite("attr_method", method, line, receiver_attr=path[0])
            )
            return
        # Non-self root: heapq-style module call, alias call, or typed local.
        dotted = ".".join([root] + path)
        if root == "heapq" and method in _HEAP_FUNCTIONS and node.args:
            self._mutate_first_arg(node.args[0], line)
        aliased = self.aliases.get(root)
        if aliased:
            if method in MUTATOR_METHODS:
                for attr in aliased:
                    self._note(self.info.self_mutations, attr, line)
            for attr in aliased:
                self.info.calls.append(
                    CallSite("attr_method", method, line, receiver_attr=attr)
                )
            return
        local_type = self.local_types.get(root)
        if local_type is not None and len(path) == 1:
            self.info.calls.append(
                CallSite("typed_method", method, line, receiver_type=local_type)
            )
            return
        self.info.calls.append(CallSite("dotted", method, line, dotted=dotted))

    def _mutate_first_arg(self, arg: ast.AST, line: int) -> None:
        root, path = _root_and_path(arg)
        if root == "self" and path:
            self._note(self.info.self_mutations, path[0], line)
        elif root is not None:
            for attr in self.aliases.get(root, ()):
                self._note(self.info.self_mutations, attr, line)


def _is_stub(node: ast.AST) -> bool:
    """True when a function body is only a docstring and/or a raise/pass.

    ``Engine._snapshot_state`` raising ``NotImplementedError`` is a
    contract placeholder, not an implementation — rules that ask "does
    this class implement snapshotting?" must not count it.
    """
    body = list(getattr(node, "body", []))
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ):
        body = body[1:]
    if not body:
        return True
    return all(isinstance(stmt, (ast.Raise, ast.Pass)) for stmt in body)


def _annotation_is_setlike(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    text = ast.dump(annotation)
    return any(token in text for token in ("'Set'", "'FrozenSet'", "'set'", "'frozenset'"))


def _value_is_setlike(value: Optional[ast.AST]) -> bool:
    if value is None:
        return False
    if isinstance(value, (ast.Set, ast.SetComp)):
        return True
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in ("set", "frozenset")
    if isinstance(value, ast.BinOp):
        return _value_is_setlike(value.left) or _value_is_setlike(value.right)
    return False


# -- module / project construction ---------------------------------------------


def _scan_function(
    node: ast.AST,
    module: ModuleInfo,
    class_info: Optional[ClassInfo],
) -> FunctionInfo:
    name = node.name  # type: ignore[attr-defined]
    qual = f"{class_info.name}.{name}" if class_info else name
    info = FunctionInfo(
        name=name,
        qualname=f"{module.modname}.{qual}",
        module=module,
        node=node,
        class_name=class_info.name if class_info else None,
        is_stub=_is_stub(node),
        is_async=isinstance(node, ast.AsyncFunctionDef),
    )
    scanner = _FunctionScanner(info)
    for stmt in node.body:  # type: ignore[attr-defined]
        scanner.visit(stmt)
    return info


def _finish_class(project_classes: Dict[str, List[ClassInfo]], cls: ClassInfo) -> None:
    """Derive attribute facts once every method has been scanned."""
    init = cls.methods.get("__init__")
    # __init__ assignments anchor first (findings point at the declaration);
    # attrs first written elsewhere anchor at that write.
    if init is not None:
        for attr, line in init.self_writes.items():
            cls.assigned_attrs.setdefault(attr, line)
    for method in cls.methods.values():
        for attr, line in method.self_writes.items():
            cls.assigned_attrs.setdefault(attr, line)
    # Attribute types and set-likeness come from __init__ assignments
    # (annotated or constructor calls) plus annotated class-body fields.
    if init is not None:
        for stmt in ast.walk(init.node):
            target: Optional[ast.AST] = None
            value: Optional[ast.AST] = None
            annotation: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value, annotation = stmt.target, stmt.value, stmt.annotation
            if target is None:
                continue
            root, path = _root_and_path(target)
            if root != "self" or len(path) != 1:
                continue
            attr = path[0]
            scanner = _FunctionScanner(init)
            rhs_type = scanner._type_of(value) if value is not None else None
            if rhs_type is not None and rhs_type in project_classes:
                cls.attr_types.setdefault(attr, rhs_type)
            if _value_is_setlike(value) or _annotation_is_setlike(annotation):
                cls.set_typed_attrs.add(attr)
    for stmt in cls.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if _annotation_is_setlike(stmt.annotation):
                cls.set_typed_attrs.add(stmt.target.id)


def _collect_imports(tree: ast.Module) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                imports[local] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def _module_name(path: Path) -> str:
    parts = list(path.with_suffix("").parts)
    for anchor in ("repro", "src"):
        if anchor in parts:
            index = parts.index(anchor)
            if anchor == "src":
                index += 1
            return ".".join(parts[index:])
    return ".".join(parts[-2:])


def parse_module(path: Path, source: str) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (raises SyntaxError)."""
    tree = ast.parse(source, filename=str(path))
    module = ModuleInfo(path=str(path), modname=_module_name(path), tree=tree)
    module.imports = _collect_imports(tree)
    per_line, per_file, decls = parse_suppressions(source)
    module.suppress_lines = per_line
    module.suppress_file = per_file
    module.suppress_decls = decls
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = _scan_function(node, module, None)
            module.functions[info.name] = info
        elif isinstance(node, ast.ClassDef):
            cls = ClassInfo(name=node.name, module=module, node=node)
            cls.base_names = [
                _root_and_path(base)[1][-1]
                if _root_and_path(base)[1]
                else (base.id if isinstance(base, ast.Name) else "")
                for base in node.bases
            ]
            cls.base_names = [name for name in cls.base_names if name]
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods[item.name] = _scan_function(item, module, cls)
            module.classes[node.name] = cls
    _collect_symbol_suppressions(module)
    return module


def _collect_symbol_suppressions(module: ModuleInfo) -> None:
    """Header-line ``ignore`` comments suppress for the whole symbol."""
    nodes: List[ast.AST] = []
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            nodes.append(node)
    for node in nodes:
        header_end = node.body[0].lineno - 1 if node.body else node.lineno
        for line in range(node.lineno, max(header_end, node.lineno) + 1):
            rules = module.suppress_lines.get(line, set())
            if rules:
                end = getattr(node, "end_lineno", None) or node.lineno
                module.suppress_ranges.append((node.lineno, end, set(rules), line))


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Every ``.py`` file under *paths* (files pass through), sorted."""
    found: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            found.append(path)
    unique: List[Path] = []
    seen: Set[str] = set()
    for path in found:
        key = str(path.resolve())
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def build_project(paths: Sequence[str]) -> Project:
    """Parse *paths* into a :class:`Project`; parse failures are recorded."""
    project = Project(modules=[])
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
            module = parse_module(path, source)
        except (OSError, SyntaxError, ValueError) as exc:
            project.parse_errors.append((str(path), str(exc)))
            continue
        project.modules.append(module)
    for module in project.modules:
        for cls in module.classes.values():
            project.class_index.setdefault(cls.name, []).append(cls)
        for fn in module.functions.values():
            project.function_index.setdefault(fn.name, []).append(fn)
    for module in project.modules:
        for cls in module.classes.values():
            _finish_class(project.class_index, cls)
    return project
