"""repro.analysis — AST-based invariant checker for the engine contracts.

The paper's correctness claims (out-of-order results observably
identical to in-order ones; purge never drops live state) plus the
repo's operational contracts (snapshot/restore round-trips, exactly-
once replay) are enforced mechanically by nine rules over the parsed
source tree — per-class pattern rules (R001–R005) plus flow-sensitive
async rules (R006–R009) built on the CFG/def-use layer in
:mod:`repro.analysis.dataflow`.  See ``docs/analysis.md`` for the rule
catalogue and suppression syntax.

Programmatic entry point::

    from repro.analysis import run_analysis
    report = run_analysis(["src/repro"])
    assert not report.findings

Command line::

    python -m repro.analysis [--format text|json] [paths...]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import (
    DeadSuppression,
    Finding,
    Severity,
    render_json,
    render_text,
)
from repro.analysis.model import Project, build_project
from repro.analysis.rules import Rule, all_rules

__all__ = [
    "AnalysisReport",
    "DeadSuppression",
    "Finding",
    "Severity",
    "Rule",
    "all_rules",
    "build_project",
    "run_analysis",
    "render_text",
    "render_json",
]


@dataclass
class AnalysisReport:
    """Outcome of one analysis run."""

    findings: List[Finding]
    checked_files: int
    suppressed: int
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)
    #: suppression comments (path, comment line, rule) that silenced
    #: nothing this run — warnings, not failures.
    dead_suppressions: List[DeadSuppression] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing failed: no findings, no unparsable files.

        Dead suppressions are warnings and do not flip this — the
        burn-down is enforced separately by the tree-clean test.
        """
        return not self.findings and not self.parse_errors

    def render(self, fmt: str = "text") -> str:
        if fmt == "json":
            return render_json(
                self.findings,
                self.checked_files,
                self.suppressed,
                self.dead_suppressions,
            )
        return render_text(
            self.findings,
            self.checked_files,
            self.suppressed,
            self.dead_suppressions,
        )


def run_analysis(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
) -> AnalysisReport:
    """Run *rules* (default: all registered) over the tree at *paths*."""
    project = build_project(paths)
    active = list(rules) if rules is not None else all_rules()
    active_ids = {rule.rule_id for rule in active}
    module_by_path: Dict[str, object] = {
        module.path: module for module in project.modules
    }
    kept: List[Finding] = []
    suppressed = 0
    #: (path, comment line, rule) credited with at least one finding.
    used: set = set()
    raw = sorted(
        {finding for rule in active for finding in rule.check(project)}
    )
    for finding in raw:
        module = module_by_path.get(finding.path)
        if module is not None and module.is_suppressed(finding.line, finding.rule):  # type: ignore[attr-defined]
            suppressed += 1
            for decl_line in module.matching_decl_lines(  # type: ignore[attr-defined]
                finding.line, finding.rule
            ):
                used.add((finding.path, decl_line, finding.rule))
        else:
            kept.append(finding)
    dead: List[DeadSuppression] = []
    for module in project.modules:
        for decl in module.suppress_decls:
            for rule_id in sorted(decl.rules):
                if rule_id not in active_ids:
                    continue  # only judge rules that actually ran
                if (module.path, decl.line, rule_id) not in used:
                    dead.append((module.path, decl.line, rule_id))
    return AnalysisReport(
        findings=kept,
        checked_files=len(project.modules),
        suppressed=suppressed,
        parse_errors=list(project.parse_errors),
        dead_suppressions=sorted(dead),
    )
