"""repro.analysis — AST-based invariant checker for the engine contracts.

The paper's correctness claims (out-of-order results observably
identical to in-order ones; purge never drops live state) plus the
repo's operational contracts (snapshot/restore round-trips, exactly-
once replay) are enforced mechanically by five rules over the parsed
source tree.  See ``docs/analysis.md`` for the rule catalogue and
suppression syntax.

Programmatic entry point::

    from repro.analysis import run_analysis
    report = run_analysis(["src/repro"])
    assert not report.findings

Command line::

    python -m repro.analysis [--format text|json] [paths...]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import (
    Finding,
    Severity,
    render_json,
    render_text,
)
from repro.analysis.model import Project, build_project
from repro.analysis.rules import Rule, all_rules

__all__ = [
    "AnalysisReport",
    "Finding",
    "Severity",
    "Rule",
    "all_rules",
    "build_project",
    "run_analysis",
    "render_text",
    "render_json",
]


@dataclass
class AnalysisReport:
    """Outcome of one analysis run."""

    findings: List[Finding]
    checked_files: int
    suppressed: int
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing failed: no findings, no unparsable files."""
        return not self.findings and not self.parse_errors

    def render(self, fmt: str = "text") -> str:
        if fmt == "json":
            return render_json(self.findings, self.checked_files, self.suppressed)
        return render_text(self.findings, self.checked_files, self.suppressed)


def run_analysis(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
) -> AnalysisReport:
    """Run *rules* (default: all registered) over the tree at *paths*."""
    project = build_project(paths)
    active = list(rules) if rules is not None else all_rules()
    module_by_path: Dict[str, object] = {
        module.path: module for module in project.modules
    }
    kept: List[Finding] = []
    suppressed = 0
    raw = sorted(
        {finding for rule in active for finding in rule.check(project)}
    )
    for finding in raw:
        module = module_by_path.get(finding.path)
        if module is not None and module.is_suppressed(finding.line, finding.rule):  # type: ignore[attr-defined]
            suppressed += 1
        else:
            kept.append(finding)
    return AnalysisReport(
        findings=kept,
        checked_files=len(project.modules),
        suppressed=suppressed,
        parse_errors=list(project.parse_errors),
    )
