"""Command-line interface: evaluate, generate, serve, and inspect traces.

The subcommands mirror the operational workflow the examples walk
through::

    python -m repro generate --workload synthetic --events 5000 \\
        --disorder 0.3:25 --out trace.jsonl
    python -m repro inspect trace.jsonl
    python -m repro run --query "PATTERN SEQ(T1 a, T2 b, T3 c) \\
        WHERE a.part == b.part AND b.part == c.part WITHIN 50" \\
        --trace trace.jsonl --engine ooo --k 25 --verify

``run --verify`` compares the engine's output against the offline
oracle and reports recall/precision — the one-command reproduction of
the paper's correctness story on any recorded trace.

The ingestion pair puts a network front door on the same machinery::

    python -m repro serve --schema orders.schema.json --query "..." \\
        --k 25 --dir /var/lib/repro/orders --port 7071
    python -m repro send --port 7071 --source s1 --stream orders \\
        --trace trace.jsonl

``serve`` runs the fault-tolerant gateway (idempotent admission,
per-source liveness, backpressure, WAL-backed durability); ``send``
replays a trace file through the retrying client.  ``explain
--gateway DIR`` prints the gateway journal's liveness/crash timeline.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from repro.bench import make_engine
from repro.core.engine import ValidationPolicy
from repro.core.errors import ReproError
from repro.core.oracle import OfflineOracle
from repro.core.parser import parse
from repro.core.purge import PurgePolicy
from repro.core.recovery import ResilientRunner
from repro.core.shedding import ShedPolicy
from repro.faultinject import FaultInjector
from repro.ingest.backoff import BackoffPolicy, run_resilient
from repro.metrics import compare_keys, render_table, summarize_arrival_latency
from repro.streams import (
    BurstDropoutModel,
    NoDisorder,
    RandomDelayModel,
    dump_trace,
    load_trace,
    measure_disorder,
)
from repro.workloads import (
    IntrusionGenerator,
    RfidStoreGenerator,
    StockFeedGenerator,
    SyntheticWorkload,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Out-of-order complex event processing (ICDCS 2007 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="evaluate a pattern query over a trace")
    run.add_argument("--query", required=True, help="query text in the PATTERN language")
    run.add_argument("--trace", required=True, help="JSON-lines trace file (see `generate`)")
    run.add_argument(
        "--engine",
        default="ooo",
        choices=[
            "ooo", "inorder", "reorder", "aggressive", "partitioned",
            "parallel", "pipeline",
        ],
    )
    run.add_argument("--k", type=int, default=None, help="disorder bound K")
    run.add_argument(
        "--purge", default="eager", help="purge policy: eager | lazy:<interval> | none"
    )
    run.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="feed in batches of N events (0 = per-event feed; default: one batch)",
    )
    run.add_argument(
        "--workers", type=int, default=1,
        help="worker count for --engine parallel/pipeline (1 = serial fallback)",
    )
    run.add_argument(
        "--backend", default=None, choices=["thread", "process", "pipeline"],
        help="worker backend for --engine parallel/pipeline (default: thread "
             "for parallel, process for pipeline); `--backend pipeline` is "
             "shorthand for `--engine pipeline` with process workers",
    )
    run.add_argument(
        "--no-index", action="store_true",
        help="disable equality-index pushdown in sequence construction "
             "(E19 ablation; results are identical, only cost changes)",
    )
    run.add_argument("--verify", action="store_true", help="compare against the offline oracle")
    run.add_argument("--show-matches", type=int, default=5, metavar="N",
                     help="print the first N matches (0 = none)")
    run.add_argument(
        "--validate", default="raise", choices=["raise", "quarantine"],
        help="admission policy for malformed events: reject the stream "
             "(raise) or count-and-skip (quarantine)",
    )
    run.add_argument(
        "--max-state", type=int, default=None, metavar="N",
        help="shed oldest stored events when engine state exceeds N "
             "(ooo/aggressive engines; degrades recall, bounds memory)",
    )
    run.add_argument(
        "--speculative", action="store_true",
        help="emit matches optimistically ahead of their seal, with "
             "retraction records when a late event invalidates one "
             "(ooo/partitioned engines; sealed output is unchanged)",
    )
    run.add_argument(
        "--quality-target", type=float, default=None, metavar="Q",
        help="attach an adaptive-K controller targeting fraction Q of "
             "events admitted in time; K (and, with --speculative, the "
             "optimistic/pessimistic choice) is re-frozen at punctuation "
             "boundaries (--k then sets the cold-start floor)",
    )
    run.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="run under the resilient runner, checkpointing every N elements "
             "(requires --checkpoint-dir)",
    )
    run.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="directory for wal.jsonl/checkpoint.bin/delivered.jsonl; if it "
             "holds state from a crashed run, recovery happens first",
    )
    run.add_argument(
        "--crash-at", type=int, default=None, metavar="I",
        help="inject a crash at input element I (0-based), then recover "
             "automatically and finish the run — a live fire drill of the "
             "checkpoint/replay path",
    )
    run.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="instrument the engine and write metrics snapshots as JSON "
             "lines to FILE, plus a Prometheus text exposition to FILE.prom",
    )
    run.add_argument(
        "--metrics-every", type=int, default=0, metavar="N",
        help="with --metrics-out: emit a JSON-lines snapshot every N input "
             "elements (0 = final snapshot only; forces per-element feed)",
    )

    generate = commands.add_parser("generate", help="write a workload trace file")
    generate.add_argument(
        "--workload",
        default="synthetic",
        choices=["synthetic", "rfid", "intrusion", "stock"],
    )
    generate.add_argument("--events", type=int, default=5000,
                          help="event count (synthetic/stock) or item count (rfid)")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--disorder",
        default="none",
        help="arrival disorder: none | <rate>:<max_delay> | burst:<rate>:<len>",
    )
    generate.add_argument("--out", required=True, help="output JSON-lines path")

    inspect = commands.add_parser("inspect", help="summarise a trace file")
    inspect.add_argument("trace", help="JSON-lines trace path")

    explain = commands.add_parser(
        "explain",
        help="replay a trace with lifecycle tracing and explain why matches "
             "were emitted — or, with --missing, why the engine missed them",
    )
    explain.add_argument("--query", default=None, help="query text in the PATTERN language")
    explain.add_argument("--trace", default=None, help="JSON-lines trace file")
    explain.add_argument(
        "--engine", default="ooo",
        choices=["ooo", "inorder", "reorder", "aggressive"],
        help="engine family to replay under (families sharing one tracer)",
    )
    explain.add_argument("--k", type=int, default=None, help="disorder bound K")
    explain.add_argument(
        "--purge", default="eager", help="purge policy: eager | lazy:<interval> | none"
    )
    explain.add_argument(
        "--match", default=None, metavar="EIDS",
        help="comma-separated event ids; explain emitted matches whose "
             "contributing events include all of them",
    )
    explain.add_argument(
        "--missing", action="store_true",
        help="diff against the offline oracle and explain matches the "
             "engine failed to emit",
    )
    explain.add_argument(
        "--limit", type=int, default=3, metavar="N",
        help="explain at most N matches per category",
    )
    explain.add_argument(
        "--capacity", type=int, default=None, metavar="N",
        help="tracer ring size in spans (default: ~8 per trace element)",
    )
    explain.add_argument(
        "--gateway", default=None, metavar="DIR",
        help="print the gateway journal timeline (liveness transitions, "
             "crashes, recoveries) from DIR/gateway.jsonl; may be used "
             "alone or alongside a query replay",
    )
    explain.add_argument(
        "--flight", default=None, metavar="DUMP",
        help="post-mortem a flight-recorder dump (flight.jsonl): "
             "reconstruct the last per-source timelines and name the "
             "proximate stall; may be used alone or with --gateway",
    )

    serve = commands.add_parser(
        "serve",
        help="run the fault-tolerant ingestion gateway in front of an engine",
    )
    serve.add_argument("--schema", required=True,
                       help="stream schema JSON (repro-streamspec-v1)")
    serve.add_argument("--query", required=True, help="query text in the PATTERN language")
    serve.add_argument(
        "--engine", default="ooo",
        choices=["ooo", "inorder", "reorder", "aggressive", "partitioned"],
    )
    serve.add_argument("--k", type=int, default=None, help="disorder bound K")
    serve.add_argument(
        "--purge", default="eager", help="purge policy: eager | lazy:<interval> | none"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="listen port (0 = ephemeral, printed at start)")
    serve.add_argument(
        "--dir", default=None, metavar="DIR",
        help="durability directory (WAL/checkpoint/journal); state found "
             "there is recovered before listening",
    )
    serve.add_argument("--liveness-timeout", type=float, default=2.0, metavar="S",
                       help="seconds of silence before a source is degraded")
    serve.add_argument("--dedupe-window", type=int, default=4096, metavar="N",
                       help="per-source idempotency window capacity")
    serve.add_argument(
        "--max-state", type=int, default=None, metavar="N",
        help="shed policy bound; enables the backpressure ladder "
             "(throttle hints, busy refusals) as state approaches N",
    )
    serve.add_argument("--checkpoint-every", type=int, default=256, metavar="N")
    serve.add_argument(
        "--telemetry-port", type=int, default=None, metavar="P",
        help="serve /metrics, /healthz, /sources on this port "
             "(0 = ephemeral, printed at start); also enables the "
             "metrics registry and stage-latency spans",
    )
    serve.add_argument(
        "--flight", action="store_true",
        help="keep a crash flight recorder; dumps DIR/flight.jsonl on "
             "crash or SIGTERM (requires --dir for the dump)",
    )

    send = commands.add_parser(
        "send", help="replay a trace file through the retrying gateway client"
    )
    send.add_argument("--host", default="127.0.0.1")
    send.add_argument("--port", type=int, required=True)
    send.add_argument("--source", required=True, help="this client's source id")
    send.add_argument("--stream", required=True, help="stream name (must match the schema)")
    send.add_argument("--trace", required=True, help="JSON-lines trace file to send")
    send.add_argument(
        "--t-event", default="ts", metavar="FIELD",
        help="attribute name carrying the occurrence timestamp; filled "
             "from each event's ts when absent from its attrs",
    )
    send.add_argument("--window", type=int, default=32,
                      help="max unacked frames in flight")
    send.add_argument("--timeout", type=float, default=5.0)
    send.add_argument("--stats", action="store_true",
                      help="fetch and print gateway counters after sending")

    return parser


def _parse_purge(text: str) -> PurgePolicy:
    if text == "eager":
        return PurgePolicy.eager()
    if text == "none":
        return PurgePolicy.none()
    if text.startswith("lazy:"):
        return PurgePolicy.lazy(int(text.split(":", 1)[1]))
    raise ReproError(f"unknown purge policy {text!r} (eager | lazy:<n> | none)")


def _parse_disorder(text: str):
    if text == "none":
        return NoDisorder()
    if text.startswith("burst:"):
        __, rate, length = text.split(":")
        return BurstDropoutModel(float(rate), int(length))
    rate, max_delay = text.split(":")
    return RandomDelayModel(float(rate), int(max_delay))


def _command_run(args: argparse.Namespace) -> int:
    if args.backend == "pipeline":
        # Shorthand: `--backend pipeline` selects the pipelined engine
        # with its native process workers.
        args.engine = "pipeline"
        args.backend = None
    pattern = parse(args.query)
    elements = load_trace(args.trace)
    purge = _parse_purge(args.purge)
    shed = (
        ShedPolicy.drop_oldest(args.max_state) if args.max_state is not None else None
    )
    controller = None
    if args.quality_target is not None:
        from repro.streams import AdaptiveKController

        controller = AdaptiveKController(
            quality_target=args.quality_target,
            initial_k=args.k if args.k is not None else 0,
        )

    def build_engine():
        engine = make_engine(
            args.engine, pattern, k=args.k, purge=purge,
            index=not args.no_index,
            workers=args.workers, backend=args.backend, shed=shed,
            speculative=args.speculative, controller=controller,
        )
        if args.validate == "quarantine":
            engine.validation = ValidationPolicy.QUARANTINE
        if args.metrics_out is not None:
            from repro.obs import MetricsRegistry

            # A fresh registry per build: after a crash, the rebuilt
            # engine's restore repopulates it from the checkpoint.
            engine.enable_observability(metrics=MetricsRegistry())
        return engine

    metrics_writer = None
    metrics_sink = None
    if args.metrics_out is not None:
        from repro.obs.export import MetricsJsonWriter

        metrics_sink = open(args.metrics_out, "w", encoding="utf-8")
        metrics_writer = MetricsJsonWriter(metrics_sink)

    resilient = args.checkpoint_every is not None or args.crash_at is not None
    if resilient:
        if args.checkpoint_dir is None:
            raise ReproError("--checkpoint-every/--crash-at require --checkpoint-dir")
        interval = args.checkpoint_every if args.checkpoint_every is not None else 1000
        fault = (
            FaultInjector(crash_at=[args.crash_at])
            if args.crash_at is not None
            else None
        )
        def build_runner() -> ResilientRunner:
            return ResilientRunner(
                build_engine(), args.checkpoint_dir,
                checkpoint_every=interval, fault=fault,
            )

        def note_crash(attempt: int, delay: float, exc: BaseException) -> None:
            print(f"crash injected: {exc}")
            print(f"recovering from {args.checkpoint_dir} ...")

        # The same supervisor loop the ingestion gateway deployments use:
        # rebuild-and-resume under the shared backoff schedule.
        runner, crashes = run_resilient(
            build_runner, elements,
            policy=BackoffPolicy(base=0.01, cap=0.1, jitter=0.0),
            on_crash=note_crash,
        )
        engine = runner.engine
        if crashes:
            print(
                f"recovered {crashes} time(s): replayed "
                f"{runner.replayed_elements} logged elements"
            )
    else:
        engine = build_engine()
        if metrics_writer is not None and args.metrics_every > 0:
            _feed_with_periodic_metrics(
                engine, elements, args.metrics_every, metrics_writer
            )
        elif args.batch_size is None:
            engine.feed_many(elements)
        elif args.batch_size <= 0:
            for element in elements:
                engine.feed(element)
        else:
            for lo in range(0, len(elements), args.batch_size):
                engine.feed_batch(elements[lo : lo + args.batch_size])
        engine.close()

    if metrics_writer is not None:
        _export_metrics(
            engine, len(elements), args.metrics_out, metrics_writer, metrics_sink
        )

    from repro.core.event import Event

    events_only = [e for e in elements if isinstance(e, Event)]
    latency = summarize_arrival_latency(engine.emissions, events_only)
    rows = [
        ["events", len(events_only)],
        ["matches", len(engine.results)],
        ["late dropped", engine.stats.late_dropped],
        ["quarantined", engine.stats.events_quarantined],
        ["shed", engine.stats.events_shed],
        ["index hits", engine.stats.index_hits],
        ["index misses", engine.stats.index_misses],
        ["peak state", engine.stats.peak_state_size],
        ["mean latency (events)", round(latency.mean, 2)],
        ["p99 latency (events)", round(latency.p99, 2)],
    ]
    if args.speculative:
        from repro.bench.runner import speculation_counts

        speculated, retracted = speculation_counts(engine)
        rows.append(["speculative emissions", speculated])
        rows.append(["retractions", retracted])
    if args.quality_target is not None:
        live = getattr(engine, "_controller", None)
        if live is not None:
            rows.append(["K re-freezes", live.adjustments])
            rows.append(["final K", engine.clock.k])
    if resilient:
        rows.append(["checkpoints written", runner.checkpoints_written])
    if args.verify:
        truth = OfflineOracle(pattern).evaluate_set(events_only)
        produced = (
            engine.net_result_set()
            if hasattr(engine, "net_result_set")
            else engine.result_set()
        )
        report = compare_keys(truth, produced, shed=engine.stats.events_shed)
        rows.append(["oracle matches", len(truth)])
        rows.append(["recall", round(report.recall, 4)])
        rows.append(["precision", round(report.precision, 4)])
    print(render_table(f"{args.engine} on {args.trace}", ["metric", "value"], rows))
    for match in engine.results[: args.show_matches]:
        print(f"  {match!r}")
    if args.verify and not report.exact:
        return 1
    return 0


def _feed_with_periodic_metrics(engine, elements, every: int, series) -> None:
    """Per-element feed writing a JSON-lines metrics snapshot every *every*.

    The final boundary is deliberately left to :meth:`MetricsJsonWriter.
    close`: the last snapshot of the series must be the post-close
    registry (it includes seal-time emissions), whether or not the trace
    length lands on the cadence — and a run whose length is NOT a
    multiple of *every* still gets its trailing partial interval.
    """
    total = len(elements)
    for index, element in enumerate(elements, start=1):
        engine.feed(element)
        if index % every == 0 and index < total:
            series.write(index, engine.observability.registry)


def _export_metrics(engine, total: int, out_path: str, series, sink) -> None:
    """Seal the JSON-lines series and write the Prometheus exposition."""
    from repro.obs.export import render_prometheus

    registry = engine.observability.registry
    series.close(total, registry)
    sink.close()
    prom_path = out_path + ".prom"
    with open(prom_path, "w", encoding="utf-8") as handle:
        handle.write(render_prometheus(registry))
    print(
        f"metrics: {series.written} JSON snapshot(s) -> {out_path}; "
        f"exposition -> {prom_path}"
    )


def _print_gateway_journal(directory: str) -> int:
    """Render DIR/gateway.jsonl as a human timeline; 0 when it exists."""
    import json
    from pathlib import Path

    path = Path(directory) / "gateway.jsonl"
    if not path.exists():
        print(f"no gateway journal at {path}")
        return 1
    print(f"gateway journal {path}:")
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            print(f"  (torn record: {line[:60]!r})")
            continue
        kind = record.get("kind", "?")
        if kind == "transition":
            print(
                f"  source {record.get('source')!r} -> {record.get('status')} "
                f"at {record.get('at')} (merged watermark {record.get('watermark')})"
            )
        elif kind == "listen":
            print(f"  listening on {record.get('host')}:{record.get('port')}")
        elif kind == "crash":
            print(f"  CRASH at seq {record.get('seq')}")
        elif kind == "recover":
            line = f"  recovered: {record.get('frames')} frames replayed from the WAL"
            if record.get("sources"):
                line += (
                    f"; watermark resumed at {record.get('watermark')} holding "
                    f"for {', '.join(record['sources'])}"
                )
            print(line)
        elif kind == "source":
            print(f"  source {record.get('source')!r} first seen")
        elif kind == "seal":
            print(f"  sealed: {record.get('matches')} matches delivered")
        else:
            print(f"  {record}")
    return 0


def _print_flight_dump(path_arg: str) -> int:
    """Post-mortem a flight.jsonl dump; 0 when it exists and parses."""
    from pathlib import Path

    from repro.obs.flight import load_flight, render_flight_lines

    path = Path(path_arg)
    if path.is_dir():
        path = path / "flight.jsonl"
    if not path.exists():
        print(f"no flight dump at {path}")
        return 1
    header, records = load_flight(path.read_text(encoding="utf-8"))
    print("\n".join(render_flight_lines(header, records)))
    return 0


def _command_explain(args: argparse.Namespace) -> int:
    from repro.obs import explain as explain_mod

    sidecar_status = None
    if args.flight is not None:
        sidecar_status = _print_flight_dump(args.flight)
    if args.gateway is not None:
        if sidecar_status is not None:
            print()
        journal_status = _print_gateway_journal(args.gateway)
        sidecar_status = max(sidecar_status or 0, journal_status)
    if args.query is None or args.trace is None:
        if sidecar_status is not None:
            return sidecar_status
        raise ReproError(
            "explain needs --query and --trace "
            "(or --gateway DIR / --flight DUMP)"
        )
    if sidecar_status is not None:
        print()
    pattern = parse(args.query)
    elements = load_trace(args.trace)
    engine = make_engine(
        args.engine, pattern, k=args.k, purge=_parse_purge(args.purge)
    )
    tracer = explain_mod.replay_with_tracing(engine, elements, capacity=args.capacity)
    print("\n".join(explain_mod.summary_lines(tracer)))
    print()

    status = 0
    if args.match is not None:
        try:
            eids = [int(part) for part in args.match.split(",") if part.strip()]
        except ValueError:
            raise ReproError(f"--match expects comma-separated event ids, got {args.match!r}")
        targets = explain_mod.emitted_matches(engine, eids)
        if not targets:
            print(f"no emitted match contains event ids {eids}")
            status = 1
        for match in targets[: args.limit]:
            print(explain_mod.explain_match(tracer, match))
            print()
    if args.missing:
        missing, total = explain_mod.missing_matches(pattern, elements, engine)
        print(f"oracle: {total} matches, engine missed {len(missing)}")
        for match in missing[: args.limit]:
            print(explain_mod.explain_missing(tracer, match))
            print()
    if args.match is None and not args.missing:
        for match in explain_mod.emitted_matches(engine)[: args.limit]:
            print(explain_mod.explain_match(tracer, match))
            print()
    return status


def _command_generate(args: argparse.Namespace) -> int:
    if args.workload == "synthetic":
        workload = SyntheticWorkload(
            event_count=args.events, seed=args.seed,
            disorder=_parse_disorder(args.disorder),
        )
        __, arrival = workload.generate()
        print(f"query hint: {workload.query!r}")
    elif args.workload == "rfid":
        trace = RfidStoreGenerator(items=args.events, seed=args.seed).generate()
        arrival = _parse_disorder(args.disorder).apply(trace.merged)
        print(f"ground truth: {len(trace.shoplifted_tags)} shoplifted tags")
    elif args.workload == "intrusion":
        trace = IntrusionGenerator(seed=args.seed).generate()
        arrival = _parse_disorder(args.disorder).apply(trace.events)
        print(
            f"ground truth: {len(trace.brute_force_sources)} brute-force, "
            f"{len(trace.exfiltration_sources)} exfiltration attackers"
        )
    else:
        events = StockFeedGenerator(count=args.events, seed=args.seed).generate()
        arrival = _parse_disorder(args.disorder).apply(events)
    count = dump_trace(arrival, args.out)
    stats = measure_disorder(arrival)
    print(f"wrote {count} events to {args.out}")
    print(f"disorder: rate={stats.rate:.3f} max_delay={stats.max_delay}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.ingest import GatewayConfig, IngestGateway, load_schema

    pattern = parse(args.query)
    schema = load_schema(args.schema)
    shed = (
        ShedPolicy.drop_oldest(args.max_state) if args.max_state is not None else None
    )
    purge = _parse_purge(args.purge)

    def build_engine():
        return make_engine(
            args.engine, pattern, k=args.k, purge=purge, shed=shed
        )

    config = GatewayConfig(
        schema,
        host=args.host,
        port=args.port,
        dedupe_window=args.dedupe_window,
        liveness_timeout=args.liveness_timeout,
        checkpoint_every=args.checkpoint_every,
        telemetry_port=args.telemetry_port,
    )
    metrics = None
    if args.telemetry_port is not None:
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
    flight = None
    if args.flight:
        from repro.obs.flight import FlightRecorder

        flight = FlightRecorder()
    gateway = IngestGateway(
        build_engine, config, directory=args.dir, metrics=metrics, flight=flight
    )

    async def serve() -> None:
        await gateway.start()
        print(
            f"gateway: stream {schema.name!r} on {config.host}:{gateway.port}"
            + (f", durable in {args.dir}" if args.dir else " (no durability dir)")
        )
        if config.telemetry_port is not None:
            print(
                f"telemetry: http://{config.host}:{gateway.telemetry_port}"
                "/metrics /healthz /sources"
            )
        if gateway.recovered_frames:
            print(f"recovered: {gateway.recovered_frames} frames replayed from the WAL")
        try:
            while not gateway.crashed and not gateway.terminated:
                await asyncio.sleep(0.25)
        finally:
            # Reached on Ctrl-C (asyncio.run cancels us) or crash.
            await gateway.stop(seal=not gateway.crashed)

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    stats = gateway.stats()
    rows = [
        ["admitted", stats["admitted"]],
        ["duplicates", stats["duplicates"]],
        ["quarantined", stats["quarantined"]],
        ["busy refusals", stats["busy"]],
        ["sources degraded", stats["degraded_total"]],
        ["sources recovered", stats["recovered_total"]],
        ["final watermark", stats["watermark"]],
        ["matches", stats["matches"]],
    ]
    print(render_table(f"gateway {schema.name!r}", ["metric", "value"], rows))
    return 1 if gateway.crashed else 0


def _command_send(args: argparse.Namespace) -> int:
    from repro.core.event import Event
    from repro.ingest import IngestClient

    elements = load_trace(args.trace)
    client = IngestClient(
        args.host, args.port, args.source, args.stream,
        timeout=args.timeout, window=args.window,
    )
    client.connect()
    sent = 0
    for element in elements:
        if isinstance(element, Event):
            attrs = dict(element.attrs)
            attrs.setdefault(args.t_event, element.ts)
            client.send(element.etype, attrs)
            sent += 1
        else:
            client.watermark(element.ts)
    stats = client.stats() if args.stats else None
    report = client.close()
    rows = [
        ["frames sent", report.sent],
        ["admitted", report.admitted],
        ["duplicates", report.duplicates],
        ["quarantined", report.quarantined],
        ["busy retries", report.busy_retries],
        ["reconnects", report.reconnects],
        ["resends", report.resends],
        ["p50 ack latency (s)", round(report.latency_quantile(0.50), 6)],
        ["p99 ack latency (s)", round(report.latency_quantile(0.99), 6)],
    ]
    print(render_table(f"sent {args.trace} as {args.source!r}", ["metric", "value"], rows))
    if stats is not None:
        print(
            f"gateway totals: admitted={stats['admitted']} "
            f"duplicates={stats['duplicates']} quarantined={stats['quarantined']} "
            f"watermark={stats['watermark']}"
        )
    return 0


def _command_inspect(args: argparse.Namespace) -> int:
    from repro.core.event import Event, Punctuation

    elements = load_trace(args.trace)
    events = [e for e in elements if isinstance(e, Event)]
    punctuations = [e for e in elements if isinstance(e, Punctuation)]
    stats = measure_disorder(events)
    by_type: dict = {}
    for event in events:
        by_type[event.etype] = by_type.get(event.etype, 0) + 1
    rows = [
        ["events", len(events)],
        ["punctuations", len(punctuations)],
        ["types", len(by_type)],
        ["ts range", f"{min((e.ts for e in events), default=0)}.."
                     f"{max((e.ts for e in events), default=0)}"],
        ["disorder rate", round(stats.rate, 4)],
        ["max delay (required K)", stats.max_delay],
        ["mean delay", round(stats.mean_delay, 2)],
    ]
    print(render_table(f"trace {args.trace}", ["metric", "value"], rows))
    type_rows = sorted(by_type.items(), key=lambda kv: -kv[1])
    print(render_table("events by type", ["type", "count"], type_rows))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            return _command_run(args)
        if args.command == "generate":
            return _command_generate(args)
        if args.command == "explain":
            return _command_explain(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "send":
            return _command_send(args)
        return _command_inspect(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
