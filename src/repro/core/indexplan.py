"""Equality-index planning and predicate compilation for construction.

Sequence construction extends a trigger binding one step at a time,
fetching candidates for each unbound step from that step's ts-sorted
stack.  Two per-pattern artefacts, both computed once at constructor
build time, cut the per-candidate cost of that loop:

* **Index plan** — for each (trigger step, depth) in the construction
  order, pick an attribute-equality predicate ``x.a == y.b`` whose one
  side is the step being extended and whose other side is already
  bound.  The stack's equality index (``SortedStack`` posting lists)
  can then serve exactly the candidates with the matching attribute
  value, clamped to the timestamp window by bisect — replacing the
  range scan whose candidates would mostly fail that very predicate.
  Steps with no such key fall back to ``range_after`` unchanged.

* **Compiled predicate pipelines** — each staged predicate list is
  folded into one closure specialising ``Attr`` access (direct
  ``_attrs`` reads, ``ts`` special-cased) and the comparison operator,
  removing the interpretive dispatch of ``Predicate.evaluate`` chains.
  Two pipelines are kept per stage: the *full* one for range-scanned
  candidates, and a *reduced* one — minus the predicate the index
  lookup already guarantees — for index-served candidates.

Both artefacts are semantics-preserving: an index-served candidate set
is exactly the subset of the range scan that satisfies the chosen
equality (hash buckets group by ``==``, the same relation the predicate
tests), and compiled pipelines evaluate the same predicates in the same
order with the same ``predicate_evaluations`` accounting.  The
``index=False`` ablation flag on :class:`SequenceConstructor` disables
the plan (alongside the E6 ``optimize`` flag) so identity is testable.

Planning is conservative: only plain-attribute equalities between two
positive step variables are index-eligible (``ts`` references and
constant comparisons are not), and a stack that ever stores an
instance whose indexed attribute is missing or unhashable disables its
index (lookups return ``None`` and construction falls back to the
range scan), so exotic attribute values never change results.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.event import Event
from repro.core.pattern import Pattern
from repro.core.predicates import Attr, Comparison, Const, Predicate, Term
from repro.core.stats import EngineStats

Bindings = Dict[str, Event]
#: ``(candidate attribute name, bound-side value getter)`` — at lookup
#: time the getter reads the already-bound event's attribute and the
#: stack is probed for candidates equal to it.
LookupSpec = Tuple[str, Callable[[Bindings], Any]]
#: One construction stage: full pipeline (range-scanned candidates),
#: reduced pipeline (index-served candidates), optional lookup spec.
StagePlan = Tuple[
    Optional[Callable[[Bindings, Optional[EngineStats]], bool]],
    Optional[Callable[[Bindings, Optional[EngineStats]], bool]],
    Optional[LookupSpec],
]


def compile_term(term: Term) -> Callable[[Bindings], Any]:
    """A closure evaluating *term*, specialised per term shape.

    Mirrors ``Term.evaluate`` exactly — including the ``ts`` special
    case and the descriptive missing-attribute error re-raised through
    the event's public accessor.
    """
    if isinstance(term, Const):
        value = term.value
        return lambda bindings: value
    if isinstance(term, Attr):
        var = term.var
        name = term.name
        if name == "ts":
            return lambda bindings: bindings[var].ts

        def read_attr(bindings: Bindings) -> Any:
            event = bindings[var]
            try:
                return event._attrs[name]
            except KeyError:
                return event[name]  # re-enter for the descriptive error

        return read_attr
    return term.evaluate


def compile_term_columnar(term: Term, var: str):
    """A closure reading *term* straight from an :class:`EventBatch` row.

    Returns ``fn(batch, i) -> value`` for terms a single-variable
    admission predicate can reference — constants and attributes of
    *var* (the row's own event) — or ``None`` for anything else (the
    caller falls back to interpreted evaluation on a materialised
    event).  Semantics mirror :func:`compile_term` exactly: ``ts`` is
    special-cased, and a missing attribute re-enters the event's public
    accessor for its descriptive ``KeyError``.
    """
    if isinstance(term, Const):
        value = term.value
        return lambda batch, i: value
    if isinstance(term, Attr) and term.var == var:
        name = term.name
        if name == "ts":
            return lambda batch, i: batch.ts[i]

        def read_column(batch, i):
            column = batch.columns.get(name)
            if column is not None and column[1][i]:
                return column[0][i]
            return batch.event(i)[name]  # re-enter for the descriptive error

        return read_column
    return None


def compile_predicate_columnar(predicate: Predicate, var: str):
    """Columnar form of one single-variable admission predicate.

    ``fn(batch, i) -> bool`` evaluating against the batch's columns
    without materialising the row, or ``None`` when the predicate shape
    is not columnar-compilable (``FnPredicate``, boolean combinators) —
    mirroring :func:`compile_predicate`, only bare comparisons are
    specialised, with the same ``TypeError`` → ``False`` contract.
    """
    if isinstance(predicate, Comparison):
        left = compile_term_columnar(predicate.left, var)
        right = compile_term_columnar(predicate.right, var)
        if left is None or right is None:
            return None
        fn = predicate._fn

        def run(batch, i) -> bool:
            try:
                return bool(fn(left(batch, i), right(batch, i)))
            except TypeError:
                # Heterogeneous attribute types never match.
                return False

        return run
    return None


#: One admission check in evaluation order: the columnar closure when
#: the predicate compiled, else ``None`` paired with the interpreted
#: predicate (evaluated on the lazily materialised event).
AdmissionCheck = Tuple[Optional[Callable[[Any, int], bool]], Predicate]


def compile_admission(
    dispatch: Dict[str, Tuple[Tuple[int, str, Tuple[Predicate, ...]], ...]],
) -> Dict[str, Tuple[Tuple[int, str, Tuple[AdmissionCheck, ...]], ...]]:
    """Columnar mirror of ``SequenceScanner.dispatch()``.

    Per event type, per admissible step: the step index, its variable,
    and the local predicates as :data:`AdmissionCheck` pairs **in their
    original order** — order is observable (short-circuiting decides
    which predicate raises on a missing attribute), so columnar and
    interpreted checks interleave rather than being re-grouped.
    """
    table: Dict[str, Tuple[Tuple[int, str, Tuple[AdmissionCheck, ...]], ...]] = {}
    for etype, entries in dispatch.items():
        table[etype] = tuple(
            (
                step_index,
                var,
                tuple(
                    (compile_predicate_columnar(p, var), p) for p in predicates
                ),
            )
            for step_index, var, predicates in entries
        )
    return table


#: Per-scanner memo of :func:`compile_admission`.  The compiled table
#: is a pure function of the scanner's immutable dispatch, so it lives
#: beside the scanner rather than as engine state: engines carry no
#: derived unpicklable attribute, and a snapshot/restore round trip
#: has nothing here to lose or invalidate.
_ADMISSION_TABLES: "weakref.WeakKeyDictionary[Any, Any]" = (
    weakref.WeakKeyDictionary()
)


def admission_table(
    scanner: Any,
) -> Dict[str, Tuple[Tuple[int, str, Tuple[AdmissionCheck, ...]], ...]]:
    """The memoised :func:`compile_admission` table for *scanner*."""
    table = _ADMISSION_TABLES.get(scanner)
    if table is None:
        table = _ADMISSION_TABLES[scanner] = compile_admission(scanner.dispatch())
    return table


def compile_predicate(predicate: Predicate) -> Callable[[Bindings], bool]:
    """A closure evaluating *predicate* under full bindings.

    Comparisons are specialised (operand getters + bound operator
    function, ``TypeError`` → False exactly like the interpreted path);
    every other predicate shape falls back to its ``evaluate`` method.
    """
    if isinstance(predicate, Comparison):
        left = compile_term(predicate.left)
        right = compile_term(predicate.right)
        fn = predicate._fn

        def run(bindings: Bindings) -> bool:
            try:
                return bool(fn(left(bindings), right(bindings)))
            except TypeError:
                # Heterogeneous attribute types never match.
                return False

        return run
    return predicate.evaluate


def compile_stage(
    predicates: Sequence[Predicate],
) -> Optional[Callable[[Bindings, Optional[EngineStats]], bool]]:
    """Fold a staged predicate list into one conjunction closure.

    Returns ``None`` for an empty stage (callers skip the call
    entirely).  Accounting matches the interpreted ``_staged_ok``:
    one ``predicate_evaluations`` tick per predicate actually
    evaluated, short-circuiting on the first failure.
    """
    if not predicates:
        return None
    compiled = tuple(compile_predicate(p) for p in predicates)
    if len(compiled) == 1:
        single = compiled[0]

        def check_one(bindings: Bindings, stats: Optional[EngineStats]) -> bool:
            if stats is not None:
                stats.predicate_evaluations += 1
            return single(bindings)

        return check_one

    def check_all(bindings: Bindings, stats: Optional[EngineStats]) -> bool:
        for predicate in compiled:
            if stats is not None:
                stats.predicate_evaluations += 1
            if not predicate(bindings):
                return False
        return True

    return check_all


class ConstructionPlan:
    """Compiled pipelines plus the index plan for one pattern.

    ``stages[t][d]`` is the :data:`StagePlan` for construction order
    ``t`` (trigger at positive step ``t``) at binding depth ``d``;
    ``indexed_attrs[s]`` names the attributes step ``s``'s stack must
    index (``None`` when no lookup was planned anywhere, so engines can
    skip index maintenance entirely).
    """

    __slots__ = ("stages", "indexed_attrs")

    def __init__(
        self,
        stages: List[List[StagePlan]],
        indexed_attrs: Optional[List[Tuple[str, ...]]],
    ):
        self.stages = stages
        self.indexed_attrs = indexed_attrs


def build_plan(
    pattern: Pattern,
    variables: Sequence[str],
    orders: Sequence[Sequence[int]],
    staged: Sequence[Sequence[Sequence[Predicate]]],
    use_index: bool,
) -> ConstructionPlan:
    """Plan every (trigger, depth) stage of construction for *pattern*.

    *variables*, *orders* and *staged* are the constructor's own
    artefacts (variable per positive step, trigger-anchored binding
    orders, per-order staged predicate lists).  With ``use_index``
    False only the compiled pipelines are produced.
    """
    stages: List[List[StagePlan]] = []
    attrs_by_step: Dict[int, set] = {}
    for order, order_staged in zip(orders, staged):
        plans: List[StagePlan] = [(compile_stage(order_staged[0]), None, None)]
        for depth in range(1, len(order)):
            step = order[depth]
            predicates = list(order_staged[depth])
            full = compile_stage(predicates)
            spec: Optional[LookupSpec] = None
            reduced = full
            if use_index:
                chosen = _choose_equality(predicates, variables[step])
                if chosen is not None:
                    predicate, candidate_attr, bound_attr = chosen
                    spec = (candidate_attr.name, compile_term(bound_attr))
                    remaining = list(predicates)
                    remaining.remove(predicate)
                    reduced = compile_stage(remaining)
                    attrs_by_step.setdefault(step, set()).add(candidate_attr.name)
            plans.append((full, reduced, spec))
        stages.append(plans)
    indexed_attrs: Optional[List[Tuple[str, ...]]] = None
    if attrs_by_step:
        indexed_attrs = [
            tuple(sorted(attrs_by_step.get(step, ())))
            for step in range(pattern.length)
        ]
    return ConstructionPlan(stages, indexed_attrs)


def _choose_equality(
    predicates: Sequence[Predicate], candidate_var: str
) -> Optional[Tuple[Predicate, Attr, Attr]]:
    """First index-eligible equality in this stage, deterministically.

    A pair qualifies when its predicate is a bare comparison (so the
    lookup satisfies the *whole* predicate, which the reduced pipeline
    then omits), one side references the step being extended
    (*candidate_var*) by a plain attribute — ``ts`` lives outside the
    attribute map, and the timestamp window already narrows on it — and
    the other side references any other variable.  Predicates staged at
    this depth mention only bound variables plus *candidate_var*, so
    the other side is guaranteed bound.
    """
    for predicate in predicates:
        if not isinstance(predicate, Comparison):
            continue
        for left, right in predicate.equality_pairs():
            if left.var == candidate_var:
                candidate_attr, bound_attr = left, right
            elif right.var == candidate_var:
                candidate_attr, bound_attr = right, left
            else:
                continue
            if candidate_attr.name == "ts":
                continue
            return predicate, candidate_attr, bound_attr
    return None
