"""Equality-index planning and predicate compilation for construction.

Sequence construction extends a trigger binding one step at a time,
fetching candidates for each unbound step from that step's ts-sorted
stack.  Two per-pattern artefacts, both computed once at constructor
build time, cut the per-candidate cost of that loop:

* **Index plan** — for each (trigger step, depth) in the construction
  order, pick an attribute-equality predicate ``x.a == y.b`` whose one
  side is the step being extended and whose other side is already
  bound.  The stack's equality index (``SortedStack`` posting lists)
  can then serve exactly the candidates with the matching attribute
  value, clamped to the timestamp window by bisect — replacing the
  range scan whose candidates would mostly fail that very predicate.
  Steps with no such key fall back to ``range_after`` unchanged.

* **Compiled predicate pipelines** — each staged predicate list is
  folded into one closure specialising ``Attr`` access (direct
  ``_attrs`` reads, ``ts`` special-cased) and the comparison operator,
  removing the interpretive dispatch of ``Predicate.evaluate`` chains.
  Two pipelines are kept per stage: the *full* one for range-scanned
  candidates, and a *reduced* one — minus the predicate the index
  lookup already guarantees — for index-served candidates.

Both artefacts are semantics-preserving: an index-served candidate set
is exactly the subset of the range scan that satisfies the chosen
equality (hash buckets group by ``==``, the same relation the predicate
tests), and compiled pipelines evaluate the same predicates in the same
order with the same ``predicate_evaluations`` accounting.  The
``index=False`` ablation flag on :class:`SequenceConstructor` disables
the plan (alongside the E6 ``optimize`` flag) so identity is testable.

Planning is conservative: only plain-attribute equalities between two
positive step variables are index-eligible (``ts`` references and
constant comparisons are not), and a stack that ever stores an
instance whose indexed attribute is missing or unhashable disables its
index (lookups return ``None`` and construction falls back to the
range scan), so exotic attribute values never change results.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.event import Event
from repro.core.pattern import Pattern
from repro.core.predicates import Attr, Comparison, Const, Predicate, Term
from repro.core.stats import EngineStats

Bindings = Dict[str, Event]
#: ``(candidate attribute name, bound-side value getter)`` — at lookup
#: time the getter reads the already-bound event's attribute and the
#: stack is probed for candidates equal to it.
LookupSpec = Tuple[str, Callable[[Bindings], Any]]
#: One construction stage: full pipeline (range-scanned candidates),
#: reduced pipeline (index-served candidates), optional lookup spec.
StagePlan = Tuple[
    Optional[Callable[[Bindings, Optional[EngineStats]], bool]],
    Optional[Callable[[Bindings, Optional[EngineStats]], bool]],
    Optional[LookupSpec],
]


def compile_term(term: Term) -> Callable[[Bindings], Any]:
    """A closure evaluating *term*, specialised per term shape.

    Mirrors ``Term.evaluate`` exactly — including the ``ts`` special
    case and the descriptive missing-attribute error re-raised through
    the event's public accessor.
    """
    if isinstance(term, Const):
        value = term.value
        return lambda bindings: value
    if isinstance(term, Attr):
        var = term.var
        name = term.name
        if name == "ts":
            return lambda bindings: bindings[var].ts

        def read_attr(bindings: Bindings) -> Any:
            event = bindings[var]
            try:
                return event._attrs[name]
            except KeyError:
                return event[name]  # re-enter for the descriptive error

        return read_attr
    return term.evaluate


def compile_predicate(predicate: Predicate) -> Callable[[Bindings], bool]:
    """A closure evaluating *predicate* under full bindings.

    Comparisons are specialised (operand getters + bound operator
    function, ``TypeError`` → False exactly like the interpreted path);
    every other predicate shape falls back to its ``evaluate`` method.
    """
    if isinstance(predicate, Comparison):
        left = compile_term(predicate.left)
        right = compile_term(predicate.right)
        fn = predicate._fn

        def run(bindings: Bindings) -> bool:
            try:
                return bool(fn(left(bindings), right(bindings)))
            except TypeError:
                # Heterogeneous attribute types never match.
                return False

        return run
    return predicate.evaluate


def compile_stage(
    predicates: Sequence[Predicate],
) -> Optional[Callable[[Bindings, Optional[EngineStats]], bool]]:
    """Fold a staged predicate list into one conjunction closure.

    Returns ``None`` for an empty stage (callers skip the call
    entirely).  Accounting matches the interpreted ``_staged_ok``:
    one ``predicate_evaluations`` tick per predicate actually
    evaluated, short-circuiting on the first failure.
    """
    if not predicates:
        return None
    compiled = tuple(compile_predicate(p) for p in predicates)
    if len(compiled) == 1:
        single = compiled[0]

        def check_one(bindings: Bindings, stats: Optional[EngineStats]) -> bool:
            if stats is not None:
                stats.predicate_evaluations += 1
            return single(bindings)

        return check_one

    def check_all(bindings: Bindings, stats: Optional[EngineStats]) -> bool:
        for predicate in compiled:
            if stats is not None:
                stats.predicate_evaluations += 1
            if not predicate(bindings):
                return False
        return True

    return check_all


class ConstructionPlan:
    """Compiled pipelines plus the index plan for one pattern.

    ``stages[t][d]`` is the :data:`StagePlan` for construction order
    ``t`` (trigger at positive step ``t``) at binding depth ``d``;
    ``indexed_attrs[s]`` names the attributes step ``s``'s stack must
    index (``None`` when no lookup was planned anywhere, so engines can
    skip index maintenance entirely).
    """

    __slots__ = ("stages", "indexed_attrs")

    def __init__(
        self,
        stages: List[List[StagePlan]],
        indexed_attrs: Optional[List[Tuple[str, ...]]],
    ):
        self.stages = stages
        self.indexed_attrs = indexed_attrs


def build_plan(
    pattern: Pattern,
    variables: Sequence[str],
    orders: Sequence[Sequence[int]],
    staged: Sequence[Sequence[Sequence[Predicate]]],
    use_index: bool,
) -> ConstructionPlan:
    """Plan every (trigger, depth) stage of construction for *pattern*.

    *variables*, *orders* and *staged* are the constructor's own
    artefacts (variable per positive step, trigger-anchored binding
    orders, per-order staged predicate lists).  With ``use_index``
    False only the compiled pipelines are produced.
    """
    stages: List[List[StagePlan]] = []
    attrs_by_step: Dict[int, set] = {}
    for order, order_staged in zip(orders, staged):
        plans: List[StagePlan] = [(compile_stage(order_staged[0]), None, None)]
        for depth in range(1, len(order)):
            step = order[depth]
            predicates = list(order_staged[depth])
            full = compile_stage(predicates)
            spec: Optional[LookupSpec] = None
            reduced = full
            if use_index:
                chosen = _choose_equality(predicates, variables[step])
                if chosen is not None:
                    predicate, candidate_attr, bound_attr = chosen
                    spec = (candidate_attr.name, compile_term(bound_attr))
                    remaining = list(predicates)
                    remaining.remove(predicate)
                    reduced = compile_stage(remaining)
                    attrs_by_step.setdefault(step, set()).add(candidate_attr.name)
            plans.append((full, reduced, spec))
        stages.append(plans)
    indexed_attrs: Optional[List[Tuple[str, ...]]] = None
    if attrs_by_step:
        indexed_attrs = [
            tuple(sorted(attrs_by_step.get(step, ())))
            for step in range(pattern.length)
        ]
    return ConstructionPlan(stages, indexed_attrs)


def _choose_equality(
    predicates: Sequence[Predicate], candidate_var: str
) -> Optional[Tuple[Predicate, Attr, Attr]]:
    """First index-eligible equality in this stage, deterministically.

    A pair qualifies when its predicate is a bare comparison (so the
    lookup satisfies the *whole* predicate, which the reduced pipeline
    then omits), one side references the step being extended
    (*candidate_var*) by a plain attribute — ``ts`` lives outside the
    attribute map, and the timestamp window already narrows on it — and
    the other side references any other variable.  Predicates staged at
    this depth mention only bound variables plus *candidate_var*, so
    the other side is guaranteed bound.
    """
    for predicate in predicates:
        if not isinstance(predicate, Comparison):
            continue
        for left, right in predicate.equality_pairs():
            if left.var == candidate_var:
                candidate_attr, bound_attr = left, right
            elif right.var == candidate_var:
                candidate_attr, bound_attr = right, left
            else:
                continue
            if candidate_attr.name == "ts":
                continue
            return predicate, candidate_attr, bound_attr
    return None
