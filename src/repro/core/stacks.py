"""Active Instance Stacks (AIS): the engine's per-step state.

The SASE architecture keeps, for every positive pattern step, a stack
of *active instances* — events of that step's type that passed the
per-step predicates and may still contribute to future matches.  With
in-order arrival the stack is naturally sorted by occurrence time and
new instances are appended.  The paper's key data-structure change is
to keep the stacks **sorted by occurrence time under out-of-order
insertion**: a late event is spliced into its timestamp position so
that sequence construction can keep using ordered-range scans
(binary-searched) regardless of arrival order.

Each stored :class:`Instance` records its **arrival sequence number**.
Construction uses it for exactly-once output: a combination is emitted
only by the arrival of its latest-arriving member (see
``repro.core.construction``).

A parallel :class:`NegativeStore` holds events of negated types, also
ts-sorted, consulted when a pending match's negation bracket seals.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.event import Event

_INF = float("inf")
_NO_CANDIDATES: Tuple = ()


class Instance:
    """An event admitted to a stack, tagged with its arrival sequence."""

    __slots__ = ("event", "arrival")

    def __init__(self, event: Event, arrival: int):
        self.event = event
        self.arrival = arrival

    @property
    def ts(self) -> int:
        return self.event.ts

    def sort_key(self) -> Tuple[int, int]:
        """Total order used inside stacks: occurrence time, then identity."""
        return (self.event.ts, self.event.eid)

    def __repr__(self) -> str:
        return f"Instance({self.event!r}, arrival={self.arrival})"


class SortedStack:
    """A timestamp-sorted sequence of instances with range queries.

    Despite the historical name "stack" (from SASE, where in-order
    arrival makes it append-only), this structure supports O(log n)
    positional insertion for late events and O(log n + m) range
    extraction, which is what out-of-order construction needs.

    When *indexed_attrs* names attributes (chosen by the construction
    plan from the pattern's equality joins), the stack additionally
    maintains one **equality index** per attribute: a hash map from
    attribute value to a ts-sorted posting list of the instances
    carrying that value.  :meth:`equality_candidates` then serves an
    equi-join lookup as a hash probe plus a bisected window clamp
    instead of a full range scan.  Posting lists are kept consistent
    under splice insertion, purging, shedding and ``clear``; like
    ``_keys`` they are a derived cache rebuilt on restore.  An instance
    whose indexed attribute is missing or unhashable permanently
    disables that attribute's index on this stack (lookups return
    ``None``, callers fall back to the range scan), so the index never
    changes results for exotic attribute values.
    """

    __slots__ = (
        "step_index",
        "_instances",
        "_keys",
        "inserted",
        "purged",
        "indexed_attrs",
        "_postings",
        "_index_disabled",
    )

    def __init__(self, step_index: int, indexed_attrs: Sequence[str] = ()):
        self.step_index = step_index
        self._instances: List[Instance] = []
        # Parallel (ts, eid) list for bisect; derived from _instances and
        # rebuilt by restore_state, so snapshots never carry it.
        self._keys: List[Tuple[int, int]] = []  # repro: ignore[R001] -- derived cache, rebuilt on restore
        self.indexed_attrs: Tuple[str, ...] = tuple(indexed_attrs)
        # Equality index: attr -> value -> parallel (keys, instances)
        # posting lists in (ts, eid) order.  Derived from _instances like
        # _keys (rebuilt by restore_state, never serialised).
        self._postings: Dict[str, Dict[Any, Tuple[List[Tuple[int, int]], List[Instance]]]] = {  # repro: ignore[R001] -- derived cache, rebuilt on restore
            name: {} for name in self.indexed_attrs
        }
        # Attributes whose index has been disabled by an unindexable
        # instance.  Sticky and snapshotted: a restored engine must keep
        # falling back exactly where the live one did, even if the
        # offending instance has since been purged.
        self._index_disabled: set = set()
        self.inserted = 0
        self.purged = 0

    def __len__(self) -> int:
        return len(self._instances)

    def __iter__(self) -> Iterator[Instance]:
        return iter(self._instances)

    def insert(self, instance: Instance) -> int:
        """Insert at the timestamp-sorted position; returns the index.

        Appends in O(1) for the common in-order case, splices via
        binary search otherwise.
        """
        key = instance.sort_key()
        if not self._keys or key >= self._keys[-1]:
            self._keys.append(key)
            self._instances.append(instance)
            index = len(self._instances) - 1
        else:
            index = bisect_right(self._keys, key)
            self._keys.insert(index, key)
            self._instances.insert(index, instance)
        if self.indexed_attrs:
            self._index_insert(instance, key)
        self.inserted += 1
        return index

    # -- equality index ---------------------------------------------------------

    def _index_insert(self, instance: Instance, key: Tuple[int, int]) -> None:
        attrs = instance.event._attrs
        disabled = self._index_disabled
        for name in self._postings:
            if name in disabled:
                continue
            postings = self._postings[name]
            try:
                value = attrs[name]
                entry = postings.get(value)
            except (KeyError, TypeError):
                # Missing or unhashable value: this attribute's index can
                # no longer answer for this stack.  Drop its postings and
                # fall back to range scans from here on.
                disabled.add(name)
                postings.clear()
                continue
            if entry is None:
                postings[value] = ([key], [instance])
            else:
                keys, instances = entry
                if key >= keys[-1]:
                    keys.append(key)
                    instances.append(instance)
                else:
                    at = bisect_right(keys, key)
                    keys.insert(at, key)
                    instances.insert(at, instance)

    def _index_drop_prefix(self, cut: int) -> None:
        """Remove the oldest *cut* instances from every posting list.

        Both purge and shedding remove a global ``(ts, eid)`` prefix, so
        the removals form a prefix of each posting list too.
        """
        removed = self._instances[:cut]
        disabled = self._index_disabled
        for name in self._postings:
            if name in disabled:
                continue
            postings = self._postings[name]
            counts: Dict[Any, int] = {}
            for instance in removed:
                value = instance.event._attrs[name]
                counts[value] = counts.get(value, 0) + 1
            for value, count in counts.items():
                keys, instances = postings[value]
                if count >= len(keys):
                    del postings[value]
                else:
                    del keys[:count]
                    del instances[:count]

    def equality_candidates(
        self, name: str, value: Any, ts: int, max_ts: int
    ) -> Optional[Sequence[Instance]]:
        """Instances with ``event[name] == value`` and ``ts < instance.ts <= max_ts``.

        The indexed analogue of :meth:`range_after`: a hash probe on the
        attribute's posting map, then a bisected window clamp.  Returns
        ``None`` when the index cannot answer — the attribute is not
        indexed here, its index was disabled by an unindexable instance,
        or the probe value itself is unhashable — in which case the
        caller must fall back to the range scan.
        """
        if name in self._index_disabled:
            return None
        postings = self._postings.get(name)
        if postings is None:
            return None
        try:
            if value != value:
                # NaN-like probe: ``==`` is never true for it, but dict
                # lookup's identity shortcut could still hit its own
                # bucket.  The equality predicate would reject every
                # candidate, so the correct answer is the empty set.
                return _NO_CANDIDATES
            entry = postings.get(value)
        except (TypeError, ValueError):
            return None
        if entry is None:
            return _NO_CANDIDATES
        keys, instances = entry
        lo = bisect_right(keys, (ts, _INF))
        hi = bisect_right(keys, (max_ts, _INF))
        return instances[lo:hi]

    # -- range queries --------------------------------------------------------

    def range_before(self, ts: int, min_ts: Optional[int] = None) -> List[Instance]:
        """Instances with ``min_ts <= instance.ts < ts`` (min unbounded if None)."""
        hi = bisect_left(self._keys, (ts, -1))
        lo = 0 if min_ts is None else bisect_left(self._keys, (min_ts, -1))
        return self._instances[lo:hi]

    def range_after(self, ts: int, max_ts: Optional[int] = None) -> List[Instance]:
        """Instances with ``ts < instance.ts <= max_ts`` (max unbounded if None)."""
        lo = bisect_right(self._keys, (ts, float("inf")))
        if max_ts is None:
            return self._instances[lo:]
        hi = bisect_right(self._keys, (max_ts, float("inf")))
        return self._instances[lo:hi]

    def has_before(self, ts: int) -> bool:
        """True when some instance has occurrence time strictly below *ts*."""
        return bool(self._instances) and self._keys[0][0] < ts

    def has_after(self, ts: int) -> bool:
        """True when some instance has occurrence time strictly above *ts*."""
        return bool(self._instances) and self._keys[-1][0] > ts

    def has_in_range(self, lo: int, hi: int) -> bool:
        """True when some instance has occurrence time in ``[lo, hi]``."""
        index = bisect_left(self._keys, (lo, -1))
        return index < len(self._keys) and self._keys[index][0] <= hi

    def min_ts(self) -> Optional[int]:
        """Smallest occurrence time stored, or None when empty."""
        return self._keys[0][0] if self._keys else None

    def max_ts(self) -> Optional[int]:
        """Largest occurrence time stored, or None when empty."""
        return self._keys[-1][0] if self._keys else None

    # -- purging ---------------------------------------------------------------

    def purge_through(self, ts: int) -> int:
        """Drop every instance with occurrence time ``<= ts``; returns count.

        Instances are ts-sorted so this is a single prefix cut.
        """
        cut = bisect_right(self._keys, (ts, float("inf")))
        if cut:
            if self.indexed_attrs:
                self._index_drop_prefix(cut)
            del self._instances[:cut]
            del self._keys[:cut]
            self.purged += cut
        return cut

    def drop_oldest(self, count: int) -> int:
        """Shed up to *count* oldest instances (load shedding); returns dropped.

        Unlike :meth:`purge_through` this is *lossy* — the dropped
        instances were not provably useless — so the caller accounts for
        it in ``stats.events_shed``, not the purge counters.
        """
        cut = min(count, len(self._instances))
        if cut > 0:
            if self.indexed_attrs:
                self._index_drop_prefix(cut)
            del self._instances[:cut]
            del self._keys[:cut]
        return cut

    # -- non-destructive previews (observability) -------------------------------

    def events_through(self, ts: int) -> List[Event]:
        """The events :meth:`purge_through` *would* drop at *ts*, unchanged."""
        cut = bisect_right(self._keys, (ts, float("inf")))
        return [instance.event for instance in self._instances[:cut]]

    def oldest_events(self, count: int) -> List[Event]:
        """The events :meth:`drop_oldest` *would* shed, unchanged."""
        return [instance.event for instance in self._instances[:count]]

    def clear(self) -> None:
        self.purged += len(self._instances)
        self._instances.clear()
        self._keys.clear()
        for postings in self._postings.values():
            postings.clear()

    # -- checkpointing ---------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Stored instances plus lifetime counters, for engine checkpoints."""
        return {
            "instances": [(i.event, i.arrival) for i in self._instances],
            "inserted": self.inserted,
            "purged": self.purged,
            "index_disabled": sorted(self._index_disabled),
        }

    def restore_state(self, state: dict) -> None:
        self._instances = [
            Instance(event, arrival) for event, arrival in state["instances"]
        ]
        self._keys = [instance.sort_key() for instance in self._instances]
        self.inserted = state["inserted"]
        self.purged = state["purged"]
        # Disabled-index markers are real state (sticky even after the
        # offending instance is purged); the posting lists themselves are
        # derived and rebuilt from the restored instances.
        self._index_disabled = set(state.get("index_disabled", ()))
        if self.indexed_attrs:
            self._postings = {name: {} for name in self.indexed_attrs}
            for instance, key in zip(self._instances, self._keys):
                self._index_insert(instance, key)


class StackSet:
    """The full AIS: one :class:`SortedStack` per positive pattern step."""

    __slots__ = ("stacks",)

    def __init__(
        self,
        length: int,
        indexed_attrs: Optional[Sequence[Sequence[str]]] = None,
    ):
        if indexed_attrs is None:
            indexed_attrs = [()] * length
        self.stacks: List[SortedStack] = [
            SortedStack(i, indexed_attrs=indexed_attrs[i]) for i in range(length)
        ]

    def __getitem__(self, index: int) -> SortedStack:
        return self.stacks[index]

    def __len__(self) -> int:
        return len(self.stacks)

    def __iter__(self) -> Iterator[SortedStack]:
        return iter(self.stacks)

    def size(self) -> int:
        """Total instances currently held across all stacks."""
        return sum(len(stack) for stack in self.stacks)

    def sizes(self) -> List[int]:
        """Per-stack instance counts (diagnostics and memory experiments)."""
        return [len(stack) for stack in self.stacks]

    def total_purged(self) -> int:
        return sum(stack.purged for stack in self.stacks)

    def snapshot_state(self) -> list:
        return [stack.snapshot_state() for stack in self.stacks]

    def restore_state(self, state: list) -> None:
        for stack, stack_state in zip(self.stacks, state):
            stack.restore_state(stack_state)


class NegativeStore:
    """Timestamp-sorted stores of negated-type events, one per type.

    Only consulted at *seal time* (conservative negation, see
    ``repro.core.negation``), so it never drives construction — it just
    needs ordered containment queries and prefix purging.
    """

    __slots__ = ("_by_type", "inserted", "purged")

    def __init__(self, types: Iterable[str]):
        self._by_type: Dict[str, Tuple[List[Tuple[int, int]], List[Event]]] = {
            t: ([], []) for t in types
        }
        self.inserted = 0
        self.purged = 0

    def relevant(self, etype: str) -> bool:
        return etype in self._by_type

    def insert(self, event: Event) -> None:
        keys, events = self._by_type[event.etype]
        key = (event.ts, event.eid)
        if not keys or key >= keys[-1]:
            keys.append(key)
            events.append(event)
        else:
            index = bisect_right(keys, key)
            keys.insert(index, key)
            events.insert(index, event)
        self.inserted += 1

    def between(self, etype: str, lo: int, hi: int) -> List[Event]:
        """Events of *etype* with ``lo < ts < hi`` (exclusive bounds)."""
        if etype not in self._by_type:
            return []
        keys, events = self._by_type[etype]
        start = bisect_right(keys, (lo, float("inf")))
        end = bisect_left(keys, (hi, -1))
        return events[start:end]

    def purge_through(self, ts: int) -> int:
        """Drop all events with ``ts <= ts`` across every type; returns count."""
        dropped = 0
        for keys, events in self._by_type.values():
            cut = bisect_right(keys, (ts, float("inf")))
            if cut:
                del keys[:cut]
                del events[:cut]
                dropped += cut
        self.purged += dropped
        return dropped

    def drop_oldest(self, etype: str, count: int) -> int:
        """Shed up to *count* oldest events of *etype* (load shedding)."""
        if etype not in self._by_type:
            return 0
        keys, events = self._by_type[etype]
        cut = min(count, len(events))
        if cut > 0:
            del keys[:cut]
            del events[:cut]
        return cut

    # -- non-destructive previews (observability) -------------------------------

    def events_through(self, ts: int) -> List[Event]:
        """The events :meth:`purge_through` *would* drop at *ts*, unchanged."""
        victims: List[Event] = []
        for keys, events in self._by_type.values():
            cut = bisect_right(keys, (ts, float("inf")))
            victims.extend(events[:cut])
        return victims

    def oldest_events(self, etype: str, count: int) -> List[Event]:
        """The events :meth:`drop_oldest` *would* shed, unchanged."""
        if etype not in self._by_type:
            return []
        return self._by_type[etype][1][:count]

    def size(self) -> int:
        return sum(len(events) for _, events in self._by_type.values())

    def oldest_type(self):
        """(smallest (ts, eid) held, its event type), or None when empty.

        Drives drop-oldest load shedding: the caller compares the key
        against other stores and sheds from whichever holds the oldest.
        """
        best = None
        for etype, (keys, _) in self._by_type.items():
            if keys and (best is None or keys[0] < best[0]):
                best = (keys[0], etype)
        return best

    # -- checkpointing ---------------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "types": {t: list(events) for t, (_, events) in self._by_type.items()},
            "inserted": self.inserted,
            "purged": self.purged,
        }

    def restore_state(self, state: dict) -> None:
        for etype in self._by_type:
            events = list(state["types"].get(etype, ()))
            self._by_type[etype] = ([(e.ts, e.eid) for e in events], events)
        self.inserted = state["inserted"]
        self.purged = state["purged"]
