"""Pattern queries: the ``SEQ`` AST evaluated by every engine.

A pattern query has three parts, mirroring the SASE-style language the
paper builds on::

    PATTERN SEQ(A a, !B b, C c)     -- ordered steps, ! marks negation
    WHERE   a.id == c.id AND ...    -- conjunction over step variables
    WITHIN  100                     -- window over occurrence time

Semantics (normative; the offline oracle in ``repro.core.oracle``
implements them literally, every engine must agree with it):

* a match binds one event per **positive** step, with strictly
  increasing occurrence timestamps in step order;
* ``last.ts - first.ts <= within`` over the positive bindings;
* all ``WHERE`` predicates that mention only positive variables hold;
* for each **negated** step placed between positive steps ``p`` and
  ``q``, there is *no* event of the negated type with
  ``p.ts < n.ts < q.ts`` satisfying the predicates that mention the
  negated variable.  A leading negation is bounded below by
  ``last.ts - within``; a trailing negation is bounded above by
  ``first.ts + within``.
* match selection is *skip-till-any-match*: every qualifying
  combination is reported exactly once.

The compiled form (:class:`Pattern`) pre-computes everything the
engines need: staged predicates, negation brackets, and equality-join
keys.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import QueryError
from repro.core.event import Event
from repro.core.predicates import (
    And,
    Attr,
    Bindings,
    Predicate,
    stage_predicates,
)


class Step:
    """One component of a ``SEQ`` pattern.

    >>> Step("A", "a")            # positive step
    Step(A a)
    >>> Step("B", "b", negated=True)
    Step(!B b)
    >>> Step("B", "bs", kleene=True)  # one-or-more collection
    Step(B+ bs)
    """

    __slots__ = ("etype", "var", "negated", "kleene")

    def __init__(self, etype: str, var: str, negated: bool = False, kleene: bool = False):
        if not etype or not isinstance(etype, str):
            raise QueryError(f"step event type must be a non-empty string, got {etype!r}")
        if not var or not isinstance(var, str) or not var.isidentifier():
            raise QueryError(f"step variable must be an identifier, got {var!r}")
        if negated and kleene:
            raise QueryError(
                f"step {etype} {var}: negated Kleene is meaningless — negating "
                "one-or-more equals negating a single occurrence"
            )
        self.etype = etype
        self.var = var
        self.negated = bool(negated)
        self.kleene = bool(kleene)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Step)
            and (self.etype, self.var, self.negated, self.kleene)
            == (other.etype, other.var, other.negated, other.kleene)
        )

    def __hash__(self) -> int:
        return hash((self.etype, self.var, self.negated, self.kleene))

    def __repr__(self) -> str:
        bang = "!" if self.negated else ""
        plus = "+" if self.kleene else ""
        return f"Step({bang}{self.etype}{plus} {self.var})"


class NegationBracket:
    """A compiled negated step with its enclosing positive positions.

    ``lower``/``upper`` are indices into the pattern's *positive* step
    list; ``None`` means the bracket is open on that side (leading or
    trailing negation) and is bounded by the window instead.
    """

    __slots__ = ("step", "lower", "upper", "predicates", "_positive_vars")

    def __init__(
        self,
        step: Step,
        lower: Optional[int],
        upper: Optional[int],
        predicates: Tuple[Predicate, ...],
    ):
        self.step = step
        self.lower = lower
        self.upper = upper
        self.predicates = predicates
        # populated by Pattern._compile; kept on the bracket so `admits`
        # needs no back-reference to the pattern
        self._positive_vars: Tuple[str, ...] = ()

    def bounds(self, positives: Sequence[Event], within: int) -> Tuple[int, int]:
        """Open interval ``(lo, hi)`` of occurrence time this bracket forbids.

        Events of the negated type strictly inside ``(lo, hi)`` that
        satisfy the bracket predicates invalidate the match.
        """
        if self.lower is not None:
            lo = positives[self.lower].ts
        else:
            lo = positives[-1].ts - within - 1  # leading negation: window edge
        if self.upper is not None:
            hi = positives[self.upper].ts
        else:
            hi = positives[0].ts + within + 1  # trailing negation: window edge
        return lo, hi

    def admits(self, candidate: Event, positives: Sequence[Event], within: int) -> bool:
        """True when *candidate* falls in the forbidden interval and passes predicates."""
        lo, hi = self.bounds(positives, within)
        if not (lo < candidate.ts < hi):
            return False
        if not self.predicates:
            return True
        bindings = {self.step.var: candidate}
        # Bind the positive variables too: bracket predicates may relate
        # the negated event to positive ones (e.g. same tag id).
        return self._evaluate_with_positives(bindings, positives)

    def _evaluate_with_positives(
        self, bindings: Dict[str, Event], positives: Sequence[Event]
    ) -> bool:
        full = dict(bindings)
        full.update(dict(zip(self._positive_vars, positives)))
        return all(p.evaluate(full) for p in self.predicates)

    def __repr__(self) -> str:
        return (
            f"NegationBracket({self.step!r}, between positive "
            f"[{self.lower}, {self.upper}])"
        )


class KleeneBracket(NegationBracket):
    """A compiled ``E+`` step: collect-all between its two anchors.

    Shares the interval/predicate machinery with negation brackets
    (``bounds`` and ``admits`` mean "falls in the interval and passes
    the predicates"), but with opposite polarity: admitted events are
    *collected* into the match (sorted by occurrence time), and the
    match is valid only if the collection is **non-empty** (the ``+``).
    Kleene steps must sit strictly between two positive anchors, so
    ``lower``/``upper`` are never None.
    """

    def collect(self, positives: Sequence[Event], within: int, pool: Sequence[Event]):
        """All qualifying events from *pool*, in (ts, eid) order."""
        collected = [
            candidate
            for candidate in pool
            if self.admits(candidate, positives, within)
        ]
        collected.sort(key=lambda e: (e.ts, e.eid))
        return tuple(collected)

    def __repr__(self) -> str:
        return (
            f"KleeneBracket({self.step!r}, between positive "
            f"[{self.lower}, {self.upper}])"
        )


class Pattern:
    """A compiled ``SEQ`` pattern query.

    Parameters
    ----------
    steps:
        Ordered steps; at least one must be positive, negated steps may
        not be adjacent to each other (the bracket between two positive
        steps would be ambiguous).
    where:
        Iterable of predicates (a conjunction), or ``None``.
    within:
        Window width over occurrence time; must be a positive integer.
    name:
        Optional label used in reports.
    """

    def __init__(
        self,
        steps: Sequence[Step],
        where: Optional[Iterable[Predicate]] = None,
        within: int = 0,
        name: str = "",
    ):
        if not steps:
            raise QueryError("pattern needs at least one step")
        if not isinstance(within, int) or isinstance(within, bool) or within <= 0:
            raise QueryError(f"WITHIN window must be a positive integer, got {within!r}")
        self.steps: Tuple[Step, ...] = tuple(steps)
        self.within = within
        self.name = name or "q"

        seen_vars = set()
        for step in self.steps:
            if step.var in seen_vars:
                raise QueryError(f"duplicate step variable {step.var!r}")
            seen_vars.add(step.var)

        # Anchors: steps that bind exactly one event and hold a stack.
        self.positive_steps: Tuple[Step, ...] = tuple(
            s for s in self.steps if not s.negated and not s.kleene
        )
        if not self.positive_steps:
            raise QueryError("pattern needs at least one positive (non-Kleene) step")
        for left, right in zip(self.steps, self.steps[1:]):
            if left.negated and right.negated:
                raise QueryError(
                    f"adjacent negated steps {left!r}, {right!r} are ambiguous"
                )

        if isinstance(where, Predicate):
            where = [where]
        # Flatten top-level conjunctions: each conjunct is staged and
        # partitioned (positive vs negation) independently, which both
        # tightens pruning and keeps positive conjuncts out of negation
        # brackets when another conjunct mentions a negated variable.
        flattened: List[Predicate] = []
        for predicate in where or ():
            if not isinstance(predicate, Predicate):
                raise QueryError(f"WHERE expects predicates, got {predicate!r}")
            if isinstance(predicate, And):
                flattened.extend(predicate.children)
            else:
                flattened.append(predicate)
        self.where: Tuple[Predicate, ...] = tuple(flattened)

        self._compile()

    # -- compiled artefacts -------------------------------------------------

    def _compile(self) -> None:
        positive_vars = [s.var for s in self.positive_steps]
        negated_vars = {s.var for s in self.steps if s.negated}
        kleene_vars = {s.var for s in self.steps if s.kleene}

        positive_preds: List[Predicate] = []
        negation_preds: Dict[str, List[Predicate]] = {v: [] for v in negated_vars}
        kleene_preds: Dict[str, List[Predicate]] = {v: [] for v in kleene_vars}
        special_vars = negated_vars | kleene_vars
        for predicate in self.where:
            mentioned = predicate.variables()
            special_mentioned = mentioned & special_vars
            if len(special_mentioned) > 1:
                raise QueryError(
                    f"predicate {predicate!r} relates two negated/Kleene "
                    "variables; unsupported"
                )
            if special_mentioned:
                var = next(iter(special_mentioned))
                if var in negated_vars:
                    negation_preds[var].append(predicate)
                else:
                    kleene_preds[var].append(predicate)
            else:
                positive_preds.append(predicate)

        # Staging validates that every variable exists.
        all_vars = positive_vars + sorted(special_vars)
        stage_predicates(self.where, all_vars)
        self.staged: Dict[str, List[Predicate]] = stage_predicates(
            positive_preds, positive_vars
        )
        self.positive_predicates: Tuple[Predicate, ...] = tuple(positive_preds)

        neg_brackets: List[NegationBracket] = []
        kln_brackets: List[KleeneBracket] = []
        positive_index = -1
        for step in self.steps:
            if not step.negated and not step.kleene:
                positive_index += 1
                continue
            lower = positive_index if positive_index >= 0 else None
            upper = (
                positive_index + 1
                if positive_index + 1 < len(self.positive_steps)
                else None
            )
            if step.kleene:
                if lower is None or upper is None:
                    raise QueryError(
                        f"Kleene step {step!r} must sit strictly between two "
                        "positive steps (leading/trailing Kleene has no anchor)"
                    )
                bracket: NegationBracket = KleeneBracket(
                    step, lower, upper, tuple(kleene_preds[step.var])
                )
                bracket._positive_vars = tuple(positive_vars)
                kln_brackets.append(bracket)  # type: ignore[arg-type]
            else:
                bracket = NegationBracket(
                    step, lower, upper, tuple(negation_preds[step.var])
                )
                bracket._positive_vars = tuple(positive_vars)
                neg_brackets.append(bracket)
        self.negations: Tuple[NegationBracket, ...] = tuple(neg_brackets)
        self.kleene: Tuple[KleeneBracket, ...] = tuple(kln_brackets)

        self.positive_types: Tuple[str, ...] = tuple(s.etype for s in self.positive_steps)
        self.negated_types: FrozenSet[str] = frozenset(
            s.etype for s in self.steps if s.negated
        )
        self.kleene_types: FrozenSet[str] = frozenset(
            s.etype for s in self.steps if s.kleene
        )
        self.relevant_types: FrozenSet[str] = (
            frozenset(self.positive_types) | self.negated_types | self.kleene_types
        )
        # steps of each positive type (a type may appear at several steps)
        self.steps_of_type: Dict[str, List[int]] = {}
        for index, step in enumerate(self.positive_steps):
            self.steps_of_type.setdefault(step.etype, []).append(index)
        self.negation_brackets_of_type: Dict[str, List[NegationBracket]] = {}
        for bracket in self.negations:
            self.negation_brackets_of_type.setdefault(bracket.step.etype, []).append(bracket)
        self.kleene_brackets_of_type: Dict[str, List[KleeneBracket]] = {}
        for kleene_bracket in self.kleene:
            self.kleene_brackets_of_type.setdefault(
                kleene_bracket.step.etype, []
            ).append(kleene_bracket)

        eq_pairs = []
        for predicate in self.positive_predicates:
            eq_pairs.extend(predicate.equality_pairs())
        self.equality_pairs = tuple(eq_pairs)

    # -- public helpers -----------------------------------------------------

    @property
    def length(self) -> int:
        """Number of positive steps (the arity of a match)."""
        return len(self.positive_steps)

    @property
    def has_negation(self) -> bool:
        """True when the pattern contains at least one negated step."""
        return bool(self.negations)

    @property
    def has_kleene(self) -> bool:
        """True when the pattern contains at least one Kleene step."""
        return bool(self.kleene)

    def variables(self) -> List[str]:
        """All step variables in declaration order."""
        return [s.var for s in self.steps]

    def check_positive_predicates(self, bindings: Bindings) -> bool:
        """Evaluate the full positive conjunction (used by oracle/tests)."""
        return all(p.evaluate(bindings) for p in self.positive_predicates)

    def bindings_for(self, events: Sequence[Event]) -> Dict[str, Event]:
        """Zip *events* (one per positive step, in order) into a binding map."""
        if len(events) != self.length:
            raise QueryError(
                f"expected {self.length} events for pattern {self.name!r}, got {len(events)}"
            )
        return dict(zip((s.var for s in self.positive_steps), events))

    def temporal_ok(self, events: Sequence[Event]) -> bool:
        """Strictly-increasing timestamps and the WITHIN window both hold."""
        for left, right in zip(events, events[1:]):
            if left.ts >= right.ts:
                return False
        return events[-1].ts - events[0].ts <= self.within

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{'!' if s.negated else ''}{s.etype}{'+' if s.kleene else ''} {s.var}"
            for s in self.steps
        )
        where = f" WHERE {And(self.where)!r}" if self.where else ""
        return f"PATTERN SEQ({inner}){where} WITHIN {self.within}"


def seq(*components: str, where: Optional[Iterable[Predicate]] = None,
        within: int = 0, name: str = "") -> Pattern:
    """Convenience pattern builder from ``"TYPE var"`` strings.

    >>> q = seq("A a", "!B b", "C c", within=50)
    >>> q.length, q.has_negation
    (2, True)
    """
    steps = []
    for component in components:
        text = component.strip()
        negated = text.startswith("!")
        if negated:
            text = text[1:].strip()
        parts = text.split()
        if len(parts) != 2:
            raise QueryError(
                f"step spec must be 'TYPE var' (optionally prefixed '!', "
                f"optionally suffixed '+'), got {component!r}"
            )
        etype, var = parts
        kleene = etype.endswith("+")
        if kleene:
            etype = etype[:-1]
        steps.append(Step(etype, var, negated=negated, kleene=kleene))
    return Pattern(steps, where=where, within=within, name=name)


class Match:
    """One query result: the tuple of positive events plus its bindings.

    Matches compare equal by pattern name, event identities and — for
    Kleene patterns — the collected-element identities, so result sets
    from different engines (or the oracle) can be compared directly.

    For patterns with Kleene steps, *collections* maps each Kleene
    variable to the tuple of collected events (in occurrence order);
    engines attach it at seal time via :meth:`with_collections`.
    """

    __slots__ = ("pattern", "events", "_key", "detected_at", "collections")

    def __init__(
        self,
        pattern: Pattern,
        events: Sequence[Event],
        detected_at: int = -1,
        collections: Optional[Dict[str, Tuple[Event, ...]]] = None,
    ):
        self.pattern = pattern
        self.events: Tuple[Event, ...] = tuple(events)
        self.collections: Optional[Dict[str, Tuple[Event, ...]]] = collections
        collection_key: Tuple = ()
        if collections:
            collection_key = tuple(
                (var, tuple(e.eid for e in elements))
                for var, elements in sorted(collections.items())
            )
        self._key = (
            pattern.name,
            tuple(e.eid for e in self.events),
            collection_key,
        )
        # arrival sequence number at which the engine emitted the match;
        # -1 for oracle results where arrival order is not meaningful
        self.detected_at = detected_at

    def with_collections(
        self, collections: Dict[str, Tuple[Event, ...]]
    ) -> "Match":
        """A copy of this match with Kleene collections attached."""
        return Match(
            self.pattern, self.events, detected_at=self.detected_at,
            collections=collections,
        )

    @property
    def start_ts(self) -> int:
        """Occurrence time of the first positive event."""
        return self.events[0].ts

    @property
    def end_ts(self) -> int:
        """Occurrence time of the last positive event."""
        return self.events[-1].ts

    def bindings(self) -> Dict[str, Any]:
        """Variable → event map over the positive steps.

        For Kleene patterns the Kleene variables map to tuples of
        collected events (when collections have been attached).
        """
        full: Dict[str, Any] = dict(self.pattern.bindings_for(self.events))
        if self.collections:
            full.update(self.collections)
        return full

    def key(self) -> Tuple:
        """Identity used for set comparison across engines."""
        return self._key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Match) and self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:
        inner = ", ".join(f"{e.etype}@{e.ts}#{e.eid}" for e in self.events)
        extra = ""
        if self.collections:
            parts = []
            for var, elements in sorted(self.collections.items()):
                parts.append(f"{var}=[{', '.join(f'{e.etype}@{e.ts}' for e in elements)}]")
            extra = " {" + ", ".join(parts) + "}"
        return f"Match[{self.pattern.name}]({inner}){extra}"
