"""Event model: the primitive elements flowing through every stream.

The paper distinguishes two notions of time:

* **occurrence time** (``ts``) — assigned by the event source when the
  real-world occurrence happens; pattern semantics (``SEQ`` ordering,
  ``WITHIN`` windows) are defined exclusively over occurrence time.
* **arrival order** — the order in which the processing engine receives
  events.  With in-order delivery arrival order and occurrence order
  coincide; network latency and machine failure make them diverge,
  which is precisely the problem the paper addresses.

An :class:`Event` carries its occurrence timestamp and attributes; the
engine assigns an *arrival sequence number* on ingestion (recorded on
the engine-side wrapper, see ``repro.core.stacks``), never mutating the
event itself.  Events are immutable value objects so they can be shared
freely between stacks, match buffers and result tuples.

Besides plain events, streams can carry :class:`Punctuation` elements —
assertions that no event with occurrence time ``<= ts`` will arrive in
the future.  Punctuations subsume heartbeats and let the disorder bound
K be communicated in-band.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.core.errors import StreamError

_EVENT_IDS = itertools.count(1)


def _next_event_id() -> int:
    return next(_EVENT_IDS)


class Event:
    """An immutable event occurrence.

    Parameters
    ----------
    etype:
        Event type name, e.g. ``"SHELF_READ"``.  Types are plain strings;
        pattern steps match on string equality.
    ts:
        Occurrence timestamp, a non-negative integer.  The library uses
        integer time throughout (the paper's model is discrete time);
        callers with real-valued clocks should scale to integers.
    attrs:
        Attribute mapping used by ``WHERE`` predicates.  Stored as an
        immutable snapshot.
    eid:
        Optional explicit identity.  Auto-assigned when omitted.  Event
        identity (not object identity) is what result-set comparisons
        use, so replaying a recorded trace reproduces identical results.

    Examples
    --------
    >>> e = Event("A", 7, {"x": 1})
    >>> e.etype, e.ts, e["x"]
    ('A', 7, 1)
    """

    __slots__ = ("etype", "ts", "eid", "_attrs", "_hash")

    def __init__(
        self,
        etype: str,
        ts: int,
        attrs: Optional[Mapping[str, Any]] = None,
        eid: Optional[int] = None,
    ):
        if not isinstance(etype, str) or not etype:
            raise StreamError(f"event type must be a non-empty string, got {etype!r}")
        if not isinstance(ts, int) or isinstance(ts, bool):
            raise StreamError(f"occurrence timestamp must be an int, got {ts!r}")
        if ts < 0:
            raise StreamError(f"occurrence timestamp must be >= 0, got {ts}")
        object.__setattr__(self, "etype", etype)
        object.__setattr__(self, "ts", ts)
        object.__setattr__(self, "eid", _next_event_id() if eid is None else eid)
        object.__setattr__(self, "_attrs", dict(attrs) if attrs else {})
        object.__setattr__(self, "_hash", hash((etype, ts, self.eid)))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Event is immutable")

    def __reduce__(self):
        # Default slot-state pickling would trip the immutability guard
        # on restore; rebuild through the constructor instead, keeping
        # the explicit eid so identity survives the round trip (process
        # pool workers compare result sets by event identity).
        return (Event, (self.etype, self.ts, self._attrs, self.eid))

    @property
    def attrs(self) -> Dict[str, Any]:
        """A copy of the attribute mapping (mutating it does not affect the event)."""
        return dict(self._attrs)

    def __getitem__(self, key: str) -> Any:
        try:
            return self._attrs[key]
        except KeyError:
            raise KeyError(
                f"event {self.etype}@{self.ts} has no attribute {key!r}; "
                f"available: {sorted(self._attrs)}"
            ) from None

    def get(self, key: str, default: Any = None) -> Any:
        """Attribute lookup with a default, mirroring ``dict.get``."""
        return self._attrs.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self._attrs

    def with_attrs(self, **updates: Any) -> "Event":
        """Return a new event with updated attributes and a fresh identity."""
        merged = dict(self._attrs)
        merged.update(updates)
        return Event(self.etype, self.ts, merged)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.eid == other.eid
            and self.etype == other.etype
            and self.ts == other.ts
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if self._attrs:
            inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._attrs.items()))
            return f"Event({self.etype}@{self.ts} #{self.eid} {{{inner}}})"
        return f"Event({self.etype}@{self.ts} #{self.eid})"

    def key(self) -> Tuple[str, int, int]:
        """Stable identity triple used in serialised traces."""
        return (self.etype, self.ts, self.eid)


class Punctuation:
    """An in-band assertion: no event with ``ts <= self.ts`` is still in flight.

    Engines use punctuations to advance their purge clock beyond what
    the K-slack promise alone allows.  A punctuation never matches a
    pattern step.
    """

    __slots__ = ("ts",)

    def __init__(self, ts: int):
        if not isinstance(ts, int) or isinstance(ts, bool) or ts < 0:
            raise StreamError(f"punctuation timestamp must be an int >= 0, got {ts!r}")
        object.__setattr__(self, "ts", ts)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Punctuation is immutable")

    def __reduce__(self):
        # See Event.__reduce__: restore via the constructor, not slot state.
        return (Punctuation, (self.ts,))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Punctuation):
            return NotImplemented
        return self.ts == other.ts

    def __hash__(self) -> int:
        return hash(("punctuation", self.ts))

    def __repr__(self) -> str:
        return f"Punctuation(<= {self.ts})"


StreamElement = Union[Event, Punctuation]


def is_event(element: StreamElement) -> bool:
    """True when *element* is a data event (not a punctuation)."""
    return isinstance(element, Event)


def malformed_reason(element: object) -> Optional[str]:
    """Why *element* must be rejected at admission, or None when well-formed.

    :class:`Event` validates at construction, but elements arriving from
    the network, from deserialised traces, or forged through
    ``object.__new__`` (the fault-injection harness does exactly this)
    can carry a NaN/float/negative timestamp or a missing type.  Such an
    element would silently corrupt timestamp-ordered structures — heap
    order in reorder buffers, bisect positions in the sorted stacks — so
    engines screen every admission with this check.

    Note ``type(ts) is not int`` rather than ``isinstance``: it rejects
    ``bool`` and every float (NaN included) in one comparison.
    """
    if isinstance(element, Event):
        ts = element.ts
        if type(ts) is not int:
            return f"occurrence timestamp must be an int, got {ts!r}"
        if ts < 0:
            return f"occurrence timestamp must be >= 0, got {ts}"
        etype = element.etype
        if not isinstance(etype, str) or not etype:
            return f"event type must be a non-empty string, got {etype!r}"
        return None
    if isinstance(element, Punctuation):
        ts = element.ts
        if type(ts) is not int or ts < 0:
            return f"punctuation timestamp must be an int >= 0, got {ts!r}"
        return None
    return f"not a stream element: {type(element).__name__}"


def admission_error(element: object) -> StreamError:
    """The :class:`StreamError` an engine raises for a malformed element."""
    return StreamError(
        f"malformed stream element rejected at admission: "
        f"{malformed_reason(element)}"
    )


def sort_by_occurrence(events: Iterable[Event]) -> list:
    """Return *events* sorted by occurrence time, ties broken by identity.

    This is the canonical total order used by the offline oracle: the
    (ts, eid) pair is unique per event so the sort is deterministic
    regardless of arrival permutation.
    """
    return sorted(events, key=lambda e: (e.ts, e.eid))


def max_timestamp(events: Iterable[Event]) -> int:
    """Largest occurrence timestamp in *events* (or -1 when empty)."""
    result = -1
    for event in events:
        if event.ts > result:
            result = event.ts
    return result
