"""Ordered output: release matches in occurrence order, safely.

An out-of-order engine emits each match the moment it completes — which
means the *output* stream is ordered by detection, not by occurrence.
Downstream consumers that fold results into time-ordered state (ledgers,
dashboards, downstream CEP with order assumptions) want the
**partial-order guarantee** of the authors' follow-up work: results
delivered in non-decreasing end-timestamp order.

The adapter buys that guarantee with the same horizon reasoning the
engine itself uses: any future match must include a not-yet-arrived
event, every such event has ``ts > horizon``, and a match's end
timestamp is the max over its members — so once ``end_ts ≤ horizon``
no earlier-ending match can ever appear, and the held prefix can be
released in ``(end_ts, start_ts, identity)`` order.

Latency cost: a match waits until the horizon passes its end timestamp
(≈K behind the clock), the same price the conservative engine already
pays for negation — here applied to every result, by choice.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Tuple

from repro.core.engine import Engine
from repro.core.errors import ConfigurationError
from repro.core.event import StreamElement
from repro.core.pattern import Match


class OrderedOutputAdapter:
    """Wrap an engine; deliver its matches in end-timestamp order.

    Works with any engine exposing a ``clock`` with ``horizon()`` —
    ``OutOfOrderEngine``, ``PartitionedEngine``, ``ReorderingEngine``,
    ``AggressiveEngine`` (note: for the aggressive strategy the
    ordering guarantee applies to emissions; revocations still arrive
    whenever the invalidating event does).

    >>> adapter = OrderedOutputAdapter(OutOfOrderEngine(q, k=10))  # doctest: +SKIP
    >>> ordered = adapter.run(arrival)                             # doctest: +SKIP
    """

    def __init__(self, engine: Engine):
        if not hasattr(engine, "clock"):
            raise ConfigurationError(
                f"{type(engine).__name__} exposes no clock; cannot order output"
            )
        self.engine = engine
        self._held: List[Tuple[int, int, Tuple, Match]] = []
        self.delivered: List[Match] = []

    # -- stream surface ----------------------------------------------------------

    def feed(self, element: StreamElement) -> List[Match]:
        """Process one element; returns matches whose order is now final."""
        for match in self.engine.feed(element):
            heapq.heappush(
                self._held, (match.end_ts, match.start_ts, match.key(), match)
            )
        return self._release(self.engine.clock.horizon())

    def feed_many(self, elements: Iterable[StreamElement]) -> List[Match]:
        released: List[Match] = []
        for element in elements:
            released.extend(self.feed(element))
        return released

    def close(self) -> List[Match]:
        """Flush the engine and everything held, in order."""
        for match in self.engine.close():
            heapq.heappush(
                self._held, (match.end_ts, match.start_ts, match.key(), match)
            )
        released: List[Match] = []
        while self._held:
            released.append(heapq.heappop(self._held)[3])
        self.delivered.extend(released)
        return released

    def run(self, elements: Iterable[StreamElement]) -> List[Match]:
        released = self.feed_many(elements)
        released.extend(self.close())
        return released

    # -- internals ------------------------------------------------------------------

    def _release(self, horizon: int) -> List[Match]:
        released: List[Match] = []
        while self._held and self._held[0][0] <= horizon:
            released.append(heapq.heappop(self._held)[3])
        self.delivered.extend(released)
        return released

    # -- introspection ----------------------------------------------------------------

    def held(self) -> int:
        """Matches detected but not yet releasable in order."""
        return len(self._held)

    def is_ordered(self) -> bool:
        """Sanity: delivered matches are non-decreasing in end timestamp."""
        return all(
            a.end_ts <= b.end_ts
            for a, b in zip(self.delivered, self.delivered[1:])
        )
