"""Sequence scan (SS): per-arrival admission and feasibility probing.

Sequence scan is the first of the paper's two core operators.  For each
arriving event it decides:

1. **relevance** — does the event's type appear in the pattern at all
   (positive step or negation)?  Irrelevant events are dropped without
   touching any state;
2. **admission** — for positive steps, does the event pass the
   predicates that mention only its own variable ("local" predicates)?
   Admitted events become stack instances;
3. **trigger feasibility** — is it worth running sequence construction
   for this arrival?  The paper's scan optimisation avoids construction
   work that cannot produce output.  An arrival at step *i* can only
   complete a match if every earlier stack holds an instance older than
   it and every later stack holds an instance younger than it (all
   within the window).  With in-order arrival the later-stack probe
   fails for every non-final step, which is exactly why the classic
   in-order engine triggers construction only on last-step arrivals —
   the probe generalises that rule to out-of-order arrival.

The probes are *necessary* conditions, deliberately cheap (O(pattern
length) using the stacks' min/max timestamps); construction still
performs the exact checks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.event import Event
from repro.core.pattern import Pattern
from repro.core.predicates import Predicate
from repro.core.stacks import StackSet
from repro.core.stats import EngineStats


class SequenceScanner:
    """Admission and feasibility logic bound to one pattern.

    Parameters
    ----------
    pattern:
        The compiled query.
    optimize:
        When False, feasibility probes always answer "feasible", so
        construction runs for every admitted arrival — the unoptimised
        configuration measured in experiment E6.
    """

    def __init__(self, pattern: Pattern, optimize: bool = True):
        self.pattern = pattern
        self.optimize = optimize
        # Local predicates: staged predicates that mention exactly one
        # variable can be checked at admission time, before any state
        # is created.
        self._local: List[List[Predicate]] = []
        for step in pattern.positive_steps:
            staged = pattern.staged.get(step.var, [])
            self._local.append([p for p in staged if p.variables() == {step.var}])
        # Pre-resolved dispatch: event type → ((step_index, var, local
        # predicates), …) so admission is a single dict probe with the
        # predicate lists already bound per step.  The batched engine
        # paths iterate this directly instead of re-deriving it per
        # arrival.
        self._dispatch: Dict[str, Tuple[Tuple[int, str, Tuple[Predicate, ...]], ...]] = {}
        for etype, steps in pattern.steps_of_type.items():
            self._dispatch[etype] = tuple(
                (
                    index,
                    pattern.positive_steps[index].var,
                    tuple(self._local[index]),
                )
                for index in steps
            )

    def relevant(self, event: Event) -> bool:
        """Does this event type play any role in the pattern?"""
        return event.etype in self.pattern.relevant_types

    def dispatch(self) -> Dict[str, Tuple[Tuple[int, str, Tuple[Predicate, ...]], ...]]:
        """Pre-resolved per-type admission table (read-only).

        Maps event type → tuple of ``(step_index, step_var, local
        predicates)`` triples, one per positive step of that type.
        """
        return self._dispatch

    def admissible_steps(self, event: Event) -> List[int]:
        """Positive step indices the event is admitted to.

        A type may occur at several steps (e.g. ``SEQ(A x, A y)``); the
        event is admitted independently per step, subject to that
        step's local predicates.
        """
        entries = self._dispatch.get(event.etype)
        if not entries:
            return []
        admitted = []
        for index, var, predicates in entries:
            if not predicates:
                admitted.append(index)
                continue
            bindings = {var: event}
            if all(p.evaluate(bindings) for p in predicates):
                admitted.append(index)
        return admitted

    def _local_ok(self, step_index: int, event: Event) -> bool:
        predicates = self._local[step_index]
        if not predicates:
            return True
        var = self.pattern.positive_steps[step_index].var
        bindings = {var: event}
        return all(p.evaluate(bindings) for p in predicates)

    # -- feasibility probes ----------------------------------------------------

    def construction_feasible(
        self,
        stacks: StackSet,
        step_index: int,
        event: Event,
        stats: Optional[EngineStats] = None,
    ) -> bool:
        """Cheap necessary condition for the arrival to complete any match.

        Checks, per earlier step, that some instance is strictly older
        than the trigger (and within the window below it) and, per
        later step, that some instance is strictly younger (and within
        the window above it).  O(length) via stack min/max timestamps.
        """
        if not self.optimize:
            return True
        pattern = self.pattern
        window = pattern.within
        feasible = True
        # Earlier steps: members of any match containing the trigger sit in
        # [event.ts - window, event.ts) — strictly older, and within the
        # window because the match's last event is no older than the trigger.
        for j in range(step_index):
            if not stacks[j].has_in_range(event.ts - window, event.ts - 1):
                feasible = False
                break
        if feasible:
            # Later steps: members sit in (event.ts, event.ts + window] —
            # strictly younger, within the window above the first event
            # (conservatively anchored at the trigger).
            for j in range(step_index + 1, pattern.length):
                if not stacks[j].has_in_range(event.ts + 1, event.ts + window):
                    feasible = False
                    break
        if not feasible and stats is not None:
            stats.construction_skipped_by_probe += 1
        return feasible
