"""Speculative emission with retraction: latency ahead of the seal.

The conservative engine holds any match with unsealed negation/Kleene
brackets until the disorder bound (or a punctuation) proves no
invalidating event can still arrive — so emission latency is
lower-bounded by K even when the stream is nearly in order.  The
speculative mode (Kyrama & Gounaris' optimistic evaluation, see
PAPERS.md) emits such matches the moment construction completes,
tagged with a monotone sequence id and the current re-freeze epoch,
and issues a **retraction record** if the seal-time decision later
disagrees:

* ``negation-violated`` — a late negative event landed inside a
  bracket of an already-speculated match;
* ``empty-kleene`` — the Kleene collection turned out empty at seal;
* ``revised-binding`` — a late Kleene event changed the collection, so
  the speculative binding loses to the corrected one (the retraction
  is immediately followed by the corrected, sealed emission).

The speculative stream is strictly additive: the engine's pessimistic
machinery — pending heap, seal-time decisions, the ``results`` and
``emissions`` lists — runs unchanged, so the **sealed output is
byte-identical to a non-speculative run** of the same stream (the
property suite pins this).  Applying every retraction to the
speculative stream converges it to exactly the sealed result set
(:meth:`SpeculationLog.net_keys`), which is the consumer contract: a
downstream system may act on speculative matches immediately provided
it can compensate when a retraction with the same ``ref_seq`` arrives.

Sequence ids are shared between emissions and retractions so the
speculative stream is totally ordered; epochs advance at punctuation
boundaries (the controller's re-freeze points, see
``repro.streams.controller``), letting consumers group compensations
by the bound regime that produced them.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Set, Tuple

from repro.core.pattern import Match

#: Retraction causes (the `cause` field of every retraction record).
RETRACT_NEGATION = "negation-violated"
RETRACT_EMPTY_KLEENE = "empty-kleene"
RETRACT_REVISED = "revised-binding"

RETRACTION_CAUSES = (RETRACT_NEGATION, RETRACT_EMPTY_KLEENE, RETRACT_REVISED)


class SpeculativeEmission(NamedTuple):
    """One optimistic emission: a match surfaced ahead of its seal."""

    seq: int  #: position in the totally ordered speculative stream
    epoch: int  #: re-freeze epoch at emission time
    match: Match
    emitted_arrival: int  #: engine arrival index at emission
    emitted_clock: int  #: stream clock (max occurrence ts) at emission


class Retraction(NamedTuple):
    """Compensation record: speculative emission ``ref_seq`` is withdrawn."""

    seq: int  #: position in the totally ordered speculative stream
    ref_seq: int  #: the speculative emission being withdrawn
    epoch: int  #: re-freeze epoch at retraction time
    match: Match  #: the withdrawn match, as originally speculated
    cause: str  #: one of :data:`RETRACTION_CAUSES`
    retracted_arrival: int
    retracted_clock: int


class SealOutcome(NamedTuple):
    """What :meth:`SpeculationLog.seal` did for one sealed emission."""

    record: SpeculativeEmission  #: the (confirmed or fresh) emission record
    retraction: Optional[Retraction]  #: revision retraction, if any
    fresh: bool  #: True when a new emission record was appended


def positive_key(match: Match) -> Tuple[int, ...]:
    """Identity of a match by its positive events only.

    ``Match.key()`` includes Kleene collections, which a speculative
    emission may carry in a pre-seal (still growing) state; the open-
    record map must recognise the sealed match as the same candidate,
    so it keys on the positive event ids alone.  Construction is
    exactly-once over positive combinations, so this key is unique
    among live candidates.
    """
    return tuple(e.eid for e in match.events)


class SpeculationLog:
    """The engine-owned speculative stream: emissions, retractions, epoch.

    The log is deterministic state: it snapshots and restores with the
    engine, and two runs of the same input produce byte-identical
    speculative streams.  ``enabled`` gates *new* speculation (the
    controller's optimistic/pessimistic choice per epoch); sealing and
    retraction of already-open records proceed regardless, so toggling
    the mode mid-run never strands an open record.
    """

    __slots__ = ("emissions", "retractions", "epoch", "enabled", "_next_seq", "_open")

    def __init__(self) -> None:
        self.emissions: List[SpeculativeEmission] = []
        self.retractions: List[Retraction] = []
        self.epoch = 0
        self.enabled = True
        self._next_seq = 0
        #: positive key -> index into ``emissions`` for records whose
        #: seal-time decision has not happened yet.
        self._open: Dict[Tuple[int, ...], int] = {}

    def __len__(self) -> int:
        return len(self.emissions)

    @property
    def open_count(self) -> int:
        """Speculative emissions still awaiting their seal decision."""
        return len(self._open)

    def speculate(self, match: Match, arrival: int, clock: int) -> SpeculativeEmission:
        """Record an optimistic emission for a not-yet-sealed match."""
        record = SpeculativeEmission(self._next_seq, self.epoch, match, arrival, clock)
        self._next_seq += 1
        self.emissions.append(record)
        self._open[positive_key(match)] = len(self.emissions) - 1
        return record

    def is_open(self, match: Match) -> bool:
        return positive_key(match) in self._open

    def seal(self, match: Match, arrival: int, clock: int) -> SealOutcome:
        """Reconcile the log with a seal-time **emit** decision.

        Three cases: the match was speculated and the speculation was
        exact (confirm, nothing new); it was speculated with a binding
        the seal revised (retract the stale record, append the
        corrected one); or it was never speculated — mode off, or
        suppressed because the store already violated it — in which
        case the sealed emission itself joins the speculative stream
        (zero speculative lead, but the stream stays convergent).
        """
        index = self._open.pop(positive_key(match), None)
        if index is None:
            return SealOutcome(self.speculate_sealed(match, arrival, clock), None, True)
        record = self.emissions[index]
        if record.match.key() == match.key():
            return SealOutcome(record, None, False)
        retraction = Retraction(
            self._next_seq, record.seq, self.epoch, record.match,
            RETRACT_REVISED, arrival, clock,
        )
        self._next_seq += 1
        self.retractions.append(retraction)
        return SealOutcome(self.speculate_sealed(match, arrival, clock), retraction, True)

    def speculate_sealed(
        self, match: Match, arrival: int, clock: int
    ) -> SpeculativeEmission:
        """Append an emission record that is sealed on arrival (not open)."""
        record = SpeculativeEmission(self._next_seq, self.epoch, match, arrival, clock)
        self._next_seq += 1
        self.emissions.append(record)
        return record

    def retract(
        self, match: Match, cause: str, arrival: int, clock: int
    ) -> Optional[Retraction]:
        """Reconcile the log with a seal-time **cancel** decision.

        Returns the retraction record, or None when the cancelled match
        was never speculated (nothing downstream needs compensating).
        """
        index = self._open.pop(positive_key(match), None)
        if index is None:
            return None
        record = self.emissions[index]
        retraction = Retraction(
            self._next_seq, record.seq, self.epoch, record.match,
            cause, arrival, clock,
        )
        self._next_seq += 1
        self.retractions.append(retraction)
        return retraction

    # -- consumer/verification surface -------------------------------------------

    def net_keys(self) -> Set[Tuple]:
        """Speculative-stream identities after applying every retraction.

        After ``close()`` this equals the sealed ``result_set()`` — the
        convergence contract the property suite pins.
        """
        withdrawn = {r.ref_seq for r in self.retractions}
        return {
            record.match.key()
            for record in self.emissions
            if record.seq not in withdrawn
        }

    def retraction_rate(self) -> float:
        """Fraction of speculative emissions later withdrawn."""
        if not self.emissions:
            return 0.0
        return len(self.retractions) / len(self.emissions)

    # -- checkpointing -------------------------------------------------------------

    def snapshot_state(self, encode) -> dict:
        return {
            "epoch": self.epoch,
            "enabled": self.enabled,
            "next_seq": self._next_seq,
            "emissions": [
                (r.seq, r.epoch, encode(r.match), r.emitted_arrival, r.emitted_clock)
                for r in self.emissions
            ],
            "retractions": [
                (r.seq, r.ref_seq, r.epoch, encode(r.match), r.cause,
                 r.retracted_arrival, r.retracted_clock)
                for r in self.retractions
            ],
            # Open records are a subset of emissions; indices suffice.
            "open": sorted(self._open.values()),
        }

    def restore_state(self, state: dict, decode) -> None:
        self.epoch = state["epoch"]
        self.enabled = state["enabled"]
        self._next_seq = state["next_seq"]
        self.emissions = [
            SpeculativeEmission(seq, epoch, decode(match), arrival, clock)
            for seq, epoch, match, arrival, clock in state["emissions"]
        ]
        self.retractions = [
            Retraction(seq, ref, epoch, decode(match), cause, arrival, clock)
            for seq, ref, epoch, match, cause, arrival, clock in state["retractions"]
        ]
        self._open = {
            positive_key(self.emissions[index].match): index
            for index in state["open"]
        }

    def __repr__(self) -> str:
        return (
            f"SpeculationLog(emitted={len(self.emissions)}, "
            f"retracted={len(self.retractions)}, open={self.open_count}, "
            f"epoch={self.epoch}, enabled={self.enabled})"
        )
