"""Aggressive strategy: emit optimistically, compensate on late arrivals.

The paper's conservative engine holds negation-guarded matches until
the disorder bound seals them.  The natural extension — developed fully
in the authors' follow-up (Liu et al., ICDE 2009) and sketched here as
the paper's future-work direction — is the *aggressive* strategy:

* emit every match the moment its positive events line up, checking
  negation only against the negatives **seen so far**;
* if a late negative event subsequently invalidates an already-emitted
  match, issue a :class:`Revocation` (a compensation record downstream
  consumers can apply);
* once a match's negation brackets seal, it can never be revoked and
  its compensation bookkeeping is dropped.

Under rare disorder this gives near-zero result latency with few
revocations; under heavy disorder the revocation traffic grows — the
trade-off experiment E11 measures.

For patterns *without* negation the aggressive engine behaves exactly
like the conservative one (late positive events simply create new
matches when they arrive; nothing previously emitted can be wrong).
"""

from __future__ import annotations

import heapq
from typing import List, NamedTuple, Optional, Tuple

from repro.core import snapshot as snapshots
from repro.core.engine import LatePolicy, OutOfOrderEngine
from repro.core.event import Event
from repro.core.negation import seal_point, violated
from repro.core.pattern import Match, Pattern
from repro.core.purge import PurgePolicy
from repro.core.shedding import ShedPolicy


class Revocation(NamedTuple):
    """Compensation record: a previously emitted match is withdrawn."""

    match: Match
    caused_by: Event  #: the late negative event that invalidated it


class AggressiveEngine(OutOfOrderEngine):
    """Optimistic emit + revocation, layered on the out-of-order core.

    The emitted match stream is available via ``results`` as usual;
    revocations accumulate in ``revocations`` and are also returned by
    :meth:`take_revocations` for stream-style consumption.  The
    *net* result set (emitted minus revoked) is exposed via
    :meth:`net_result_set` and is what tests compare to the oracle.
    """

    def __init__(
        self,
        pattern: Pattern,
        k: Optional[int] = None,
        purge: Optional[PurgePolicy] = None,
        late_policy: LatePolicy = LatePolicy.DROP,
        optimize_scan: bool = True,
        optimize_construction: bool = True,
        index: bool = True,
        shed: Optional[ShedPolicy] = None,
    ):
        super().__init__(
            pattern,
            k=k,
            purge=purge,
            late_policy=late_policy,
            optimize_scan=optimize_scan,
            optimize_construction=optimize_construction,
            index=index,
            shed=shed,
        )
        self.revocations: List[Revocation] = []
        self._fresh_revocations: List[Revocation] = []
        # Matches emitted while at least one bracket is unsealed, ordered
        # by seal point so sealing drops a prefix.  The tie-break is a
        # plain int (not itertools.count) so it checkpoints: restoring it
        # reproduces the heap order exactly.
        self._exposed: List[Tuple[int, int, Match]] = []
        self._exposed_next = 0
        self._revoked_keys = set()

    # -- overridden routing --------------------------------------------------------

    def _route(self, match: Match, emitted: List[Match]) -> None:
        if self.pattern.has_kleene:
            # A Kleene collection is only final once its bracket seals,
            # and amending an emitted collection has no compensation
            # analogue — so Kleene matches take the conservative path.
            OutOfOrderEngine._route(self, match, emitted)
            return
        # Optimistic: check against negatives seen so far and emit now.
        if self.pattern.has_negation and violated(
            self.pattern, match, self.negatives, self.stats
        ):
            self.stats.matches_cancelled += 1
            return
        self._emit(match, self.clock.now)
        emitted.append(match)
        point = seal_point(self.pattern, match)
        if point > self.clock.horizon():
            heapq.heappush(self._exposed, (point, self._exposed_next, match))
            self._exposed_next += 1

    def _release_ripe(self, emitted: List[Match]) -> None:
        # Conservative pending (used by Kleene matches) releases first...
        OutOfOrderEngine._release_ripe(self, emitted)
        # ...then sealed exposures become permanent and their
        # bookkeeping is dropped.
        horizon = self.clock.horizon()
        while self._exposed and self._exposed[0][0] <= horizon:
            heapq.heappop(self._exposed)
        self.stats.matches_pending = len(self._exposed) + len(self.pending)

    def _flush(self) -> List[Match]:
        emitted = OutOfOrderEngine._flush(self)  # drain conservative pending
        self._exposed.clear()
        self.stats.matches_pending = 0
        return emitted

    # -- revocation on late negatives ---------------------------------------------------

    def _process_event(self, event: Event) -> List[Match]:
        is_negative = event.etype in self.pattern.negated_types
        emitted = super()._process_event(event)
        if is_negative and self._exposed:
            self._revoke_invalidated(event)
        return emitted

    def _post_event(self, event: Event) -> None:
        # Batch-path mirror of the _process_event extension above: the
        # revocation scan must run even for late-dropped negatives.
        if event.etype in self.pattern.negated_types and self._exposed:
            self._revoke_invalidated(event)

    def _ripe_possible(self) -> bool:
        return bool(self.pending._heap) or bool(self._exposed)

    def _revoke_invalidated(self, negative: Event) -> None:
        pattern = self.pattern
        survivors: List[Tuple[int, int, Match]] = []
        for entry in self._exposed:
            match = entry[2]
            if match.key() in self._revoked_keys:
                continue
            if self._invalidates(negative, match):
                revocation = Revocation(match, negative)
                self.revocations.append(revocation)
                self._fresh_revocations.append(revocation)
                self._revoked_keys.add(match.key())
                self.stats.revocations += 1
                if self._obs is not None:
                    self._obs.note_revoked(self, match, negative)
            else:
                survivors.append(entry)
        if len(survivors) != len(self._exposed):
            self._exposed = survivors
            heapq.heapify(self._exposed)
            self.stats.matches_pending = len(self._exposed) + len(self.pending)

    def _invalidates(self, negative: Event, match: Match) -> bool:
        for bracket in self.pattern.negation_brackets_of_type.get(
            negative.etype, ()
        ):
            if bracket.admits(negative, match.events, self.pattern.within):
                return True
        return False

    # -- checkpoint / restore ------------------------------------------------------

    def _snapshot_state(self) -> dict:
        state = super()._snapshot_state()
        encode = snapshots.encode_match
        revocation_set = {id(r) for r in self._fresh_revocations}
        state.update(
            {
                "revocations": [
                    {"match": encode(r.match), "caused_by": r.caused_by}
                    for r in self.revocations
                ],
                # Fresh (unconsumed) revocations are a suffix-free subset
                # of `revocations`; store their indices, not copies.
                "fresh": [
                    i for i, r in enumerate(self.revocations) if id(r) in revocation_set
                ],
                "exposed": [
                    (point, tie, encode(match))
                    for point, tie, match in self._exposed
                ],
                "exposed_next": self._exposed_next,
                "revoked_keys": sorted(self._revoked_keys),
            }
        )
        return state

    def _restore_state(self, state: dict) -> None:
        super()._restore_state(state)
        decode = self._decode_match
        self.revocations = [
            Revocation(decode(r["match"]), r["caused_by"])
            for r in state["revocations"]
        ]
        self._fresh_revocations = [self.revocations[i] for i in state["fresh"]]
        self._exposed = [
            (point, tie, decode(encoded))
            for point, tie, encoded in state["exposed"]
        ]
        heapq.heapify(self._exposed)
        self._exposed_next = state["exposed_next"]
        self._revoked_keys = {tuple(key) for key in state["revoked_keys"]}

    # -- consumption ---------------------------------------------------------------

    def take_revocations(self) -> List[Revocation]:
        """Revocations issued since the last call (stream-style consumption)."""
        fresh = self._fresh_revocations
        self._fresh_revocations = []
        return fresh

    def net_result_set(self):
        """Emitted-match identities minus revoked ones (oracle-comparable)."""
        return self.result_set() - self._revoked_keys
