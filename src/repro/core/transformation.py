"""Transformation operator: matches → composite output events.

The paper's algebra ends with a *transformation* step that packages a
detected pattern into a new composite event, so that downstream
consumers (or further pattern queries — CEP is compositional) see an
ordinary event stream.  The composite event's occurrence time is the
occurrence time of the match's last positive event, which keeps the
output stream's disorder bounded by the input's: a composite is
produced no earlier than its own occurrence timestamp allows.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional

from repro.core.errors import ConfigurationError
from repro.core.event import Event
from repro.core.pattern import Match

Extractor = Callable[[Mapping[str, Event]], Any]


class CompositeEventFactory:
    """Builds composite events from matches.

    Parameters
    ----------
    etype:
        Type name of the produced composite events.
    fields:
        Mapping of output attribute name → extractor.  An extractor is
        either a ``"var.attr"`` string (sugar for a binding lookup) or
        a callable receiving the match's bindings.

    Examples
    --------
    >>> factory = CompositeEventFactory(
    ...     "SHOPLIFT",
    ...     {"tag": "s.tag", "dwell": lambda b: b["e"].ts - b["s"].ts},
    ... )
    """

    def __init__(self, etype: str, fields: Optional[Dict[str, Any]] = None):
        if not etype or not isinstance(etype, str):
            raise ConfigurationError(f"composite event type must be a string, got {etype!r}")
        self.etype = etype
        self._extractors: Dict[str, Extractor] = {}
        for name, spec in (fields or {}).items():
            self._extractors[name] = self._compile(spec)

    @staticmethod
    def _compile(spec: Any) -> Extractor:
        if callable(spec):
            return spec
        if isinstance(spec, str) and "." in spec:
            var, __, attr = spec.partition(".")

            def lookup(bindings: Mapping[str, Event], var=var, attr=attr) -> Any:
                event = bindings[var]
                return event.ts if attr == "ts" else event[attr]

            return lookup
        raise ConfigurationError(
            f"field spec must be callable or 'var.attr' string, got {spec!r}"
        )

    def build(self, match: Match) -> Event:
        """Produce the composite event for *match*."""
        bindings = match.bindings()
        attrs = {name: fn(bindings) for name, fn in self._extractors.items()}
        attrs.setdefault("span", match.end_ts - match.start_ts)
        return Event(self.etype, match.end_ts, attrs)
