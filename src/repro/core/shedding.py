"""Load shedding: bounded degradation instead of unbounded growth.

An engine whose purge horizon cannot keep up with admission — K too
large for the arrival rate, a stuck upstream clock, a failure burst —
grows state without bound and eventually dies of memory exhaustion,
taking every result with it.  Shedding trades a *measured* amount of
result quality for survival: when retained state crosses a configured
bound, the engine drops stored elements by an explicit policy and
counts every casualty in ``stats.events_shed`` so the loss is visible
in quality reports (``repro.metrics.quality`` carries the counter).

Two policies, mirroring the classic stream-load-shedding taxonomy:

* **DROP_OLDEST** — shed the oldest retained elements across all
  stores.  Oldest state is closest to its purge threshold anyway, so
  this minimises the expected number of future matches lost.
* **DROP_BY_TYPE** — shed configured *victim* event types first (e.g. a
  high-volume sensor type that contributes least to results), falling
  back to drop-oldest only if the victims alone cannot meet the bound.

Shedding is deterministic — a pure function of the retained state and
the bound — so shed engines remain replayable and checkpointable.
"""

from __future__ import annotations

import enum
from typing import Tuple

from repro.core.errors import ConfigurationError


class ShedMode(enum.Enum):
    """Which retained elements are sacrificed when the bound is crossed."""

    DROP_OLDEST = "drop-oldest"
    DROP_BY_TYPE = "drop-by-type"


class ShedPolicy:
    """Configured overload response; construct via the class methods.

    >>> ShedPolicy.drop_oldest(max_state=10_000)
    ShedPolicy(drop-oldest, max_state=10000)
    >>> ShedPolicy.drop_by_type(5_000, victims=("TELEMETRY",))
    ShedPolicy(drop-by-type, max_state=5000, victims=('TELEMETRY',))
    """

    __slots__ = ("mode", "max_state", "victims")

    def __init__(
        self,
        max_state: int,
        mode: ShedMode = ShedMode.DROP_OLDEST,
        victims: Tuple[str, ...] = (),
    ):
        if not isinstance(max_state, int) or isinstance(max_state, bool) or max_state < 1:
            raise ConfigurationError(
                f"shed bound max_state must be a positive int, got {max_state!r}"
            )
        if not isinstance(mode, ShedMode):
            raise ConfigurationError(f"mode must be a ShedMode, got {mode!r}")
        for victim in victims:
            if not isinstance(victim, str) or not victim:
                raise ConfigurationError(
                    f"shed victims must be non-empty event type names, got {victim!r}"
                )
        # Canonicalise: duplicates add nothing to the drop order, and
        # first-occurrence dedup keeps the fingerprint of every
        # duplicate-free victims list (the valid configurations all
        # existing snapshots were taken under) byte-identical.
        deduped = tuple(dict.fromkeys(victims))
        if mode is ShedMode.DROP_BY_TYPE and not deduped:
            raise ConfigurationError(
                "DROP_BY_TYPE shedding needs at least one victim event type"
            )
        self.mode = mode
        self.max_state = max_state
        self.victims = deduped

    @classmethod
    def drop_oldest(cls, max_state: int) -> "ShedPolicy":
        """Shed the oldest retained elements once state exceeds *max_state*."""
        return cls(max_state, ShedMode.DROP_OLDEST)

    @classmethod
    def drop_by_type(cls, max_state: int, victims: Tuple[str, ...]) -> "ShedPolicy":
        """Shed *victims* types first once state exceeds *max_state*."""
        return cls(max_state, ShedMode.DROP_BY_TYPE, victims=tuple(victims))

    def fingerprint(self) -> tuple:
        """Hashable identity for snapshot config verification."""
        return (self.mode.value, self.max_state, self.victims)

    def pressure(self, state_size: int) -> float:
        """Fraction of the shed bound *state_size* consumes (may exceed 1).

        The ingestion gateway's backpressure ladder keys off this:
        below its soft threshold admission is free, between soft and
        1.0 clients are throttled, and at/after 1.0 the engine is
        already shedding — new frames are rejected with a retry-after
        hint rather than buffered without bound.
        """
        if state_size <= 0:
            return 0.0
        return state_size / self.max_state

    def unmatched_victims(self, retained_types) -> Tuple[str, ...]:
        """Victims that can never match a retained event type.

        A typo'd victim list is otherwise a silent no-op: the drop loop
        scans stores that never hold the named type and always falls
        back to drop-oldest.  *retained_types* is the set of types the
        engine can store (positive steps plus negative/Kleene stores,
        i.e. ``pattern.relevant_types``).
        """
        return tuple(v for v in self.victims if v not in retained_types)

    def register_metrics(self, registry, retained_types=None) -> None:
        """Publish the configured bound to a metrics registry.

        Called by the observability bundle when a shed-configured engine
        is instrumented: the bound is the denominator operators need
        next to ``repro_state_size_now`` to see how close the engine
        runs to its shedding threshold (casualty counts live in
        ``repro_shed_total``, maintained by the bundle).  When the
        engine's *retained_types* are known, victims that can never
        match one are counted in ``repro_shed_victims_unmatched`` so a
        typo'd victim list is visible instead of a silent no-op.
        """
        registry.gauge(
            "repro_shed_bound", "configured state bound that triggers shedding"
        ).set(self.max_state)
        if retained_types is not None:
            registry.gauge(
                "repro_shed_victims_unmatched",
                "configured shed victims matching no retained event type",
            ).set(len(self.unmatched_victims(retained_types)))

    def __repr__(self) -> str:
        if self.mode is ShedMode.DROP_BY_TYPE:
            return (
                f"ShedPolicy({self.mode.value}, max_state={self.max_state}, "
                f"victims={self.victims!r})"
            )
        return f"ShedPolicy({self.mode.value}, max_state={self.max_state})"
