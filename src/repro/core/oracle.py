"""Offline brute-force oracle: ground truth for every engine.

The oracle sees the *complete* trace at once, sorts it by occurrence
time, and enumerates matches by exhaustive search directly from the
semantics in ``repro.core.pattern``.  It is deliberately simple-minded
(no stacks, no purging, no incremental state) so that its correctness
is auditable by eye; the test suite then holds every engine to
producing exactly the oracle's result set.

It also powers the correctness experiments (E1): feeding an
out-of-order arrival permutation to the in-order baseline and comparing
against the oracle quantifies how badly the state of the art breaks.

Complexity is exponential in pattern length — fine for tests and for
the modest traces the correctness experiments use, unusable as an
actual engine (which is the point).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, List, Sequence, Set

from repro.core.event import Event, sort_by_occurrence
from repro.core.pattern import Match, NegationBracket, Pattern


class OfflineOracle:
    """Reference evaluator for a single pattern over a full trace."""

    def __init__(self, pattern: Pattern):
        self.pattern = pattern

    def evaluate(self, events: Iterable[Event]) -> List[Match]:
        """Return all matches of the pattern over *events* (any order).

        The input may be in any arrival order; the oracle works on the
        occurrence-time-sorted view, which is the semantics' frame of
        reference.
        """
        trace = sort_by_occurrence(e for e in events)
        by_type: Dict[str, List[Event]] = {}
        for event in trace:
            by_type.setdefault(event.etype, []).append(event)

        candidates: List[List[Event]] = []
        for step in self.pattern.positive_steps:
            candidates.append(by_type.get(step.etype, []))
        if any(not c for c in candidates):
            return []

        matches: List[Match] = []
        chosen: List[Event] = []
        self._extend(candidates, 0, chosen, matches, by_type)
        return matches

    def evaluate_set(self, events: Iterable[Event]) -> Set[tuple]:
        """Result identity set (match keys) for direct comparison."""
        return {m.key() for m in self.evaluate(events)}

    # -- internals -----------------------------------------------------------

    def _extend(
        self,
        candidates: Sequence[List[Event]],
        depth: int,
        chosen: List[Event],
        matches: List[Match],
        by_type: Dict[str, List[Event]],
    ) -> None:
        pattern = self.pattern
        if depth == pattern.length:
            if self._negations_clear(chosen, by_type):
                collections = self._kleene_collections(chosen, by_type)
                if pattern.has_kleene and collections is None:
                    return  # some Kleene bracket collected nothing
                matches.append(Match(pattern, list(chosen), collections=collections))
            return
        for event in candidates[depth]:
            if chosen:
                if event.ts <= chosen[-1].ts:
                    continue
                if event.ts - chosen[0].ts > pattern.within:
                    break  # candidates are ts-sorted; all later ones overflow too
            if not self._staged_ok(chosen + [event], depth):
                continue
            chosen.append(event)
            self._extend(candidates, depth + 1, chosen, matches, by_type)
            chosen.pop()

    def _staged_ok(self, prefix: List[Event], depth: int) -> bool:
        """Check predicates whose latest variable is the step just bound."""
        pattern = self.pattern
        var = pattern.positive_steps[depth].var
        staged = pattern.staged.get(var, ())
        if not staged:
            return True
        bindings = dict(
            zip((s.var for s in pattern.positive_steps[: depth + 1]), prefix)
        )
        return all(p.evaluate(bindings) for p in staged)

    def _negations_clear(
        self, positives: Sequence[Event], by_type: Dict[str, List[Event]]
    ) -> bool:
        pattern = self.pattern
        for bracket in pattern.negations:
            if self._bracket_violated(bracket, positives, by_type):
                return False
        return True

    def _kleene_collections(
        self, positives: Sequence[Event], by_type: Dict[str, List[Event]]
    ):
        """Per-variable Kleene collections, or None when a bracket is empty."""
        pattern = self.pattern
        if not pattern.has_kleene:
            return None
        collections = {}
        for bracket in pattern.kleene:
            pool = by_type.get(bracket.step.etype, [])
            elements = bracket.collect(list(positives), pattern.within, pool)
            if not elements:
                return None
            collections[bracket.step.var] = elements
        return collections

    def _bracket_violated(
        self,
        bracket: NegationBracket,
        positives: Sequence[Event],
        by_type: Dict[str, List[Event]],
    ) -> bool:
        pool = by_type.get(bracket.step.etype, [])
        if not pool:
            return False
        lo, hi = bracket.bounds(positives, self.pattern.within)
        timestamps = [e.ts for e in pool]
        start = bisect_right(timestamps, lo)
        end = bisect_left(timestamps, hi)
        for candidate in pool[start:end]:
            if bracket.admits(candidate, positives, self.pattern.within):
                return True
        return False


def oracle_matches(pattern: Pattern, events: Iterable[Event]) -> List[Match]:
    """One-shot convenience wrapper around :class:`OfflineOracle`."""
    return OfflineOracle(pattern).evaluate(events)
