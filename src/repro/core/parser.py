"""Textual query language: a SASE-style surface syntax for patterns.

Grammar (case-insensitive keywords)::

    query       := "PATTERN" "SEQ" "(" step ("," step)* ")"
                   ("WHERE" disjunction)? "WITHIN" INTEGER
    step        := "!"? TYPE "+"? VAR        -- "+" marks a Kleene step
    disjunction := conjunction ("OR" conjunction)*
    conjunction := condition ("AND" condition)*
    condition   := "(" disjunction ")" | "NOT" condition | comparison
    comparison  := operand OP operand
    operand     := VAR "." ATTR | literal
    literal     := INTEGER | FLOAT | STRING | "true" | "false"
    OP          := "=" | "==" | "!=" | "<" | "<=" | ">" | ">="

Example::

    PATTERN SEQ(SHELF_READ s, !COUNTER_READ c, EXIT_READ e)
    WHERE s.tag == e.tag AND c.tag == s.tag
    WITHIN 1200

``parse`` returns a compiled :class:`repro.core.pattern.Pattern`; all
static validation (unknown variables, adjacent negation, …) happens in
the pattern constructor, so the parser only worries about syntax.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional

from repro.core.errors import ParseError
from repro.core.pattern import Pattern, Step
from repro.core.predicates import (
    And,
    Attr,
    Comparison,
    Const,
    Not,
    Or,
    Predicate,
    Term,
)


class _Token(NamedTuple):
    kind: str
    value: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<FLOAT>-?\d+\.\d+)
  | (?P<INT>-?\d+)
  | (?P<STRING>'[^']*'|"[^"]*")
  | (?P<OP>==|!=|<=|>=|=|<|>)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<BANG>!)
  | (?P<PLUS>\+)
  | (?P<DOT>\.)
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"pattern", "seq", "where", "within", "and", "or", "not", "true", "false"}


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError("unrecognised character", position, text)
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "WS":
            if kind == "NAME" and value.lower() in _KEYWORDS:
                if value.lower() in ("true", "false"):
                    kind = "BOOL"
                else:
                    kind = value.upper()
            tokens.append(_Token(kind, value, position))
        position = match.end()
    tokens.append(_Token("EOF", "", len(text)))
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token plumbing ---------------------------------------------------------

    def _peek(self) -> _Token:
        return self.tokens[self.index]

    def _advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.kind} {token.value!r}",
                token.position,
                self.text,
            )
        return self._advance()

    def _accept(self, kind: str) -> Optional[_Token]:
        if self._peek().kind == kind:
            return self._advance()
        return None

    # -- grammar ------------------------------------------------------------------

    def parse_query(self, name: str) -> Pattern:
        self._expect("PATTERN")
        self._expect("SEQ")
        self._expect("LPAREN")
        steps = [self._parse_step()]
        while self._accept("COMMA"):
            steps.append(self._parse_step())
        self._expect("RPAREN")
        where: Optional[Predicate] = None
        if self._accept("WHERE"):
            where = self._parse_disjunction()
        self._expect("WITHIN")
        window_token = self._expect("INT")
        self._expect("EOF")
        predicates = [where] if where is not None else None
        return Pattern(steps, where=predicates, within=int(window_token.value), name=name)

    def _parse_step(self) -> Step:
        negated = self._accept("BANG") is not None
        etype = self._expect("NAME").value
        kleene = self._accept("PLUS") is not None
        var = self._expect("NAME").value
        return Step(etype, var, negated=negated, kleene=kleene)

    def _parse_disjunction(self) -> Predicate:
        children = [self._parse_conjunction()]
        while self._accept("OR"):
            children.append(self._parse_conjunction())
        return children[0] if len(children) == 1 else Or(children)

    def _parse_conjunction(self) -> Predicate:
        children = [self._parse_condition()]
        while self._accept("AND"):
            children.append(self._parse_condition())
        return children[0] if len(children) == 1 else And(children)

    def _parse_condition(self) -> Predicate:
        if self._accept("LPAREN"):
            inner = self._parse_disjunction()
            self._expect("RPAREN")
            return inner
        if self._accept("NOT"):
            return Not(self._parse_condition())
        return self._parse_comparison()

    def _parse_comparison(self) -> Predicate:
        left = self._parse_operand()
        op_token = self._expect("OP")
        right = self._parse_operand()
        op = "==" if op_token.value == "=" else op_token.value
        return Comparison(left, op, right)

    def _parse_operand(self) -> Term:
        token = self._peek()
        if token.kind == "INT":
            self._advance()
            return Const(int(token.value))
        if token.kind == "FLOAT":
            self._advance()
            return Const(float(token.value))
        if token.kind == "STRING":
            self._advance()
            return Const(token.value[1:-1])
        if token.kind == "BOOL":
            self._advance()
            return Const(token.value.lower() == "true")
        if token.kind == "NAME":
            self._advance()
            self._expect("DOT")
            attr = self._expect("NAME").value
            return Attr(token.value, attr)
        raise ParseError(
            f"expected an operand, found {token.kind} {token.value!r}",
            token.position,
            self.text,
        )


def parse(text: str, name: str = "") -> Pattern:
    """Parse the query language into a compiled :class:`Pattern`.

    >>> q = parse("PATTERN SEQ(A a, B b) WHERE a.x == b.x WITHIN 10")
    >>> q.length
    2
    """
    parser = _Parser(text)
    derived_name = name or "q"
    return parser.parse_query(derived_name)
