"""Conservative negation under disorder: seal, then decide.

A match for a pattern with negated steps cannot be emitted the moment
its positive events line up: a *negative* event that would invalidate
it may still be in flight.  The conservative strategy (the one the
paper adopts; the optimistic alternative lives in
``repro.core.aggressive``) holds each candidate match until its
negation intervals are **sealed** — until the safe horizon guarantees
no event that could fall inside them will ever arrive — then checks the
negative store once and either releases or cancels the match.

Seal point
----------
For a bracket with forbidden open interval ``(lo, hi)``, every
potentially invalidating event has ``ts <= hi - 1``; the bracket is
sealed when ``horizon >= hi - 1``.  A match's seal point is the max
over its brackets.  Matches are kept in a seal-point-ordered priority
queue so advancing the horizon releases exactly the ripe prefix.

Negative-store retention
------------------------
The proof that purging negatives at ``ts <= horizon - W`` is safe:
any *unsealed* match bracket ``(lo, hi)`` has ``hi - 1 > horizon``.
Brackets bounded above by a positive event ``q`` have ``hi = q.ts`` and
admit only events with ``ts > lo >= first.ts >= q.ts - W > horizon - W``.
Trailing brackets have ``hi = first.ts + W + 1`` and admit only
``ts > lo = last.ts``, with ``last.ts >= first.ts > horizon - W``
(because ``hi - 1 = first.ts + W > horizon``).  Leading brackets have
``hi = first.ts`` with ``hi - 1 > horizon`` and admit only
``ts > last.ts - W - 1``, i.e. ``ts >= last.ts - W >= first.ts - W >
horizon - W``.  In every case an event at or below ``horizon - W``
cannot affect an unsealed match — provided sealed matches were decided
first, which is why the engine seals before purging.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.core.pattern import Match, Pattern
from repro.core.stacks import NegativeStore
from repro.core.stats import EngineStats


def seal_point(pattern: Pattern, match: Match) -> int:
    """Horizon value at which every negation/Kleene bracket of *match* seals.

    A bracket over interval ``(lo, hi)`` is sealed once the horizon
    reaches ``hi - 1`` — no event that could fall inside it can still
    arrive.  Kleene brackets seal on the same rule: only then is the
    collected set final.  Returns -1 for patterns without brackets
    (sealed immediately).
    """
    if not pattern.negations and not pattern.kleene:
        return -1
    positives = match.events
    point = -1
    for bracket in pattern.negations:
        _, hi = bracket.bounds(positives, pattern.within)
        point = max(point, hi - 1)
    for bracket in pattern.kleene:
        _, hi = bracket.bounds(positives, pattern.within)
        point = max(point, hi - 1)
    return point


def violated(
    pattern: Pattern,
    match: Match,
    negatives: NegativeStore,
    stats: Optional[EngineStats] = None,
) -> bool:
    """True when some stored negative event invalidates *match*."""
    positives = match.events
    for bracket in pattern.negations:
        lo, hi = bracket.bounds(positives, pattern.within)
        for candidate in negatives.between(bracket.step.etype, lo, hi):
            if stats is not None:
                stats.predicate_evaluations += 1
            if bracket.admits(candidate, positives, pattern.within):
                return True
    return False


def collect_kleene(
    pattern: Pattern,
    match: Match,
    store: NegativeStore,
    stats: Optional[EngineStats] = None,
):
    """Collections for every Kleene bracket of *match*, or None.

    Returns a ``var -> tuple(events)`` map when every bracket collects
    at least one qualifying event; ``None`` when some bracket is empty
    (the ``+`` requires one-or-more, so the match is cancelled).
    Retention of the Kleene store follows the same ``horizon - W``
    threshold (and the same proof) as the negative store.
    """
    positives = match.events
    collections = {}
    for bracket in pattern.kleene:
        lo, hi = bracket.bounds(positives, pattern.within)
        pool = store.between(bracket.step.etype, lo, hi)
        if stats is not None:
            stats.predicate_evaluations += len(pool)
        elements = bracket.collect(positives, pattern.within, pool)
        if not elements:
            return None
        collections[bracket.step.var] = elements
    return collections


class PendingMatches:
    """Seal-point-ordered buffer of candidate matches awaiting release.

    ``release(horizon)`` pops every match whose seal point is at or
    below the horizon; the caller then checks each against the negative
    store.  The tie-breaking counter keeps heap order deterministic and
    FIFO among equal seal points, so output order is reproducible.
    """

    __slots__ = ("_heap", "_next")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Match]] = []
        # A plain int (not itertools.count) so the tie-break sequence is
        # part of the engine's checkpointable state: restoring it exactly
        # reproduces emission order among equal seal points.
        self._next = 0

    def __len__(self) -> int:
        return len(self._heap)

    def add(self, match: Match, point: int) -> None:
        heapq.heappush(self._heap, (point, self._next, match))
        self._next += 1

    def release(self, horizon: int) -> List[Match]:
        """Matches whose seal point ``<= horizon``, in seal order."""
        ripe: List[Match] = []
        while self._heap and self._heap[0][0] <= horizon:
            ripe.append(heapq.heappop(self._heap)[2])
        return ripe

    def drain(self) -> List[Match]:
        """All pending matches (stream end); empties the buffer."""
        ripe = [entry[2] for entry in sorted(self._heap)]
        self._heap.clear()
        return ripe

    def earliest_seal(self) -> Optional[int]:
        """Smallest pending seal point, or None when empty."""
        return self._heap[0][0] if self._heap else None

    # -- checkpointing ---------------------------------------------------------

    def snapshot_state(self, encode) -> dict:
        """Heap entries with matches passed through *encode* (see snapshot.py)."""
        return {
            "next": self._next,
            "heap": [(point, tie, encode(match)) for point, tie, match in self._heap],
        }

    def restore_state(self, state: dict, decode) -> None:
        self._heap = [
            (point, tie, decode(encoded)) for point, tie, encoded in state["heap"]
        ]
        heapq.heapify(self._heap)
        self._next = state["next"]
