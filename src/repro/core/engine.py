"""The out-of-order engine: the paper's contribution, assembled.

:class:`OutOfOrderEngine` evaluates one ``SEQ`` pattern over a stream
whose arrival order may diverge from occurrence order, bounded by a
disorder promise K.  Per arriving element it performs:

1. **clock & lateness** — advance the stream clock; elements older than
   the safe horizon violate the K promise and are handled per
   :class:`LatePolicy`;
2. **sequence scan** — admission to the ts-sorted stacks (positive
   steps) and/or the negative store (negated types), plus feasibility
   probes (``repro.core.scan``);
3. **sequence construction** — exactly-once match enumeration triggered
   by the insertion (``repro.core.construction``);
4. **negation routing** — matches with unsealed negation brackets are
   parked in the pending buffer; sealed ones are checked against the
   negative store and emitted or cancelled (``repro.core.negation``);
5. **seal release** — the advanced horizon may ripen previously parked
   matches;
6. **purge** — state provably useless at the new horizon is dropped,
   per the configured :class:`PurgePolicy` (``repro.core.purge``).

The engine is single-threaded and deterministic: identical input
sequences produce identical outputs, counters and state trajectories,
which the record/replay substrate and the benchmarks rely on.
"""

from __future__ import annotations

import enum
from bisect import bisect_left
from typing import Iterable, List, NamedTuple, Optional, Set, Tuple

from repro.core import snapshot as snapshots
from repro.core.clock import StreamClock
from repro.core.errors import (
    ConfigurationError,
    DisorderBoundViolation,
    EngineStateError,
    SnapshotError,
)
from repro.core.event import (
    Event,
    Punctuation,
    StreamElement,
    admission_error,
    is_event,
    malformed_reason,
)
from repro.core.negation import collect_kleene, PendingMatches, seal_point, violated
from repro.core.pattern import Match, Pattern
from repro.core.purge import PurgeMode, PurgePolicy, Purger
from repro.core.scan import SequenceScanner
from repro.core.construction import SequenceConstructor
from repro.core.shedding import ShedMode, ShedPolicy
from repro.core.speculate import (
    RETRACT_EMPTY_KLEENE,
    RETRACT_NEGATION,
    SpeculationLog,
)
from repro.core.stacks import Instance, NegativeStore, StackSet
from repro.core.stats import EngineStats


class LatePolicy(enum.Enum):
    """What to do with an event that violates the disorder bound K."""

    RAISE = "raise"  #: raise DisorderBoundViolation (strict deployments)
    DROP = "drop"  #: count it (stats.late_dropped) and ignore it
    PROCESS = "process"  #: best effort — process anyway; results involving
    #: already-purged state are silently incomplete


class ValidationPolicy(enum.Enum):
    """What to do with a malformed stream element at admission.

    Events built through :class:`~repro.core.event.Event` are validated
    at construction, but elements deserialised from the network or a
    damaged trace can carry negative/NaN/non-int timestamps or a missing
    type — shapes that would silently corrupt timestamp-ordered state
    (heap order in reorder buffers, bisect positions in sorted stacks).
    Every engine therefore screens admissions
    (:func:`~repro.core.event.malformed_reason`); this policy decides
    the response.  Set ``engine.validation`` before feeding.
    """

    RAISE = "raise"  #: raise StreamError (default: fail fast)
    QUARANTINE = "quarantine"  #: count in stats.events_quarantined and skip


class EmissionRecord(NamedTuple):
    """Bookkeeping for one emitted match (drives the latency metrics)."""

    match: Match
    emitted_seq: int  #: engine arrival index at emission time
    emitted_clock: int  #: stream clock (max occurrence ts) at emission time


class Engine:
    """Common engine surface shared by every strategy in this library.

    Subclasses implement :meth:`_process_event` and may extend
    :meth:`_on_punctuation` / :meth:`_flush`.  The shared surface keeps
    the bench harness strategy-agnostic.
    """

    def __init__(self, pattern: Pattern) -> None:
        self.pattern = pattern
        self.stats = EngineStats()
        self.results: List[Match] = []
        self.emissions: List[EmissionRecord] = []
        self.validation = ValidationPolicy.RAISE
        self._arrival = 0
        self._closed = False
        # Observability bundle (repro.obs.hooks.Observability), attached
        # via enable_observability().  None by default: the disabled hot
        # path pays exactly one attribute check per element.
        self._obs = None

    # -- public API ------------------------------------------------------------

    def feed(self, element: StreamElement) -> List[Match]:
        """Process one stream element; returns matches emitted *now*."""
        if self._closed:
            raise EngineStateError(f"{type(self).__name__} is closed")
        if self._obs is not None:
            return self._obs.feed(self, element)
        if malformed_reason(element) is not None:
            if self.validation is ValidationPolicy.QUARANTINE:
                self.stats.events_quarantined += 1
                return []
            raise admission_error(element)
        if is_event(element):
            self._arrival += 1
            self.stats.events_in += 1
            emitted = self._process_event(element)
        else:
            self.stats.punctuations_in += 1
            emitted = self._on_punctuation(element)
        self.stats.note_state_size(self.state_size())
        return emitted

    def feed_batch(self, elements: Iterable[StreamElement]) -> List[Match]:
        """Process a batch of elements; returns matches emitted during it.

        Semantically identical to ``for x in elements: feed(x)`` —
        emissions, counters and state trajectories match element for
        element (the property suite pins this).  Engines with a batched
        fast path override this to amortise per-element dispatch; the
        base implementation is the reference loop.
        """
        emitted: List[Match] = []
        for element in elements:
            emitted.extend(self.feed(element))
        return emitted

    def feed_many(self, elements: Iterable[StreamElement]) -> List[Match]:
        """Feed every element; returns all matches emitted during the run."""
        return self.feed_batch(elements)

    def feed_colbatch(self, batch, marks: Optional[List[int]] = None) -> List[Match]:
        """Process a columnar :class:`~repro.core.colbatch.EventBatch`.

        Semantically identical to ``feed_batch(batch.to_events())``.
        When *marks* is given (a caller-owned list), the cumulative
        emission count is appended after every row — ``len(batch)``
        entries — so callers can attribute each emitted match to the
        row whose processing produced it (the pipelined engine's
        epoch-ordered merge rebuilds the serial interleave from these).
        The reference implementation materialises rows and feeds them;
        engines with a columnar fast path override it.
        """
        if marks is None:
            return self.feed_batch(batch.to_events())
        emitted: List[Match] = []
        for event in batch.to_events():
            emitted.extend(self.feed(event))
            marks.append(len(emitted))
        return emitted

    def close(self) -> List[Match]:
        """End of stream: release everything still pending, then seal the engine."""
        if self._closed:
            return []
        emitted = self._flush()
        self._closed = True
        if self._obs is not None:
            self._obs.after_close(self, emitted)
        return emitted

    def run(self, elements: Iterable[StreamElement]) -> List[Match]:
        """feed_many + close in one call; returns the complete result list."""
        emitted = self.feed_many(elements)
        emitted.extend(self.close())
        return emitted

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def arrival_index(self) -> int:
        """Number of events fed so far (the engine's logical arrival clock)."""
        return self._arrival

    def result_set(self) -> Set[Tuple]:
        """Identity set of emitted matches, for oracle comparison."""
        return {m.key() for m in self.results}

    def state_size(self) -> int:
        """Total retained state in instances/events (memory experiments)."""
        raise NotImplementedError

    # -- observability -----------------------------------------------------------

    def enable_observability(self, tracer=None, metrics=None):
        """Attach lifecycle tracing and/or a metrics registry.

        *tracer* is a :class:`repro.obs.Tracer` (or None for metrics
        only); *metrics* is a :class:`repro.obs.MetricsRegistry` (or
        None for tracing only).  Returns the attached bundle.  Feeding
        then routes through the instrumented mirror path — observably
        identical results and counters, at instrumented cost.
        """
        from repro.obs.hooks import Observability

        self._obs = Observability(self, tracer=tracer, registry=metrics)
        return self._obs

    @property
    def observability(self):
        """The attached bundle, or None when running uninstrumented."""
        return self._obs

    # -- checkpoint / restore ----------------------------------------------------

    def snapshot(self) -> bytes:
        """Serialise the engine's full deterministic state.

        A fresh engine constructed with the *same configuration* (same
        pattern, K, policies) and then :meth:`restore`\\ d from the blob
        behaves byte-identically on every subsequent element — same
        emissions, same counters, same state trajectory.  The pattern
        itself is not serialised (predicates may be closures); only its
        fingerprint travels, verified at restore time.
        """
        return snapshots.pack(self, self._snapshot_config(), self._snapshot_state())

    def restore(self, blob: bytes) -> None:
        """Load state from :meth:`snapshot`.

        Raises :class:`~repro.core.errors.SnapshotError` when the blob
        is corrupt or was taken from a different engine class or
        configuration.
        """
        self._restore_state(snapshots.unpack(self, blob))

    def _snapshot_config(self) -> dict:
        """Construction-time identity, verified (not restored) on restore."""
        return {
            "pattern": snapshots.pattern_fingerprint(self.pattern),
            "validation": self.validation.value,
        }

    def _snapshot_state(self) -> dict:
        raise NotImplementedError(
            f"{type(self).__name__} does not support snapshot/restore"
        )

    def _restore_state(self, state: dict) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} does not support snapshot/restore"
        )

    def _base_state(self) -> dict:
        """State every engine shares: flow counters and the emission history."""
        state = {
            "arrival": self._arrival,
            "closed": self._closed,
            "stats": self.stats.as_dict(),
            "results": [snapshots.encode_match(m) for m in self.results],
            "emissions": [(r.emitted_seq, r.emitted_clock) for r in self.emissions],
        }
        # Metrics ride along so a crash-recovered engine resumes its
        # counters and histograms, not just its match state.
        if self._obs is not None and self._obs.registry is not None:
            state["metrics"] = self._obs.registry.snapshot_state()
        return state

    def _restore_base(self, state: dict) -> None:
        self._arrival = state["arrival"]
        self._closed = state["closed"]
        self.stats.restore_from(state["stats"])
        self.results = [self._decode_match(s) for s in state["results"]]
        if len(state["emissions"]) != len(self.results):
            raise SnapshotError(
                "snapshot is internally inconsistent: "
                f"{len(state['emissions'])} emission records for "
                f"{len(self.results)} results"
            )
        self.emissions = [
            EmissionRecord(match, seq, clk)
            for match, (seq, clk) in zip(self.results, state["emissions"])
        ]
        # Restore in place: handles registered before the snapshot was
        # taken (by this engine, the runner, the shed policy) stay valid.
        if self._obs is not None and self._obs.registry is not None:
            if "metrics" in state:
                self._obs.registry.restore_state(state["metrics"])

    def _decode_match(self, encoded: dict) -> Match:
        return snapshots.decode_match(self.pattern, encoded)

    # -- subclass hooks ----------------------------------------------------------

    def _process_event(self, event: Event) -> List[Match]:
        raise NotImplementedError

    def _on_punctuation(self, punctuation: Punctuation) -> List[Match]:
        return []

    def _flush(self) -> List[Match]:
        return []

    def _emit(self, match: Match, clock_now: int) -> None:
        self.results.append(match)
        self.emissions.append(EmissionRecord(match, self._arrival, clock_now))
        self.stats.matches_emitted += 1


class OutOfOrderEngine(Engine):
    """Native out-of-order SSC engine (the paper's proposal).

    Parameters
    ----------
    pattern:
        The compiled query.
    k:
        Disorder bound: an event with occurrence time ``t`` is promised
        to arrive while ``max_seen_ts <= t + k``.  ``None`` disables the
        K promise (state is retained until punctuated or closed).
    purge:
        Purge schedule (default eager).  A fresh default is created per
        engine — policies hold schedule state and must not be shared.
    late_policy:
        Handling of K-promise violations (default DROP).
    optimize_scan / optimize_construction:
        The paper's CPU optimisations; disable for ablation (E6).
    index:
        Equality-index pushdown for construction (E19): stacks for
        steps joined by attribute equality maintain value → posting
        list indexes, and construction fetches candidates by hash
        probe instead of range scan.  Disable for ablation; results
        are identical either way.
    shed:
        Optional :class:`~repro.core.shedding.ShedPolicy`: when the
        retained store size (stacks + side stores) exceeds the policy's
        bound after an element is processed, stored elements are shed —
        lossy but bounded degradation instead of unbounded growth.  Shed
        casualties are counted in ``stats.events_shed``.
    speculative:
        Opt-in optimistic mode (``repro.core.speculate``): matches with
        unsealed brackets are additionally emitted into a speculative
        side stream the moment construction completes, and a retraction
        record is issued if the seal-time decision later disagrees.  The
        sealed output (``results`` / ``emissions``) is byte-identical
        to a non-speculative run — the speculative stream is strictly
        additive.
    controller:
        Optional quality-driven bound policy
        (:class:`~repro.streams.controller.AdaptiveKController`): fed
        every arrival, consulted at each punctuation boundary, where it
        may re-freeze K (via :meth:`StreamClock.refreeze`, horizon kept
        monotone) and toggle speculation.  Cloned at attachment, so one
        configured instance can parameterise many engines.
    """

    def __init__(
        self,
        pattern: Pattern,
        k: Optional[int] = None,
        purge: Optional[PurgePolicy] = None,
        late_policy: LatePolicy = LatePolicy.DROP,
        optimize_scan: bool = True,
        optimize_construction: bool = True,
        index: bool = True,
        shed: Optional[ShedPolicy] = None,
        speculative: bool = False,
        controller=None,
    ) -> None:
        super().__init__(pattern)
        if not isinstance(late_policy, LatePolicy):
            raise ConfigurationError(f"late_policy must be a LatePolicy, got {late_policy!r}")
        if shed is not None and not isinstance(shed, ShedPolicy):
            raise ConfigurationError(f"shed must be a ShedPolicy, got {shed!r}")
        if controller is not None and not (
            callable(getattr(controller, "observe", None))
            and callable(getattr(controller, "refreeze", None))
            and callable(getattr(controller, "clone", None))
        ):
            raise ConfigurationError(
                f"controller must provide observe/refreeze/clone, got {controller!r}"
            )
        self._initial_k = k
        self.speculation = SpeculationLog() if speculative else None
        # Cloned like the purge policy: controllers hold decision state.
        self._controller = controller.clone() if controller is not None else None
        if k is None and self._controller is not None:
            # A controller manages a concrete bound; start from its
            # cold-start recommendation rather than "no promise".
            k = self._controller.recommended_k()
        self.clock = StreamClock(k)
        self.late_policy = late_policy
        self.shed = shed
        # Cloned: due() mutates schedule state, so engines must not share
        # the caller's policy object (see PurgePolicy.clone).
        self.purge_policy = (purge if purge is not None else PurgePolicy.eager()).clone()
        self.scanner = SequenceScanner(pattern, optimize=optimize_scan)
        self.constructor = SequenceConstructor(
            pattern, optimize=optimize_construction, index=index
        )
        # Stacks index exactly the attributes the construction plan will
        # probe (None when the plan uses no lookups — plain stacks then).
        self.stacks = StackSet(
            pattern.length, indexed_attrs=self.constructor.indexed_attrs
        )
        self.negatives = NegativeStore(pattern.negated_types)
        # Kleene elements live in their own ts-sorted store, consulted at
        # seal time exactly like negatives (same retention proof).
        self.kleene_store = NegativeStore(pattern.kleene_types)
        self.pending = PendingMatches()
        self.purger = Purger(pattern.within, pattern.length)

    # -- state -------------------------------------------------------------------

    def state_size(self) -> int:
        return (
            self.stacks.size()
            + self.negatives.size()
            + self.kleene_store.size()
            + len(self.pending)
        )

    # -- checkpoint / restore -----------------------------------------------------

    def _snapshot_config(self) -> dict:
        config = super()._snapshot_config()
        config.update(
            {
                # Construction-time K: with a controller attached the
                # *live* bound is state (clock carries it), not identity.
                "k": self._initial_k,
                "late_policy": self.late_policy.value,
                "purge": (self.purge_policy.mode.value, self.purge_policy.interval),
                "optimize_scan": self.scanner.optimize,
                "optimize_construction": self.constructor.optimize,
                "index": self.constructor.index,
                "shed": self.shed.fingerprint() if self.shed is not None else None,
                "speculative": self.speculation is not None,
                "controller": (
                    self._controller.fingerprint()
                    if self._controller is not None
                    else None
                ),
            }
        )
        return config

    def _snapshot_state(self) -> dict:
        state = self._base_state()
        state.update(
            {
                "clock": self.clock.snapshot_state(),
                "purge_policy": self.purge_policy.snapshot_state(),
                "stacks": self.stacks.snapshot_state(),
                "negatives": self.negatives.snapshot_state(),
                "kleene": self.kleene_store.snapshot_state(),
                "pending": self.pending.snapshot_state(snapshots.encode_match),
            }
        )
        if self.speculation is not None:
            state["speculation"] = self.speculation.snapshot_state(
                snapshots.encode_match
            )
        if self._controller is not None:
            state["controller"] = self._controller.snapshot_state()
        return state

    def _restore_state(self, state: dict) -> None:
        self._restore_base(state)
        self.clock.restore_state(state["clock"])
        self.purge_policy.restore_state(state["purge_policy"])
        self.stacks.restore_state(state["stacks"])
        self.negatives.restore_state(state["negatives"])
        self.kleene_store.restore_state(state["kleene"])
        self.pending.restore_state(state["pending"], self._decode_match)
        # Config equality (verified by unpack) guarantees these keys
        # exist exactly when the components do.
        if self.speculation is not None:
            self.speculation.restore_state(state["speculation"], self._decode_match)
        if self._controller is not None:
            self._controller.restore_state(state["controller"])

    # -- load shedding ------------------------------------------------------------

    def _shed_overflow(self) -> None:
        """Drop stored elements until the configured state bound holds.

        Runs after each processed element when a :class:`ShedPolicy` is
        configured.  Purely a function of retained state and the policy,
        so shed engines stay deterministic (and snapshot-restorable).
        Pending matches are results-in-waiting, not reconstructible
        store state, so they are never shed and do not count against the
        bound.
        """
        policy = self.shed
        stored = self.stacks.size() + self.negatives.size() + self.kleene_store.size()
        excess = stored - policy.max_state
        if excess <= 0:
            return
        shed = 0
        # Victim preview is tracing-only: the uninstrumented path never
        # materialises these lists.
        collect = self._obs is not None and self._obs.tracing
        casualties: List[Event] = []
        if policy.mode is ShedMode.DROP_BY_TYPE:
            for victim in policy.victims:
                if excess <= 0:
                    break
                for index, step in enumerate(self.pattern.positive_steps):
                    if excess > 0 and step.etype == victim:
                        if collect:
                            casualties.extend(self.stacks[index].oldest_events(excess))
                        dropped = self.stacks[index].drop_oldest(excess)
                        shed += dropped
                        excess -= dropped
                if excess > 0:
                    if collect:
                        casualties.extend(self.negatives.oldest_events(victim, excess))
                    dropped = self.negatives.drop_oldest(victim, excess)
                    shed += dropped
                    excess -= dropped
                if excess > 0:
                    if collect:
                        casualties.extend(
                            self.kleene_store.oldest_events(victim, excess)
                        )
                    dropped = self.kleene_store.drop_oldest(victim, excess)
                    shed += dropped
                    excess -= dropped
        # DROP_OLDEST, and the fallback when the victim types alone
        # cannot meet the bound: repeatedly drop the globally oldest
        # stored element (closest to its purge threshold, so the least
        # expected future-match loss).
        while excess > 0:
            best_key = None
            victim_stack = None
            victim_store = None
            victim_type = None
            for stack in self.stacks:
                if len(stack) and (best_key is None or stack._keys[0] < best_key):
                    best_key = stack._keys[0]
                    victim_stack, victim_store = stack, None
            for store in (self.negatives, self.kleene_store):
                entry = store.oldest_type()
                if entry is not None and (best_key is None or entry[0] < best_key):
                    best_key, victim_stack = entry[0], None
                    victim_store, victim_type = store, entry[1]
            if best_key is None:
                break
            if victim_stack is not None:
                if collect:
                    casualties.extend(victim_stack.oldest_events(1))
                shed += victim_stack.drop_oldest(1)
            else:
                if collect:
                    casualties.extend(victim_store.oldest_events(victim_type, 1))
                shed += victim_store.drop_oldest(victim_type, 1)
            excess -= 1
        self.stats.events_shed += shed
        if collect and casualties:
            self._obs.note_shed(self, casualties)

    # -- processing ----------------------------------------------------------------

    def _process_event(self, event: Event) -> List[Match]:
        emitted: List[Match] = []
        if self._controller is not None:
            # Before lateness triage: the estimator must see the delays
            # the current bound drops, or K could never grow out of an
            # under-provisioned start.
            self._controller.observe(event)
        if self.clock.is_late(event):
            if self.late_policy is LatePolicy.RAISE:
                raise DisorderBoundViolation(event, self.clock.now, self.clock.k or 0)
            if self.late_policy is LatePolicy.DROP:
                self.stats.late_dropped += 1
                return emitted
            # LatePolicy.PROCESS falls through: best effort.
            self.stats.late_dropped += 1

        if self.clock.observe(event):
            self.stats.out_of_order_events += 1

        if not self.scanner.relevant(event):
            self.stats.events_ignored += 1
        else:
            side_stored = False
            if self.negatives.relevant(event.etype):
                self.negatives.insert(event)
                side_stored = True
            if self.kleene_store.relevant(event.etype):
                self.kleene_store.insert(event)
                side_stored = True
            if side_stored:
                self.stats.events_admitted += 1
            steps = self.scanner.admissible_steps(event)
            if steps:
                if not side_stored:
                    self.stats.events_admitted += 1
                instance = Instance(event, self._arrival)
                for step_index in steps:
                    self.stacks[step_index].insert(instance)
                    if self.scanner.construction_feasible(
                        self.stacks, step_index, event, self.stats
                    ):
                        for match in self.constructor.construct(
                            self.stacks, step_index, instance, self.stats
                        ):
                            self._route(match, emitted)
            elif not side_stored:
                self.stats.events_ignored += 1

        self._release_ripe(emitted)
        if self.purge_policy.due():
            if self._obs is not None:
                self._obs.note_purge(self)
            self.purger.run(
                self.clock.horizon(), self.stacks, self.negatives,
                self.stats, kleene=self.kleene_store,
            )
        if self.shed is not None:
            self._shed_overflow()
        return emitted

    def _on_punctuation(self, punctuation: Punctuation) -> List[Match]:
        self.clock.observe_punctuation(punctuation)
        emitted: List[Match] = []
        self._release_ripe(emitted)
        if self.purge_policy.due():
            if self._obs is not None:
                self._obs.note_purge(self)
            self.purger.run(
                self.clock.horizon(), self.stacks, self.negatives,
                self.stats, kleene=self.kleene_store,
            )
        if self.shed is not None:
            self._shed_overflow()
        if self._controller is not None:
            self._refreeze(punctuation, emitted)
        if self.speculation is not None:
            # The punctuation closes a re-freeze epoch; later records
            # carry the new epoch id.
            self.speculation.epoch += 1
        return emitted

    def _refreeze(self, punctuation: Punctuation, emitted: List[Match]) -> None:
        """Apply the controller's end-of-epoch decision."""
        decision = self._controller.refreeze(
            punctuation.ts, self.clock.k, self.stats
        )
        if decision is None:
            return
        if decision.k != self.clock.k:
            before = self.clock.horizon()
            self.clock.refreeze(decision.k)
            if self.clock.horizon() > before:
                # A shrunk bound seals immediately, not at the next
                # arrival — that advance is the latency the controller
                # is buying.
                self._release_ripe(emitted)
        if self.speculation is not None:
            self.speculation.enabled = decision.speculate
        if self._obs is not None:
            self._obs.note_refreeze(self, decision)

    # -- batched fast path ---------------------------------------------------------

    def _post_event(self, event: Event) -> None:
        """Batch-path hook mirroring per-event subclass extensions.

        Subclasses that extend :meth:`_process_event` with extra
        per-event work that must run even for late-dropped events (the
        aggressive engine's revocation scan) override this so
        :meth:`feed_batch` stays identical to per-event feeding.
        """

    def _ripe_possible(self) -> bool:
        """True when :meth:`_release_ripe` could do any work right now.

        Skipping the release call while nothing is pending is safe:
        ``stats.matches_pending`` is maintained at every transition, so
        an empty buffer implies the counter already reads zero.
        """
        return bool(self.pending._heap)

    def feed_batch(self, elements: Iterable[StreamElement]) -> List[Match]:
        """Batched hot path: one tight loop instead of a feed() per element.

        Observable behaviour — emissions, every counter, the state
        trajectory, even exceptions — is identical to feeding the
        elements one at a time (pinned by the batch property suite).
        The amortisations are purely mechanical:

        * attribute lookups, clock arithmetic and purge scheduling are
          hoisted out of the per-element path;
        * admission uses the scanner's pre-resolved per-type dispatch
          table instead of re-deriving step lists per arrival;
        * purge scans that provably cannot drop anything (horizon
          unmoved, no insert at or below a purge threshold) are elided,
          keeping only their schedule bookkeeping;
        * the per-element state-size high-water mark is tracked
          incrementally instead of re-summing every store.

        The stream clock is advanced exactly as in per-event feeding, so
        lateness decisions and seal timing are unchanged — batching
        never trades correctness or K-semantics for speed.
        """
        if self._closed:
            raise EngineStateError(f"{type(self).__name__} is closed")
        if self.shed is not None or self._obs is not None or self._controller is not None:
            # Shedding re-checks the state bound after every element,
            # observability classifies per-element stat deltas, and a
            # controller consumes every arrival as a delay observation —
            # bookkeeping the fused loop does not model.  Take the
            # reference loop (same precedent as the spill-backed
            # reorder buffer); overload survival / introspection, not
            # throughput, is what those configurations optimise for.
            # Speculation, by contrast, stays on the fast path: it hooks
            # _route/_decide, which the fused loop calls unmodified.
            return Engine.feed_batch(self, elements)
        emitted: List[Match] = []
        stats = self.stats
        clock = self.clock
        pattern = self.pattern
        scanner = self.scanner
        stacks = self.stacks
        stack_list = stacks.stacks
        stack_keys = [stack._keys for stack in stack_list]
        negatives = self.negatives
        kleene = self.kleene_store
        pending_heap = self.pending._heap
        purge_policy = self.purge_policy
        probe = scanner.optimize
        construct = self.constructor.construct
        route = self._route
        dispatch = scanner.dispatch()
        relevant_types = pattern.relevant_types
        has_negatives = bool(pattern.negated_types)
        has_kleene = bool(pattern.kleene_types)
        neg_relevant = negatives.relevant
        kleene_relevant = kleene.relevant
        neg_insert = negatives.insert
        kleene_insert = kleene.insert
        window = pattern.within
        length = pattern.length
        final_step = length - 1
        step_range = list(range(length))
        late_policy = self.late_policy
        drop_late = late_policy is LatePolicy.DROP
        raise_late = late_policy is LatePolicy.RAISE
        purge_mode = purge_policy.mode
        purge_eager = purge_mode is PurgeMode.EAGER
        purge_lazy = purge_mode is PurgeMode.LAZY
        purge_interval = purge_policy.interval
        since_last = purge_policy._since_last
        quarantine = self.validation is ValidationPolicy.QUARANTINE
        quarantined = 0
        # Subclass hooks: pay the per-event call only when overridden.
        post_event = (
            self._post_event
            if type(self)._post_event is not OutOfOrderEngine._post_event
            else None
        )
        plain_ripe = type(self)._ripe_possible is OutOfOrderEngine._ripe_possible
        ripe_possible = self._ripe_possible
        # Clock state, mirrored locally; writes go through so emission
        # bookkeeping (clock.now at _decide time) stays exact.
        k = clock.k
        max_ts = clock._max_ts
        observations = 0
        horizon = clock.horizon()
        # Incremental state-size tracking for the peak high-water mark.
        store_size = stacks.size() + negatives.size() + kleene.size()
        peak = stats.peak_state_size
        # Flow counters, accumulated locally and flushed on exit.
        events_in = events_admitted = events_ignored = 0
        late_dropped = out_of_order = 0
        purge_runs = instances_purged = side_purged = skipped_by_probe = 0
        # Purge elision: a due purge is skipped (bookkeeping only) when
        # the horizon has not advanced past the last scanned one and no
        # insert landed at or below a purge threshold since.
        purged_at = -2
        dirty = True
        try:
            for element in elements:
                if isinstance(element, Event):
                    ts = element.ts
                    etype = element.etype
                    # Inlined admission screen (mirrors malformed_reason;
                    # feed() applies the same check per element).
                    if (
                        type(ts) is not int
                        or ts < 0
                        or not isinstance(etype, str)
                        or not etype
                    ):
                        if quarantine:
                            quarantined += 1
                            continue
                        raise admission_error(element)
                    self._arrival += 1
                    events_in += 1
                    was_late = ts <= horizon
                    if was_late:
                        if raise_late:
                            raise DisorderBoundViolation(element, max_ts, k or 0)
                        late_dropped += 1
                        if drop_late:
                            if post_event is not None:
                                post_event(element)
                            continue
                        # LatePolicy.PROCESS: best effort, falls through.
                    observations += 1
                    if ts > max_ts:
                        max_ts = ts
                        clock._max_ts = ts
                        if k is not None:
                            advanced = ts - k - 1
                            if advanced > horizon:
                                horizon = advanced
                    elif ts < max_ts:
                        out_of_order += 1

                    if etype not in relevant_types:
                        events_ignored += 1
                    else:
                        side_stored = False
                        if has_negatives and neg_relevant(etype):
                            neg_insert(element)
                            side_stored = True
                            store_size += 1
                        if has_kleene and kleene_relevant(etype):
                            kleene_insert(element)
                            side_stored = True
                            store_size += 1
                        admitted = False
                        entries = dispatch.get(etype)
                        if entries:
                            instance = None
                            for step_index, var, predicates in entries:
                                if predicates:
                                    bindings = {var: element}
                                    ok = True
                                    for predicate in predicates:
                                        if not predicate.evaluate(bindings):
                                            ok = False
                                            break
                                    if not ok:
                                        continue
                                if instance is None:
                                    instance = Instance(element, self._arrival)
                                admitted = True
                                stack_list[step_index].insert(instance)
                                store_size += 1
                                if was_late or (
                                    step_index == final_step and ts <= horizon + 1
                                ):
                                    dirty = True
                                # Inlined feasibility probe (mirrors
                                # SequenceScanner.construction_feasible).
                                ok = True
                                if probe:
                                    for j in step_range:
                                        if j == step_index:
                                            continue
                                        if j < step_index:
                                            lo = ts - window
                                            hi = ts - 1
                                        else:
                                            lo = ts + 1
                                            hi = ts + window
                                        keys = stack_keys[j]
                                        index = bisect_left(keys, (lo, -1))
                                        if index >= len(keys) or keys[index][0] > hi:
                                            ok = False
                                            skipped_by_probe += 1
                                            break
                                if ok:
                                    for match in construct(
                                        stacks, step_index, instance, stats
                                    ):
                                        route(match, emitted)
                        if was_late and side_stored:
                            dirty = True
                        if admitted or side_stored:
                            events_admitted += 1
                        else:
                            events_ignored += 1

                    if pending_heap or (not plain_ripe and ripe_possible()):
                        self._release_ripe(emitted)
                    if purge_eager:
                        due = True
                    elif purge_lazy:
                        since_last += 1
                        if since_last >= purge_interval:
                            since_last = 0
                            due = True
                        else:
                            due = False
                    else:
                        due = False
                    if due and horizon >= 0:
                        if dirty or horizon > purged_at:
                            # Inlined purge (mirrors Purger.run), with an
                            # O(1) per-stack pre-check before each cut.
                            nonfinal_cut = horizon - window
                            for j in step_range:
                                cut = horizon + 1 if j == final_step else nonfinal_cut
                                keys = stack_keys[j]
                                if keys and keys[0][0] <= cut:
                                    dropped = stack_list[j].purge_through(cut)
                                    instances_purged += dropped
                                    store_size -= dropped
                            if has_negatives:
                                dropped = negatives.purge_through(nonfinal_cut)
                                side_purged += dropped
                                store_size -= dropped
                            if has_kleene:
                                dropped = kleene.purge_through(nonfinal_cut)
                                side_purged += dropped
                                store_size -= dropped
                            purged_at = horizon
                            dirty = False
                        purge_runs += 1
                    size_now = store_size + len(pending_heap)
                    if size_now > peak:
                        peak = size_now
                    if post_event is not None:
                        post_event(element)
                else:
                    if malformed_reason(element) is not None:
                        if quarantine:
                            quarantined += 1
                            continue
                        raise admission_error(element)
                    # Punctuations are rare: run the exact per-element
                    # path, then resynchronise the hoisted locals.
                    stats.punctuations_in += 1
                    clock._observations += observations
                    observations = 0
                    purge_policy._since_last = since_last
                    emitted.extend(self._on_punctuation(element))
                    max_ts = clock._max_ts
                    horizon = clock.horizon()
                    since_last = purge_policy._since_last
                    store_size = stacks.size() + negatives.size() + kleene.size()
                    purged_at = -2
                    dirty = True
                    size_now = store_size + len(pending_heap)
                    if size_now > peak:
                        peak = size_now
        finally:
            clock._observations += observations
            purge_policy._since_last = since_last
            stats.peak_state_size = peak
            stats.events_quarantined += quarantined
            stats.events_in += events_in
            stats.events_admitted += events_admitted
            stats.events_ignored += events_ignored
            stats.late_dropped += late_dropped
            stats.out_of_order_events += out_of_order
            stats.purge_runs += purge_runs
            stats.instances_purged += instances_purged
            stats.negatives_purged += side_purged
            stats.construction_skipped_by_probe += skipped_by_probe
        return emitted

    def feed_colbatch(self, batch, marks: Optional[List[int]] = None) -> List[Match]:
        """Columnar fast path: evaluate admission against flat arrays.

        Observable behaviour is identical to
        ``feed_batch(batch.to_events())`` — emissions, counters, state
        trajectory, exceptions (pinned by the colbatch property suite).
        On top of :meth:`feed_batch`'s amortisations this path reads
        timestamps and type codes straight from the batch's columns,
        evaluates local admission predicates through their columnar
        compilations (``indexplan.compile_admission``), and only
        materialises an :class:`Event` object for rows that actually
        enter engine state (stack/side-store inserts), raise, or need
        an interpreted predicate — on selective patterns the bulk of a
        disordered stream never becomes objects at all.
        """
        if self._closed:
            raise EngineStateError(f"{type(self).__name__} is closed")
        from repro.core.colbatch import EventBatch

        if (
            type(batch) is not EventBatch
            or self.shed is not None
            or self._obs is not None
            or self._controller is not None
            or type(self)._post_event is not OutOfOrderEngine._post_event
            or type(self)._ripe_possible is not OutOfOrderEngine._ripe_possible
        ):
            # Views and subclass hooks take the reference row loop;
            # instrumented/shedding/adaptive configurations fall back
            # exactly as feed_batch does.
            return Engine.feed_colbatch(self, batch, marks)
        from repro.core.indexplan import admission_table

        # Memoised per scanner (a pure function of its dispatch), so
        # the compiled closures are built once per engine yet never
        # become engine state a snapshot could lose.
        col_dispatch = admission_table(self.scanner)
        emitted: List[Match] = []
        stats = self.stats
        clock = self.clock
        pattern = self.pattern
        stacks = self.stacks
        stack_list = stacks.stacks
        stack_keys = [stack._keys for stack in stack_list]
        negatives = self.negatives
        kleene = self.kleene_store
        pending_heap = self.pending._heap
        purge_policy = self.purge_policy
        probe = self.scanner.optimize
        construct = self.constructor.construct
        route = self._route
        relevant_types = pattern.relevant_types
        has_negatives = bool(pattern.negated_types)
        has_kleene = bool(pattern.kleene_types)
        neg_insert = negatives.insert
        kleene_insert = kleene.insert
        window = pattern.within
        length = pattern.length
        final_step = length - 1
        step_range = list(range(length))
        drop_late = self.late_policy is LatePolicy.DROP
        raise_late = self.late_policy is LatePolicy.RAISE
        purge_mode = purge_policy.mode
        purge_eager = purge_mode is PurgeMode.EAGER
        purge_lazy = purge_mode is PurgeMode.LAZY
        purge_interval = purge_policy.interval
        since_last = purge_policy._since_last
        quarantine = self.validation is ValidationPolicy.QUARANTINE
        quarantined = 0
        k = clock.k
        max_ts = clock._max_ts
        observations = 0
        horizon = clock.horizon()
        store_size = stacks.size() + negatives.size() + kleene.size()
        peak = stats.peak_state_size
        events_in = events_admitted = events_ignored = 0
        late_dropped = out_of_order = 0
        purge_runs = instances_purged = side_purged = skipped_by_probe = 0
        purged_at = -2
        dirty = True
        # Per-batch, per-type precomputation: classification is a list
        # probe by type code inside the row loop.
        table = batch.type_table
        type_ok = [isinstance(t, str) and bool(t) for t in table]
        entries_by_code = [
            col_dispatch.get(t) if t in relevant_types else None for t in table
        ]
        relevant_by_code = [t in relevant_types for t in table]
        neg_by_code = [has_negatives and negatives.relevant(t) for t in table]
        kleene_by_code = [has_kleene and kleene.relevant(t) for t in table]
        ts_col = batch.ts
        code_col = batch.codes
        materialize = batch.event
        mark = marks.append if marks is not None else None
        try:
            for i in range(batch.length):
                ts = ts_col[i]
                code = code_col[i]
                if type(ts) is not int or ts < 0 or not type_ok[code]:
                    if quarantine:
                        quarantined += 1
                        if mark is not None:
                            mark(len(emitted))
                        continue
                    raise admission_error(materialize(i))
                self._arrival += 1
                events_in += 1
                was_late = ts <= horizon
                if was_late:
                    if raise_late:
                        raise DisorderBoundViolation(materialize(i), max_ts, k or 0)
                    late_dropped += 1
                    if drop_late:
                        if mark is not None:
                            mark(len(emitted))
                        continue
                    # LatePolicy.PROCESS: best effort, falls through.
                observations += 1
                if ts > max_ts:
                    max_ts = ts
                    clock._max_ts = ts
                    if k is not None:
                        advanced = ts - k - 1
                        if advanced > horizon:
                            horizon = advanced
                elif ts < max_ts:
                    out_of_order += 1

                if not relevant_by_code[code]:
                    events_ignored += 1
                else:
                    event = None
                    side_stored = False
                    if neg_by_code[code]:
                        event = materialize(i)
                        neg_insert(event)
                        side_stored = True
                        store_size += 1
                    if kleene_by_code[code]:
                        if event is None:
                            event = materialize(i)
                        kleene_insert(event)
                        side_stored = True
                        store_size += 1
                    admitted = False
                    entries = entries_by_code[code]
                    if entries:
                        instance = None
                        for step_index, var, checks in entries:
                            ok = True
                            for col_fn, predicate in checks:
                                if col_fn is not None:
                                    if not col_fn(batch, i):
                                        ok = False
                                        break
                                else:
                                    if event is None:
                                        event = materialize(i)
                                    if not predicate.evaluate({var: event}):
                                        ok = False
                                        break
                            if not ok:
                                continue
                            if instance is None:
                                if event is None:
                                    event = materialize(i)
                                instance = Instance(event, self._arrival)
                            admitted = True
                            stack_list[step_index].insert(instance)
                            store_size += 1
                            if was_late or (
                                step_index == final_step and ts <= horizon + 1
                            ):
                                dirty = True
                            ok = True
                            if probe:
                                for j in step_range:
                                    if j == step_index:
                                        continue
                                    if j < step_index:
                                        lo = ts - window
                                        hi = ts - 1
                                    else:
                                        lo = ts + 1
                                        hi = ts + window
                                    keys = stack_keys[j]
                                    index = bisect_left(keys, (lo, -1))
                                    if index >= len(keys) or keys[index][0] > hi:
                                        ok = False
                                        skipped_by_probe += 1
                                        break
                            if ok:
                                for match in construct(
                                    stacks, step_index, instance, stats
                                ):
                                    route(match, emitted)
                    if was_late and side_stored:
                        dirty = True
                    if admitted or side_stored:
                        events_admitted += 1
                    else:
                        events_ignored += 1

                if pending_heap:
                    self._release_ripe(emitted)
                if purge_eager:
                    due = True
                elif purge_lazy:
                    since_last += 1
                    if since_last >= purge_interval:
                        since_last = 0
                        due = True
                    else:
                        due = False
                else:
                    due = False
                if due and horizon >= 0:
                    if dirty or horizon > purged_at:
                        nonfinal_cut = horizon - window
                        for j in step_range:
                            cut = horizon + 1 if j == final_step else nonfinal_cut
                            keys = stack_keys[j]
                            if keys and keys[0][0] <= cut:
                                dropped = stack_list[j].purge_through(cut)
                                instances_purged += dropped
                                store_size -= dropped
                        if has_negatives:
                            dropped = negatives.purge_through(nonfinal_cut)
                            side_purged += dropped
                            store_size -= dropped
                        if has_kleene:
                            dropped = kleene.purge_through(nonfinal_cut)
                            side_purged += dropped
                            store_size -= dropped
                        purged_at = horizon
                        dirty = False
                    purge_runs += 1
                size_now = store_size + len(pending_heap)
                if size_now > peak:
                    peak = size_now
                if mark is not None:
                    mark(len(emitted))
        finally:
            clock._observations += observations
            purge_policy._since_last = since_last
            stats.peak_state_size = peak
            stats.events_quarantined += quarantined
            stats.events_in += events_in
            stats.events_admitted += events_admitted
            stats.events_ignored += events_ignored
            stats.late_dropped += late_dropped
            stats.out_of_order_events += out_of_order
            stats.purge_runs += purge_runs
            stats.instances_purged += instances_purged
            stats.negatives_purged += side_purged
            stats.construction_skipped_by_probe += skipped_by_probe
        return emitted

    def _flush(self) -> List[Match]:
        emitted: List[Match] = []
        for match in self.pending.drain():
            self._decide(match, emitted)
        self.stats.matches_pending = 0
        return emitted

    # -- negation routing ----------------------------------------------------------

    def _route(self, match: Match, emitted: List[Match]) -> None:
        point = seal_point(self.pattern, match)
        if point <= self.clock.horizon():
            self._decide(match, emitted)
        else:
            self.pending.add(match, point)
            self.stats.matches_pending = len(self.pending)
            if self._obs is not None:
                self._obs.note_pending(self, match, point)
            if self.speculation is not None and self.speculation.enabled:
                self._speculate(match)

    def _speculate(self, match: Match) -> None:
        """Optimistically emit a just-parked match into the speculative stream.

        Speculation the stores already refute is suppressed — emitting a
        match whose bracket is known-violated would be a guaranteed
        retraction.  The store probes pass ``stats=None`` deliberately:
        speculative work must not perturb the pessimistic counters, so a
        speculative run stays comparable to a plain one.
        """
        if self.pattern.has_negation and violated(
            self.pattern, match, self.negatives, None
        ):
            return
        payload = match
        if self.pattern.has_kleene:
            collections = collect_kleene(
                self.pattern, match, self.kleene_store, None
            )
            if collections is None:
                return
            payload = match.with_collections(collections)
        record = self.speculation.speculate(payload, self._arrival, self.clock.now)
        self.stats.speculative_emitted += 1
        if self._obs is not None:
            self._obs.note_speculated(self, record)

    def _retract(self, match: Match, cause: str) -> None:
        retraction = self.speculation.retract(
            match, cause, self._arrival, self.clock.now
        )
        if retraction is not None:
            self.stats.retractions_issued += 1
            if self._obs is not None:
                self._obs.note_retracted(self, retraction)

    def _seal_speculation(self, match: Match) -> None:
        outcome = self.speculation.seal(match, self._arrival, self.clock.now)
        if outcome.retraction is not None:
            self.stats.retractions_issued += 1
            if self._obs is not None:
                self._obs.note_retracted(self, outcome.retraction)
        if outcome.fresh:
            self.stats.speculative_emitted += 1
            if self._obs is not None:
                self._obs.note_speculated(self, outcome.record)

    def _decide(self, match: Match, emitted: List[Match]) -> None:
        if self.pattern.has_negation and violated(
            self.pattern, match, self.negatives, self.stats
        ):
            self.stats.matches_cancelled += 1
            if self.speculation is not None:
                self._retract(match, RETRACT_NEGATION)
            if self._obs is not None:
                self._obs.note_cancelled(self, match, "negation violated at seal")
            return
        if self.pattern.has_kleene:
            collections = collect_kleene(
                self.pattern, match, self.kleene_store, self.stats
            )
            if collections is None:
                self.stats.matches_cancelled += 1
                if self.speculation is not None:
                    self._retract(match, RETRACT_EMPTY_KLEENE)
                if self._obs is not None:
                    self._obs.note_cancelled(self, match, "empty kleene collection")
                return
            match = match.with_collections(collections)
        if self.speculation is not None:
            self._seal_speculation(match)
        self._emit(match, self.clock.now)
        emitted.append(match)

    def _release_ripe(self, emitted: List[Match]) -> None:
        horizon = self.clock.horizon()
        for match in self.pending.release(horizon):
            self._decide(match, emitted)
        self.stats.matches_pending = len(self.pending)

    def __repr__(self) -> str:
        k = "∞" if self.clock.k is None else self.clock.k
        return (
            f"{type(self).__name__}({self.pattern.name!r}, k={k}, "
            f"clock={self.clock.now}, state={self.state_size()}, "
            f"matches={len(self.results)})"
        )
