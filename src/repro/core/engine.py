"""The out-of-order engine: the paper's contribution, assembled.

:class:`OutOfOrderEngine` evaluates one ``SEQ`` pattern over a stream
whose arrival order may diverge from occurrence order, bounded by a
disorder promise K.  Per arriving element it performs:

1. **clock & lateness** — advance the stream clock; elements older than
   the safe horizon violate the K promise and are handled per
   :class:`LatePolicy`;
2. **sequence scan** — admission to the ts-sorted stacks (positive
   steps) and/or the negative store (negated types), plus feasibility
   probes (``repro.core.scan``);
3. **sequence construction** — exactly-once match enumeration triggered
   by the insertion (``repro.core.construction``);
4. **negation routing** — matches with unsealed negation brackets are
   parked in the pending buffer; sealed ones are checked against the
   negative store and emitted or cancelled (``repro.core.negation``);
5. **seal release** — the advanced horizon may ripen previously parked
   matches;
6. **purge** — state provably useless at the new horizon is dropped,
   per the configured :class:`PurgePolicy` (``repro.core.purge``).

The engine is single-threaded and deterministic: identical input
sequences produce identical outputs, counters and state trajectories,
which the record/replay substrate and the benchmarks rely on.
"""

from __future__ import annotations

import enum
from typing import Iterable, List, NamedTuple, Optional, Set, Tuple

from repro.core.clock import StreamClock
from repro.core.errors import ConfigurationError, DisorderBoundViolation, EngineStateError
from repro.core.event import Event, Punctuation, StreamElement, is_event
from repro.core.negation import collect_kleene, PendingMatches, seal_point, violated
from repro.core.pattern import Match, Pattern
from repro.core.purge import PurgePolicy, Purger
from repro.core.scan import SequenceScanner
from repro.core.construction import SequenceConstructor
from repro.core.stacks import Instance, NegativeStore, StackSet
from repro.core.stats import EngineStats


class LatePolicy(enum.Enum):
    """What to do with an event that violates the disorder bound K."""

    RAISE = "raise"  #: raise DisorderBoundViolation (strict deployments)
    DROP = "drop"  #: count it (stats.late_dropped) and ignore it
    PROCESS = "process"  #: best effort — process anyway; results involving
    #: already-purged state are silently incomplete


class EmissionRecord(NamedTuple):
    """Bookkeeping for one emitted match (drives the latency metrics)."""

    match: Match
    emitted_seq: int  #: engine arrival index at emission time
    emitted_clock: int  #: stream clock (max occurrence ts) at emission time


class Engine:
    """Common engine surface shared by every strategy in this library.

    Subclasses implement :meth:`_process_event` and may extend
    :meth:`_on_punctuation` / :meth:`_flush`.  The shared surface keeps
    the bench harness strategy-agnostic.
    """

    def __init__(self, pattern: Pattern):
        self.pattern = pattern
        self.stats = EngineStats()
        self.results: List[Match] = []
        self.emissions: List[EmissionRecord] = []
        self._arrival = 0
        self._closed = False

    # -- public API ------------------------------------------------------------

    def feed(self, element: StreamElement) -> List[Match]:
        """Process one stream element; returns matches emitted *now*."""
        if self._closed:
            raise EngineStateError(f"{type(self).__name__} is closed")
        if is_event(element):
            self._arrival += 1
            self.stats.events_in += 1
            emitted = self._process_event(element)
        else:
            self.stats.punctuations_in += 1
            emitted = self._on_punctuation(element)
        self.stats.note_state_size(self.state_size())
        return emitted

    def feed_many(self, elements: Iterable[StreamElement]) -> List[Match]:
        """Feed every element; returns all matches emitted during the run."""
        emitted: List[Match] = []
        for element in elements:
            emitted.extend(self.feed(element))
        return emitted

    def close(self) -> List[Match]:
        """End of stream: release everything still pending, then seal the engine."""
        if self._closed:
            return []
        emitted = self._flush()
        self._closed = True
        return emitted

    def run(self, elements: Iterable[StreamElement]) -> List[Match]:
        """feed_many + close in one call; returns the complete result list."""
        emitted = self.feed_many(elements)
        emitted.extend(self.close())
        return emitted

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def arrival_index(self) -> int:
        """Number of events fed so far (the engine's logical arrival clock)."""
        return self._arrival

    def result_set(self) -> Set[Tuple]:
        """Identity set of emitted matches, for oracle comparison."""
        return {m.key() for m in self.results}

    def state_size(self) -> int:
        """Total retained state in instances/events (memory experiments)."""
        raise NotImplementedError

    # -- subclass hooks ----------------------------------------------------------

    def _process_event(self, event: Event) -> List[Match]:
        raise NotImplementedError

    def _on_punctuation(self, punctuation: Punctuation) -> List[Match]:
        return []

    def _flush(self) -> List[Match]:
        return []

    def _emit(self, match: Match, clock_now: int) -> None:
        self.results.append(match)
        self.emissions.append(EmissionRecord(match, self._arrival, clock_now))
        self.stats.matches_emitted += 1


class OutOfOrderEngine(Engine):
    """Native out-of-order SSC engine (the paper's proposal).

    Parameters
    ----------
    pattern:
        The compiled query.
    k:
        Disorder bound: an event with occurrence time ``t`` is promised
        to arrive while ``max_seen_ts <= t + k``.  ``None`` disables the
        K promise (state is retained until punctuated or closed).
    purge:
        Purge schedule (default eager).  A fresh default is created per
        engine — policies hold schedule state and must not be shared.
    late_policy:
        Handling of K-promise violations (default DROP).
    optimize_scan / optimize_construction:
        The paper's CPU optimisations; disable for ablation (E6).
    """

    def __init__(
        self,
        pattern: Pattern,
        k: Optional[int] = None,
        purge: Optional[PurgePolicy] = None,
        late_policy: LatePolicy = LatePolicy.DROP,
        optimize_scan: bool = True,
        optimize_construction: bool = True,
    ):
        super().__init__(pattern)
        if not isinstance(late_policy, LatePolicy):
            raise ConfigurationError(f"late_policy must be a LatePolicy, got {late_policy!r}")
        self.clock = StreamClock(k)
        self.late_policy = late_policy
        self.purge_policy = purge if purge is not None else PurgePolicy.eager()
        self.stacks = StackSet(pattern.length)
        self.negatives = NegativeStore(pattern.negated_types)
        # Kleene elements live in their own ts-sorted store, consulted at
        # seal time exactly like negatives (same retention proof).
        self.kleene_store = NegativeStore(pattern.kleene_types)
        self.scanner = SequenceScanner(pattern, optimize=optimize_scan)
        self.constructor = SequenceConstructor(pattern, optimize=optimize_construction)
        self.pending = PendingMatches()
        self.purger = Purger(pattern.within, pattern.length)

    # -- state -------------------------------------------------------------------

    def state_size(self) -> int:
        return (
            self.stacks.size()
            + self.negatives.size()
            + self.kleene_store.size()
            + len(self.pending)
        )

    # -- processing ----------------------------------------------------------------

    def _process_event(self, event: Event) -> List[Match]:
        emitted: List[Match] = []
        if self.clock.is_late(event):
            if self.late_policy is LatePolicy.RAISE:
                raise DisorderBoundViolation(event, self.clock.now, self.clock.k or 0)
            if self.late_policy is LatePolicy.DROP:
                self.stats.late_dropped += 1
                return emitted
            # LatePolicy.PROCESS falls through: best effort.
            self.stats.late_dropped += 1

        if self.clock.observe(event):
            self.stats.out_of_order_events += 1

        if not self.scanner.relevant(event):
            self.stats.events_ignored += 1
        else:
            side_stored = False
            if self.negatives.relevant(event.etype):
                self.negatives.insert(event)
                side_stored = True
            if self.kleene_store.relevant(event.etype):
                self.kleene_store.insert(event)
                side_stored = True
            if side_stored:
                self.stats.events_admitted += 1
            steps = self.scanner.admissible_steps(event)
            if steps:
                if not side_stored:
                    self.stats.events_admitted += 1
                instance = Instance(event, self._arrival)
                for step_index in steps:
                    self.stacks[step_index].insert(instance)
                    if self.scanner.construction_feasible(
                        self.stacks, step_index, event, self.stats
                    ):
                        for match in self.constructor.construct(
                            self.stacks, step_index, instance, self.stats
                        ):
                            self._route(match, emitted)
            elif not side_stored:
                self.stats.events_ignored += 1

        self._release_ripe(emitted)
        if self.purge_policy.due():
            self.purger.run(
                self.clock.horizon(), self.stacks, self.negatives,
                self.stats, kleene=self.kleene_store,
            )
        return emitted

    def _on_punctuation(self, punctuation: Punctuation) -> List[Match]:
        self.clock.observe_punctuation(punctuation)
        emitted: List[Match] = []
        self._release_ripe(emitted)
        if self.purge_policy.due():
            self.purger.run(
                self.clock.horizon(), self.stacks, self.negatives,
                self.stats, kleene=self.kleene_store,
            )
        return emitted

    def _flush(self) -> List[Match]:
        emitted: List[Match] = []
        for match in self.pending.drain():
            self._decide(match, emitted)
        self.stats.matches_pending = 0
        return emitted

    # -- negation routing ----------------------------------------------------------

    def _route(self, match: Match, emitted: List[Match]) -> None:
        point = seal_point(self.pattern, match)
        if point <= self.clock.horizon():
            self._decide(match, emitted)
        else:
            self.pending.add(match, point)
            self.stats.matches_pending = len(self.pending)

    def _decide(self, match: Match, emitted: List[Match]) -> None:
        if self.pattern.has_negation and violated(
            self.pattern, match, self.negatives, self.stats
        ):
            self.stats.matches_cancelled += 1
            return
        if self.pattern.has_kleene:
            collections = collect_kleene(
                self.pattern, match, self.kleene_store, self.stats
            )
            if collections is None:
                self.stats.matches_cancelled += 1
                return
            match = match.with_collections(collections)
        self._emit(match, self.clock.now)
        emitted.append(match)

    def _release_ripe(self, emitted: List[Match]) -> None:
        horizon = self.clock.horizon()
        for match in self.pending.release(horizon):
            self._decide(match, emitted)
        self.stats.matches_pending = len(self.pending)

    def __repr__(self) -> str:
        k = "∞" if self.clock.k is None else self.clock.k
        return (
            f"{type(self).__name__}({self.pattern.name!r}, k={k}, "
            f"clock={self.clock.now}, state={self.state_size()}, "
            f"matches={len(self.results)})"
        )
