"""Query plans: the full operator pipeline around an engine.

The paper's algebra is  SS → SC → selection → transformation : the
engine (sequence scan + construction, with purge and negation inside)
produces matches; an optional *post-selection* filters them with
arbitrary conditions the ``WHERE`` stage could not express (e.g.
aggregates over the whole match); a *transformation* packages survivors
as composite events.

:class:`QueryPlan` wires one engine through those stages and exposes a
stream-in / composite-events-out surface.  :class:`MultiQueryPlan`
fans one input stream out to several plans — the usual deployment shape
(many registered pattern queries over one event bus) and the substrate
for the multi-query benchmarks.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from repro.core.engine import Engine
from repro.core.errors import ConfigurationError
from repro.core.event import Event, StreamElement
from repro.core.pattern import Match
from repro.core.transformation import CompositeEventFactory

MatchFilter = Callable[[Match], bool]


class QueryPlan:
    """engine → post-selection → transformation, as one feedable unit."""

    def __init__(
        self,
        engine: Engine,
        selection: Optional[MatchFilter] = None,
        transformation: Optional[CompositeEventFactory] = None,
    ):
        if selection is not None and not callable(selection):
            raise ConfigurationError("selection must be callable (Match -> bool)")
        self.engine = engine
        self.selection = selection
        self.transformation = transformation
        self.matches: List[Match] = []
        self.composites: List[Event] = []

    def feed(self, element: StreamElement) -> List[Event]:
        """Process one element; returns composite events produced now.

        When no transformation is configured the returned list is empty
        and results accumulate in :attr:`matches` only.
        """
        return self._absorb(self.engine.feed(element))

    def feed_many(self, elements: Iterable[StreamElement]) -> List[Event]:
        produced: List[Event] = []
        for element in elements:
            produced.extend(self.feed(element))
        return produced

    def close(self) -> List[Event]:
        """Flush the engine; returns composites from final emissions."""
        return self._absorb(self.engine.close())

    def run(self, elements: Iterable[StreamElement]) -> List[Event]:
        produced = self.feed_many(elements)
        produced.extend(self.close())
        return produced

    def _absorb(self, emitted: Sequence[Match]) -> List[Event]:
        produced: List[Event] = []
        for match in emitted:
            if self.selection is not None and not self.selection(match):
                continue
            self.matches.append(match)
            if self.transformation is not None:
                produced.append(self.transformation.build(match))
        self.composites.extend(produced)
        return produced


class MultiQueryPlan:
    """Broadcast one input stream to several :class:`QueryPlan` instances."""

    def __init__(self, plans: Sequence[QueryPlan]):
        if not plans:
            raise ConfigurationError("MultiQueryPlan needs at least one plan")
        self.plans = list(plans)

    def feed(self, element: StreamElement) -> List[Event]:
        produced: List[Event] = []
        for plan in self.plans:
            produced.extend(plan.feed(element))
        return produced

    def feed_many(self, elements: Iterable[StreamElement]) -> List[Event]:
        produced: List[Event] = []
        for element in elements:
            produced.extend(self.feed(element))
        return produced

    def close(self) -> List[Event]:
        produced: List[Event] = []
        for plan in self.plans:
            produced.extend(plan.close())
        return produced

    def run(self, elements: Iterable[StreamElement]) -> List[Event]:
        produced = self.feed_many(elements)
        produced.extend(self.close())
        return produced

    def state_size(self) -> int:
        """Combined retained state across all member engines."""
        return sum(plan.engine.state_size() for plan in self.plans)
