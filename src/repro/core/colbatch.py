"""Columnar (struct-of-arrays) event batches.

An :class:`EventBatch` stores N events as parallel columns — one
``ts`` array, one ``eid`` array, one type-code array over a small
type table, and one value column per attribute name with a presence
mask — instead of N :class:`~repro.core.event.Event` objects.  Two
consumers motivate the layout:

* **Cross-process transfer** (``repro.core.pipeline``): pickling a
  batch serialises a handful of flat arrays and lists instead of N
  constructor-rebuild tuples, so shipping events to worker processes
  costs a fraction of per-event pickling.
* **Vectorised predicate evaluation** (``repro.core.indexplan``):
  admission predicates compiled against columns read attribute values
  straight out of the arrays, materialising an ``Event`` only for rows
  that are actually admitted into engine state.

The representation is **lossless**: ``to_events(from_events(evs))``
reproduces the original events — identity (``eid``), duplicate
timestamps, missing attributes, heterogeneous and unhashable attribute
values all survive the round trip.  Timestamps and eids use compact
``array('q')`` storage when every value is a plain machine-size int
and fall back to plain lists otherwise (forged events with ``bool`` or
big-int timestamps keep their exact values; the engines' admission
screens still reject them downstream exactly as they would per-event).

Batches also carry optional **meta columns** (``meta`` dict) — per-row
sidecar data such as the pipeline router's global sequence numbers and
partition ranks.  Meta columns ride through :meth:`select`, the codec
and pickling, but are *not* part of the event model: ``to_events``
ignores them.
"""

from __future__ import annotations

import pickle
from array import array
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import StreamError
from repro.core.event import Event

#: Bump when the serialised column layout changes incompatibly.
BATCH_FORMAT = 1

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

#: ``(values, present)`` — ``present`` is a bytearray mask (1 = the row
#: has this attribute; ``values`` holds ``None`` at absent rows).
AttrColumn = Tuple[list, bytearray]


def _pack_ints(values: list):
    """``array('q')`` when every value is a plain in-range int, else the list.

    ``type(v) is int`` (not ``isinstance``) keeps ``bool`` out: an
    ``array`` would silently coerce ``True`` to ``1`` and break the
    exact round trip the codec promises.
    """
    for value in values:
        if type(value) is not int or not (_INT64_MIN <= value <= _INT64_MAX):
            return list(values)
    return array("q", values)


class BatchBuilder:
    """Incremental column-wise accumulator for one :class:`EventBatch`.

    The pipeline router appends admitted events (plus per-row meta
    values) as they arrive and calls :meth:`build` at flush boundaries;
    ``from_events`` is a one-shot wrapper around the same path.
    """

    __slots__ = ("_n", "_ts", "_eids", "_codes", "_types", "_type_index",
                 "_columns", "_meta_names", "_meta")

    def __init__(self, meta_names: Sequence[str] = ()):
        self._n = 0
        self._ts: List[int] = []
        self._eids: List[int] = []
        self._codes: List[int] = []
        self._types: List[str] = []
        self._type_index: Dict[str, int] = {}
        self._columns: Dict[str, AttrColumn] = {}
        self._meta_names = tuple(meta_names)
        self._meta: Dict[str, list] = {name: [] for name in self._meta_names}

    def __len__(self) -> int:
        return self._n

    def append(self, event: Event, meta_values: Sequence[Any] = ()) -> None:
        """Append one event row (and its meta values, positionally)."""
        if len(meta_values) != len(self._meta_names):
            raise StreamError(
                f"batch builder expects {len(self._meta_names)} meta values "
                f"({self._meta_names}), got {len(meta_values)}"
            )
        row = self._n
        etype = event.etype
        code = self._type_index.get(etype)
        if code is None:
            code = self._type_index[etype] = len(self._types)
            self._types.append(etype)
        self._ts.append(event.ts)
        self._eids.append(event.eid)
        self._codes.append(code)
        for name, value in event._attrs.items():
            column = self._columns.get(name)
            if column is None:
                column = self._columns[name] = ([None] * row, bytearray(row))
            column[0].append(value)
            column[1].append(1)
        for name, column in self._columns.items():
            if len(column[1]) <= row:
                column[0].append(None)
                column[1].append(0)
        for name, value in zip(self._meta_names, meta_values):
            self._meta[name].append(value)
        self._n = row + 1

    def build(self) -> "EventBatch":
        """Freeze the accumulated rows into an :class:`EventBatch`."""
        meta = {name: _pack_ints(values) for name, values in self._meta.items()}
        return EventBatch(
            self._n,
            _pack_ints(self._ts),
            _pack_ints(self._eids),
            _pack_ints(self._codes),
            tuple(self._types),
            dict(self._columns),
            meta,
        )


class EventBatch:
    """N events as parallel columns; see the module docstring.

    Construct through :meth:`from_events` or :class:`BatchBuilder` —
    the raw constructor trusts its arguments.
    """

    __slots__ = ("length", "ts", "eids", "codes", "type_table", "columns", "meta")

    def __init__(
        self,
        length: int,
        ts,
        eids,
        codes,
        type_table: Tuple[str, ...],
        columns: Dict[str, AttrColumn],
        meta: Optional[Dict[str, Any]] = None,
    ):
        self.length = length
        self.ts = ts
        self.eids = eids
        self.codes = codes
        self.type_table = type_table
        self.columns = columns
        self.meta = meta or {}

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_events(cls, events: Iterable[Event]) -> "EventBatch":
        """Columnarise *events* (losslessly; order preserved)."""
        builder = BatchBuilder()
        for event in events:
            if not isinstance(event, Event):
                raise StreamError(
                    f"EventBatch holds events only, got {type(event).__name__} "
                    "(punctuations travel out of band)"
                )
            builder.append(event)
        return builder.build()

    # -- row access --------------------------------------------------------------

    def __len__(self) -> int:
        return self.length

    def etype_at(self, i: int) -> str:
        return self.type_table[self.codes[i]]

    def attr_at(self, name: str, i: int) -> Tuple[bool, Any]:
        """``(present, value)`` for attribute *name* at row *i*."""
        column = self.columns.get(name)
        if column is None or not column[1][i]:
            return False, None
        return True, column[0][i]

    def event(self, i: int) -> Event:
        """Materialise row *i* as an :class:`Event` (original identity)."""
        attrs = {}
        for name, (values, present) in self.columns.items():
            if present[i]:
                attrs[name] = values[i]
        return _rebuild_event(
            self.type_table[self.codes[i]], self.ts[i], attrs, self.eids[i]
        )

    def to_events(self) -> List[Event]:
        """Materialise every row, in order."""
        return [self.event(i) for i in range(self.length)]

    # -- slicing / selection -----------------------------------------------------

    def view(self, start: int, stop: int) -> "EventBatchView":
        """Zero-copy window ``[start, stop)`` over this batch's columns."""
        start = max(0, min(start, self.length))
        stop = max(start, min(stop, self.length))
        return EventBatchView(self, start, stop)

    def select(self, rows: Sequence[int]) -> "EventBatch":
        """Gather *rows* (in the given order) into a new compact batch.

        Used by pipeline workers to split a mixed-partition batch into
        per-partition sub-batches; meta columns are gathered too.
        """
        ts = [self.ts[i] for i in rows]
        eids = [self.eids[i] for i in rows]
        table: List[str] = []
        index: Dict[str, int] = {}
        codes: List[int] = []
        for i in rows:
            etype = self.type_table[self.codes[i]]
            code = index.get(etype)
            if code is None:
                code = index[etype] = len(table)
                table.append(etype)
            codes.append(code)
        columns: Dict[str, AttrColumn] = {}
        for name, (values, present) in self.columns.items():
            columns[name] = (
                [values[i] for i in rows],
                bytearray(present[i] for i in rows),
            )
        meta = {
            name: _pack_ints([column[i] for i in rows])
            for name, column in self.meta.items()
        }
        return EventBatch(
            len(rows), _pack_ints(ts), _pack_ints(eids), _pack_ints(codes),
            tuple(table), columns, meta,
        )

    # -- codec ---------------------------------------------------------------------

    def _state(self) -> tuple:
        return (
            BATCH_FORMAT,
            self.length,
            self.ts,
            self.eids,
            self.codes,
            self.type_table,
            [
                (name, values, bytes(present))
                for name, (values, present) in self.columns.items()
            ],
            dict(self.meta),
        )

    @classmethod
    def _from_state(cls, state: tuple) -> "EventBatch":
        fmt, length, ts, eids, codes, table, columns, meta = state
        if fmt != BATCH_FORMAT:
            raise StreamError(
                f"event-batch format {fmt!r} is not supported "
                f"(this build reads format {BATCH_FORMAT})"
            )
        return cls(
            length, ts, eids, codes, tuple(table),
            {name: (values, bytearray(present)) for name, values, present in columns},
            meta,
        )

    def __reduce__(self):
        # Queue transfer pickles batches; route through the compact
        # state tuple so the wire cost is the codec's, not per-slot.
        return (EventBatch._from_state, (self._state(),))

    def to_bytes(self) -> bytes:
        """Compact byte encoding (the cross-process wire format)."""
        return pickle.dumps(self._state(), protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "EventBatch":
        """Inverse of :meth:`to_bytes`."""
        try:
            state = pickle.loads(blob)
        except Exception as exc:
            raise StreamError(f"event-batch blob is not readable: {exc}") from exc
        if not isinstance(state, tuple) or len(state) != 8:
            raise StreamError("event-batch blob has an unexpected shape")
        return cls._from_state(state)

    def __repr__(self) -> str:
        return (
            f"EventBatch(n={self.length}, types={len(self.type_table)}, "
            f"attrs={sorted(self.columns)})"
        )


class EventBatchView:
    """A zero-copy ``[start, stop)`` window over an :class:`EventBatch`.

    Shares the parent's column storage — no rows are copied.  Row
    indices are view-relative.  :meth:`materialize` produces a compact
    standalone batch when one is needed (e.g. for the wire).
    """

    __slots__ = ("base", "start", "stop")

    def __init__(self, base: EventBatch, start: int, stop: int):
        self.base = base
        self.start = start
        self.stop = stop

    def __len__(self) -> int:
        return self.stop - self.start

    def etype_at(self, i: int) -> str:
        return self.base.etype_at(self.start + i)

    def attr_at(self, name: str, i: int) -> Tuple[bool, Any]:
        return self.base.attr_at(name, self.start + i)

    def event(self, i: int) -> Event:
        return self.base.event(self.start + i)

    def to_events(self) -> List[Event]:
        return [self.base.event(i) for i in range(self.start, self.stop)]

    def materialize(self) -> EventBatch:
        """A standalone compact batch holding this window's rows."""
        return self.base.select(range(self.start, self.stop))

    def __repr__(self) -> str:
        return f"EventBatchView([{self.start}:{self.stop}] of {self.base!r})"


def _rebuild_event(etype: str, ts: int, attrs: Dict[str, Any], eid: int) -> Event:
    """Materialise an event row without re-validating or re-copying.

    Mirrors ``Event.__reduce__``'s constructor rebuild, but skips the
    constructor so forged rows (non-int ts — kept losslessly by the
    list fallback) round-trip instead of raising here; the engines'
    admission screens judge them exactly as they judge a fed object.
    """
    event = object.__new__(Event)
    object.__setattr__(event, "etype", etype)
    object.__setattr__(event, "ts", ts)
    object.__setattr__(event, "eid", eid)
    object.__setattr__(event, "_attrs", attrs)
    try:
        object.__setattr__(event, "_hash", hash((etype, ts, eid)))
    except TypeError:
        # Unhashable forged ts: match Event's lazy failure mode — the
        # hash slot stays unset and hashing raises on use, as it would
        # for any unhashable object.
        pass
    return event
