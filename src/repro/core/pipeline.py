"""Pipelined partitioned evaluation with epoch-ordered streaming output.

:class:`~repro.core.partition.ParallelPartitionedEngine` (PR 1) fans
partitions out over a pool, but only at ``close()`` — every partition
is buffered to end of stream and merged behind a global barrier, so it
has no mid-run output surface and its wall clock is bounded by the
slowest partition plus the full buffering phase.  This module adopts
the low-synchronisation ordered-parallelism design of Prasaad et al.
("Scaling Ordered Stream Processing on Shared-Memory Multicores",
PAPERS.md) on top of the columnar batches of
:mod:`repro.core.colbatch`:

* a **router** (the caller's thread) runs the same global-clock
  pre-pass as the serial :class:`PartitionedEngine` — lateness policy,
  key extraction, flow accounting — and appends admitted events to
  per-worker columnar batch builders, flushed to bounded queues;
* **N long-lived workers** (``multiprocessing`` processes by default,
  threads for debugging) each own a stable subset of partitions and run
  their sub-engines *incrementally* as batches arrive, publishing
  emissions tagged with provenance ``(seq, rank, j)``;
* the router's broadcast punctuations double as **epoch markers**: a
  worker acks epoch *e* after feeding the punctuation to its
  partitions, and the router releases epoch *e*'s emissions — in exact
  serial order — once every worker has acked it, so matches stream out
  mid-run instead of at ``close``.

**Exact serial-order reproduction.**  Every element the serial engine
would hand to a sub-engine (admitted event, broadcast punctuation, the
per-partition ``close``) is assigned a global sequence number by the
router; partitions get a dense **rank** in first-seen order (the serial
engine's dict-insertion order), and workers tag each emission with
``(seq, rank, j)`` — *j* the emission's index within that (element,
partition) feed.  Sorting an epoch's emissions by that triple
reconstructs the serial engine's flat emission interleave byte for
byte, at any worker count, on either backend: ``seq`` restores
arrival interleave across partitions, ``rank`` restores the serial
broadcast iteration order (creation order), ``j`` preserves
within-feed order.  Partition→worker placement is ``rank % workers`` —
a pure function of the input stream, never of ``hash()`` — so routing
is reproducible across interpreter launches.

**Determinism of release timing.**  Emissions are released only at
epoch boundaries, gated on acks — release *content and order* are a
pure function of the input stream, which the exactly-once replay
machinery (:mod:`repro.core.recovery`) depends on.  The pipeline runs
one epoch deep: while workers chew epoch *e*, the router is already
building *e + 1*; sealing *e* waits only for *e - 1*.

Emission *records* carry the router's clock at release time (an epoch
later than the serial engine's), exactly as the barrier engine's
records carry the end-of-stream clock — ``results`` content and order
are identical, latency metadata is the honest pipelined timing.
"""

from __future__ import annotations

import queue as queue_mod
from typing import Any, Dict, List, Optional, Tuple

from repro.core import snapshot as snapshots
from repro.core.colbatch import BatchBuilder, EventBatch
from repro.core.engine import LatePolicy, OutOfOrderEngine
from repro.core.errors import (
    ConfigurationError,
    DisorderBoundViolation,
    EngineStateError,
    SnapshotError,
)
from repro.core.event import Event, Punctuation
from repro.core.partition import (
    PartitionedEngine,
    require_picklable_pattern,
)
from repro.core.pattern import Match, Pattern
from repro.core.purge import PurgePolicy
from repro.core.stats import EngineStats
from repro.streams.punctuation import EpochLedger

#: Queue poll interval — every blocking get/put re-checks worker
#: liveness at this period so a dead worker surfaces as a descriptive
#: error instead of a hang.
_POLL = 1.0


class _PipelineRuntime:
    """Per-run transport and worker plumbing for the pipelined router.

    One bundle for everything that exists only while workers run:
    batch builders, worker processes/threads and their inboxes, the
    shared outbox (plus the multiprocessing context that created it),
    per-worker epoch acks, restore payloads awaiting adoption by a
    spawn, and the quiesce-barrier serial.  None of it is picklable
    and none of it is logical engine state: a snapshot *drains* the
    runtime through the sync barrier (builders flush, workers answer
    with their partition states) rather than capturing it, and a
    restore builds a fresh bundle whose acks floor at the restored
    epoch and whose pending payloads come from the snapshot's
    partitions.
    """

    def __init__(self, workers: int, acked_floor: int = -1):
        self.builders: List[Optional[BatchBuilder]] = [None] * workers
        self.procs: List = [None] * workers
        self.inboxes: List = [None] * workers
        self.outbox = None
        self.mp = None  # multiprocessing context, created with the outbox
        self.acked: List[int] = [acked_floor] * workers
        self.pending_init: List[Optional[list]] = [None] * workers  # restore
        self.sync_serial = 0


def _build_sub_engine(pattern, k, purge_mode, purge_interval, late_policy, index):
    """One partition's engine, exactly as ``PartitionedEngine`` builds it."""
    purge = None
    if purge_mode is not None:
        purge = PurgePolicy(purge_mode, purge_interval)
    return OutOfOrderEngine(
        pattern, k=k, purge=purge, late_policy=late_policy, index=index
    )


def _pipeline_worker(wid, inbox, outbox, pattern, k, purge_mode, purge_interval,
                     late_policy, index, instrument):
    """Long-lived worker loop: one stable subset of partitions.

    Protocol (inbox, FIFO):

    ``("init", subs, last_broadcast, epoch_base)``
        Restore ``subs`` = ``[(rank, state-or-None)]`` and adopt the
        router's broadcast watermark and current epoch.  Always first.
    ``("batch", EventBatch)``
        Mixed-partition columnar batch; meta columns ``seq`` (global
        element sequence) and ``rank`` (partition rank) attribute every
        row.  Rows are bucketed by rank and fed through the columnar
        fast path; emissions go out tagged ``(seq, rank, j)``.
    ``("punct", epoch, seq, ts)``
        Epoch marker: feed ``Punctuation(ts)`` to every partition in
        rank order (the serial broadcast order), ack the epoch.
    ``("sync", sync_id)``
        Quiesce point for snapshots: reply with every partition's
        serialised state.  All earlier inbox messages are already
        processed (FIFO), so the states are consistent with every
        emission published so far.
    ``("close", epoch, seq)``
        Close every partition in rank order, publish the final
        emissions plus per-partition stats (and the worker metrics
        registry when instrumented), and exit.

    Outbox messages are ``("out"|"epoch"|"sync"|"error", wid, ...)``;
    a single outbox is shared by all workers — per-producer FIFO order
    is preserved, which the router's release logic relies on.
    """
    try:
        subs: Dict[int, OutOfOrderEngine] = {}
        last_broadcast = -1
        epoch = 0
        registry = None
        if instrument:
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()

        def new_sub(rank: int) -> OutOfOrderEngine:
            sub = _build_sub_engine(
                pattern, k, purge_mode, purge_interval, late_policy, index
            )
            if registry is not None:
                sub.enable_observability(metrics=registry)
            # Catch the new partition up to the last broadcast, exactly
            # as the serial router does at partition creation (return
            # value discarded there too — a blank engine emits nothing).
            if last_broadcast >= 0:
                sub.feed(Punctuation(last_broadcast))
            subs[rank] = sub
            return sub

        while True:
            message = inbox.get()
            kind = message[0]
            if kind == "batch":
                batch: EventBatch = message[1]
                seqs = batch.meta["seq"]
                ranks = batch.meta["rank"]
                by_rank: Dict[int, List[int]] = {}
                for i in range(batch.length):
                    by_rank.setdefault(ranks[i], []).append(i)
                tagged: List[Tuple[int, int, int, dict]] = []
                # Ascending rank keeps within-worker work order stable;
                # output order is fixed by the tags, not by this loop.
                for rank in sorted(by_rank):
                    rows = by_rank[rank]
                    sub = subs.get(rank)
                    if sub is None:
                        sub = new_sub(rank)
                    part = batch.select(rows)
                    marks: List[int] = []
                    emissions = sub.feed_colbatch(part, marks=marks)
                    start = 0
                    for offset, mark in enumerate(marks):
                        seq = seqs[rows[offset]]
                        for j in range(start, mark):
                            tagged.append(
                                (seq, rank, j - start,
                                 snapshots.encode_match(emissions[j]))
                            )
                        start = mark
                if tagged:
                    outbox.put(("out", wid, epoch, tagged))
            elif kind == "punct":
                _, marker_epoch, seq, ts = message
                punctuation = Punctuation(ts)
                tagged = []
                for rank in sorted(subs):
                    emissions = subs[rank].feed(punctuation)
                    for j, match in enumerate(emissions):
                        tagged.append((seq, rank, j, snapshots.encode_match(match)))
                last_broadcast = max(last_broadcast, ts)
                outbox.put(("epoch", wid, marker_epoch, tagged, None))
                epoch = marker_epoch + 1
            elif kind == "sync":
                _, sync_id = message
                states = [(rank, subs[rank]._snapshot_state())
                          for rank in sorted(subs)]
                outbox.put(("sync", wid, sync_id, states))
            elif kind == "init":
                _, sub_states, last_broadcast, epoch = message
                for rank, state in sub_states:
                    sub = _build_sub_engine(
                        pattern, k, purge_mode, purge_interval, late_policy, index
                    )
                    if registry is not None:
                        sub.enable_observability(metrics=registry)
                    sub._restore_state(state)
                    subs[rank] = sub
            elif kind == "close":
                _, close_epoch, seq = message
                tagged = []
                stats_by_rank = []
                for rank in sorted(subs):
                    sub = subs[rank]
                    for j, match in enumerate(sub.close()):
                        tagged.append((seq, rank, j, snapshots.encode_match(match)))
                    stats_by_rank.append((rank, sub.stats.as_dict()))
                metrics_state = (
                    registry.snapshot_state() if registry is not None else None
                )
                outbox.put(
                    ("epoch", wid, close_epoch, tagged,
                     (stats_by_rank, metrics_state))
                )
                return
            else:
                raise RuntimeError(f"unknown pipeline message {kind!r}")
    except BaseException as exc:  # surface to the router, don't die silently
        import traceback

        try:
            outbox.put(("error", wid, repr(exc), traceback.format_exc()))
        except Exception:
            pass


class PipelinedPartitionedEngine(PartitionedEngine):
    """Partitioned evaluation over long-lived workers with epoch-ordered output.

    With ``workers=1`` this class **is** the serial
    :class:`PartitionedEngine` — every code path delegates, so traces
    are byte-identical.  With ``workers > 1`` the router/worker/merger
    pipeline of the module docstring runs; the sealed output (content
    *and* order) is byte-identical to the serial engine at any worker
    count on either backend, and emissions surface at epoch boundaries
    mid-run rather than at ``close``.

    Parameters
    ----------
    workers:
        Worker count.  ``1`` = serial fallback.
    backend:
        ``"process"`` (default: true parallelism, pattern must be
        picklable) or ``"thread"`` (no pickling constraints; GIL-bound,
        for debugging and tiny batches).
    batch_events:
        Router-side batch builder capacity: a worker's batch is flushed
        when it holds this many events (and always at epoch
        boundaries).  Larger batches amortise queue/pickling overhead
        at the cost of coarser latency.
    queue_depth:
        Bound of each worker's inbox, in messages.  The router blocks
        (pure backpressure — workers never block on their outbox, so
        this cannot deadlock) when a worker falls this far behind.

    Neither ``backend``, ``batch_events`` nor ``queue_depth`` affects
    results; only ``workers`` (serial vs. pipelined state shape) enters
    the snapshot fingerprint.
    """

    def __init__(
        self,
        pattern: Pattern,
        k: Optional[int] = None,
        purge: Optional[PurgePolicy] = None,
        late_policy: LatePolicy = LatePolicy.DROP,
        key: Optional[str] = None,
        punctuate_every: int = 64,
        index: bool = True,
        workers: int = 1,
        backend: str = "process",
        batch_events: int = 256,
        queue_depth: int = 8,
        speculative: bool = False,
        controller=None,
    ):
        super().__init__(
            pattern,
            k=k,
            purge=purge,
            late_policy=late_policy,
            key=key,
            punctuate_every=punctuate_every,
            index=index,
            speculative=speculative,
            controller=controller,
        )
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise ConfigurationError(f"workers must be an int >= 1, got {workers!r}")
        if workers > 1 and (speculative or controller is not None):
            raise ConfigurationError(
                "speculative/adaptive modes need live per-partition streams in "
                "the caller's process; use workers=1 (serial) for them"
            )
        if backend not in ("thread", "process"):
            raise ConfigurationError(
                f"backend must be 'thread' or 'process', got {backend!r}"
            )
        if batch_events < 1:
            raise ConfigurationError(
                f"batch_events must be >= 1, got {batch_events}"
            )
        if queue_depth < 1:
            raise ConfigurationError(f"queue_depth must be >= 1, got {queue_depth}")
        if backend == "process" and workers > 1:
            require_picklable_pattern(pattern, backend)
        self.workers = workers
        self.backend = backend
        self.batch_events = batch_events
        self.queue_depth = queue_depth
        # Router state (workers > 1).
        self._seq = 0  # global element sequence (events, markers, close)
        self._epoch = 0  # epoch currently being built
        self._released = -1  # highest epoch whose emissions surfaced
        self._ranks: Dict[Any, int] = {}  # key value -> dense first-seen rank
        self._blocks: Dict[int, List] = {}  # epoch -> tagged emissions
        self._worker_extras: List = []
        self._rt = _PipelineRuntime(workers)
        self.epoch_ledger = EpochLedger()  # seal diagnostics (epoch -> asserted ts)

    # -- worker lifecycle ----------------------------------------------------------

    def _spawned(self, slot: int) -> bool:
        return self._rt.procs[slot] is not None

    def _live_slots(self) -> List[int]:
        return [w for w in range(self.workers) if self._spawned(w)]

    def _ensure_outbox(self):
        if self._rt.outbox is None:
            if self.backend == "process":
                import multiprocessing

                self._rt.mp = multiprocessing.get_context()
                self._rt.outbox = self._rt.mp.Queue()
            else:
                self._rt.mp = None
                self._rt.outbox = queue_mod.Queue()
        return self._rt.outbox

    def _spawn(self, slot: int) -> None:
        outbox = self._ensure_outbox()
        instrument = self._obs is not None and self._obs.registry is not None
        if self.backend == "process":
            inbox = self._rt.mp.Queue(self.queue_depth)
        else:
            inbox = queue_mod.Queue(self.queue_depth)
        args = (
            slot, inbox, outbox, self.pattern, self.k, self._purge_mode,
            self._purge_interval, self.late_policy, self.index, instrument,
        )
        if self.backend == "process":
            proc = self._rt.mp.Process(
                target=_pipeline_worker, args=args, daemon=True
            )
        else:
            import threading

            proc = threading.Thread(
                target=_pipeline_worker, args=args, daemon=True
            )
        self._rt.inboxes[slot] = inbox
        self._rt.procs[slot] = proc
        proc.start()
        init_subs = self._rt.pending_init[slot] or []
        self._rt.pending_init[slot] = None
        # The init ack is implicit: a worker adopting epoch_base=e has,
        # by definition, nothing outstanding before e.
        inbox.put(("init", init_subs, self._last_broadcast, self._epoch))
        self._rt.acked[slot] = self._epoch - 1

    def _slot_for(self, value: Any) -> Tuple[int, int]:
        """(rank, slot) for a partition key value, assigning on first sight."""
        rank = self._ranks.get(value)
        if rank is None:
            rank = self._ranks[value] = len(self._ranks)
        return rank, rank % self.workers

    # -- queue plumbing with liveness checks -----------------------------------------

    def _worker_alive(self, slot: int) -> bool:
        proc = self._rt.procs[slot]
        return proc is not None and proc.is_alive()

    def _raise_worker_death(self, slot: int) -> None:
        raise EngineStateError(
            f"pipeline worker {slot} died without reporting an error "
            "(killed, or crashed before the error path); engine state is "
            "unrecoverable — restore from the last snapshot"
        )

    def _put(self, slot: int, message) -> None:
        inbox = self._rt.inboxes[slot]
        while True:
            try:
                inbox.put(message, timeout=_POLL)
                return
            except queue_mod.Full:
                self._drain()
                if not self._worker_alive(slot):
                    self._drain()
                    self._raise_worker_death(slot)

    def _drain(self) -> None:
        """Absorb pending outbox messages into blocks/acks; never releases."""
        outbox = self._rt.outbox
        if outbox is None:
            return
        while True:
            try:
                message = outbox.get(block=False)
            except queue_mod.Empty:
                return
            self._handle(message)

    def _handle(self, message) -> None:
        kind = message[0]
        if kind == "out":
            _, wid, epoch, tagged = message
            self._blocks.setdefault(epoch, []).extend(tagged)
        elif kind == "epoch":
            _, wid, epoch, tagged, extra = message
            self._blocks.setdefault(epoch, []).extend(tagged)
            self._rt.acked[wid] = epoch
            if extra is not None:
                self._worker_extras.append((wid, extra))
        elif kind == "error":
            _, wid, err, tb = message
            raise EngineStateError(
                f"pipeline worker {wid} failed: {err}\n--- worker traceback ---\n{tb}"
            )
        elif kind == "sync":
            # Handled by _collect_sync; arriving here means a stray
            # reply from a cancelled snapshot — ignore.
            pass

    def _await_epoch(self, target: int) -> None:
        """Block until every live worker has acked *target*."""
        if target < 0:
            self._drain()
            return
        while True:
            live = self._live_slots()
            if all(self._rt.acked[w] >= target for w in live):
                return
            try:
                message = self._rt.outbox.get(timeout=_POLL)
            except queue_mod.Empty:
                for w in live:
                    if self._rt.acked[w] < target and not self._worker_alive(w):
                        self._drain()
                        self._raise_worker_death(w)
                continue
            self._handle(message)

    # -- router ----------------------------------------------------------------------

    def _process_event(self, event: Event) -> List[Match]:
        if self.workers == 1:
            return PartitionedEngine._process_event(self, event)
        emitted: List[Match] = []
        if self.clock.is_late(event):
            self.stats.late_dropped += 1
            if self.late_policy is LatePolicy.RAISE:
                raise DisorderBoundViolation(event, self.clock.now, self.k or 0)
            if self.late_policy is LatePolicy.DROP:
                return emitted
        if self.clock.observe(event):
            self.stats.out_of_order_events += 1

        if event.etype in self.pattern.relevant_types:
            value = event.get(self.key)
            if value is None and self.key not in event:
                self.stats.events_ignored += 1
            else:
                rank, slot = self._slot_for(value)
                builder = self._rt.builders[slot]
                if builder is None:
                    builder = self._rt.builders[slot] = BatchBuilder(("seq", "rank"))
                seq = self._seq
                self._seq = seq + 1
                builder.append(event, (seq, rank))
                if len(builder) >= self.batch_events:
                    self._flush_builder(slot)
                self.stats.events_admitted += 1
        else:
            self.stats.events_ignored += 1

        self._since_punctuation += 1
        if self._since_punctuation >= self.punctuate_every:
            self._broadcast_horizon(emitted)
            self._since_punctuation = 0
        return emitted

    def _flush_builder(self, slot: int) -> None:
        builder = self._rt.builders[slot]
        if builder is None or len(builder) == 0:
            return
        self._rt.builders[slot] = None
        if not self._spawned(slot):
            self._spawn(slot)
        batch = builder.build()
        self._put(slot, ("batch", batch))
        self._note_queue_metrics(slot, batch.length)

    def _flush_all_builders(self) -> None:
        for slot in range(self.workers):
            self._flush_builder(slot)

    def _spawn_restored(self) -> None:
        """Wake every slot still dormant from a restore.

        Markers go to *all* live partitions (the serial broadcast), so
        dormant restored partitions must be live before any boundary.
        """
        for slot in range(self.workers):
            if self._rt.pending_init[slot] and not self._spawned(slot):
                self._spawn(slot)

    def _boundary(self, ts: int) -> List[Match]:
        """Seal the current epoch at punctuation time *ts*.

        Flush → marker → await the *previous* epoch → release it: the
        pipeline stays one epoch deep, and release timing is a pure
        function of the input stream (exactly-once replay depends on
        that).

        Spawns and builder flushes run *before* ``_last_broadcast``
        advances (callers update it after): a worker spawned here must
        adopt the watermark the flushed rows were admitted under, or it
        would catch new partitions up past events still in its inbox.
        """
        emitted: List[Match] = []
        self._spawn_restored()
        self._flush_all_builders()
        sealing = self._epoch
        self.epoch_ledger.seal(ts)
        seq = self._seq
        self._seq = seq + 1
        for slot in self._live_slots():
            self._put(slot, ("punct", sealing, seq, ts))
        self._epoch = sealing + 1
        self._await_epoch(sealing - 1)
        self._release_through(sealing - 1, emitted)
        self._note_epoch_metrics()
        return emitted

    def _broadcast_horizon(self, emitted: List[Match]) -> None:
        if self.workers == 1:
            PartitionedEngine._broadcast_horizon(self, emitted)
            return
        horizon = self.clock.horizon()
        if horizon <= self._last_broadcast or horizon < 0:
            return
        emitted.extend(self._boundary(horizon))
        self._last_broadcast = horizon

    def _on_punctuation(self, punctuation: Punctuation) -> List[Match]:
        if self.workers == 1:
            return PartitionedEngine._on_punctuation(self, punctuation)
        self.clock.observe_punctuation(punctuation)
        emitted = self._boundary(punctuation.ts)
        self._last_broadcast = max(self._last_broadcast, punctuation.ts)
        return emitted

    def _release_through(self, target: int, emitted: List[Match]) -> None:
        while self._released < target:
            epoch = self._released + 1
            tagged = self._blocks.pop(epoch, [])
            tagged.sort(key=lambda t: (t[0], t[1], t[2]))
            for _, _, _, encoded in tagged:
                self._surface(self._decode_match(encoded), emitted)
            self._released = epoch

    # -- close -----------------------------------------------------------------------

    def _flush(self) -> List[Match]:
        if self.workers == 1:
            return PartitionedEngine._flush(self)
        emitted: List[Match] = []
        self._flush_all_builders()
        closing = self._epoch
        seq = self._seq
        self._seq = seq + 1
        live = self._live_slots()
        for slot in live:
            self._put(slot, ("close", closing, seq))
        # Slots never spawned but holding restored partitions: close
        # them in-process — same engines, same rank order, same tags.
        for slot in range(self.workers):
            states = self._rt.pending_init[slot]
            if self._spawned(slot) or not states:
                continue
            self._rt.pending_init[slot] = None
            stats_by_rank = []
            tagged = self._blocks.setdefault(closing, [])
            for rank, state in sorted(states):
                sub = _build_sub_engine(
                    self.pattern, self.k, self._purge_mode,
                    self._purge_interval, self.late_policy, self.index,
                )
                sub._restore_state(state)
                for j, match in enumerate(sub.close()):
                    tagged.append((seq, rank, j, snapshots.encode_match(match)))
                stats_by_rank.append((rank, sub.stats.as_dict()))
            self._worker_extras.append((slot, (stats_by_rank, None)))
        self._await_epoch(closing)
        self._release_through(closing, emitted)
        self._join_workers()
        instrumented = self._obs is not None and self._obs.registry is not None
        if instrumented:
            self._obs.merge_worker_states(
                [extra[1] for _, extra in sorted(self._worker_extras)]
            )
        return emitted

    def _join_workers(self) -> None:
        for slot in self._live_slots():
            proc = self._rt.procs[slot]
            proc.join(timeout=10.0)
            self._rt.procs[slot] = None
            self._rt.inboxes[slot] = None

    # -- snapshot / restore ------------------------------------------------------------

    def _snapshot_config(self) -> dict:
        config = super()._snapshot_config()
        # Worker count is part of the deterministic state *shape*
        # (serial vs. pipelined router state, partition->slot layout);
        # backend and batch/queue sizing never affect results.
        config["pipeline_workers"] = self.workers
        return config

    def _snapshot_state(self) -> dict:
        if self.workers == 1:
            return PartitionedEngine._snapshot_state(self)
        # The runtime bundle (queues, processes, builders, acks) never
        # enters the payload — it is *drained* into ``partitions``
        # through the quiesce barrier and rebuilt lazily after
        # restore.  The omission is only sound while the post-quiesce
        # invariants hold, so verify them before sealing the snapshot:
        # every builder flushed, every spawned worker paired with an
        # inbox and acked exactly through the previous epoch, the
        # shared transport up whenever a worker is, and no restore
        # payload still parked on a slot that already spawned
        # (spawning adopts and clears it).
        runtime = self._rt
        partitions = self._quiesce(runtime)
        unflushed = [
            w for w, builder in enumerate(runtime.builders)
            if builder is not None and len(builder)
        ]
        spawned = [w for w, proc in enumerate(runtime.procs) if proc is not None]
        torn = [w for w in spawned if runtime.inboxes[w] is None]
        lagging = [w for w in spawned if runtime.acked[w] != self._epoch - 1]
        unadopted = [w for w in spawned if runtime.pending_init[w]]
        transport_down = bool(spawned) and (
            runtime.outbox is None
            or runtime.sync_serial < 1
            or (self.backend == "process" and runtime.mp is None)
        )
        if unflushed or torn or lagging or unadopted or transport_down:
            raise SnapshotError(
                "pipeline failed to quiesce for snapshot: "
                f"unflushed builders {unflushed}, torn worker transport "
                f"{torn}, workers off the epoch barrier {lagging}, "
                f"unadopted restore payloads {unadopted}, "
                f"shared transport down: {transport_down}"
            )
        state = self._base_state()
        state.update(
            {
                "clock": self.clock.snapshot_state(),
                "since_punctuation": self._since_punctuation,
                "last_broadcast": self._last_broadcast,
                "seq": self._seq,
                "epoch": self._epoch,
                "released": self._released,
                "ranks": list(self._ranks.items()),
                "partitions": partitions,
                "blocks": sorted(
                    (epoch, list(tagged)) for epoch, tagged in self._blocks.items()
                ),
                "epoch_ledger": self.epoch_ledger.snapshot_state(),
                # Stats of already-reaped workers (non-empty only when
                # snapshotting after close); losing them would skew
                # merged_substats on the restored side.
                "worker_extras": list(self._worker_extras),
            }
        )
        return state

    def _quiesce(self, rt: _PipelineRuntime) -> List[Tuple[int, dict]]:
        """Drain *rt* into [(rank, state)]: flush + sync-barrier every worker.

        After the barrier every emission for every element sent so far
        sits in ``self._blocks`` (per-producer FIFO: a worker's sync
        reply follows all its prior publishes), so blocks and partition
        states are mutually consistent.
        """
        self._flush_all_builders()
        partitions: List[Tuple[int, dict]] = []
        for slot in range(self.workers):
            if rt.pending_init[slot]:
                partitions.extend(rt.pending_init[slot])
        live = self._live_slots()
        if live:
            rt.sync_serial += 1
            sync_id = rt.sync_serial
            for slot in live:
                self._put(slot, ("sync", sync_id))
            waiting = set(live)
            while waiting:
                try:
                    message = rt.outbox.get(timeout=_POLL)
                except queue_mod.Empty:
                    for w in list(waiting):
                        if not self._worker_alive(w):
                            self._drain()
                            self._raise_worker_death(w)
                    continue
                if message[0] == "sync" and message[2] == sync_id:
                    partitions.extend(message[3])
                    waiting.discard(message[1])
                else:
                    self._handle(message)
        partitions.sort(key=lambda pair: pair[0])
        return partitions

    def _restore_state(self, state: dict) -> None:
        if self.workers == 1:
            PartitionedEngine._restore_state(self, state)
            return
        self._restore_base(state)
        self.clock.restore_state(state["clock"])
        self._since_punctuation = state["since_punctuation"]
        self._last_broadcast = state["last_broadcast"]
        self._seq = state["seq"]
        self._epoch = state["epoch"]
        self._released = state["released"]
        self._ranks = dict(state["ranks"])
        self._blocks = {epoch: list(tagged) for epoch, tagged in state["blocks"]}
        self.epoch_ledger = EpochLedger()
        if "epoch_ledger" in state:
            self.epoch_ledger.restore_state(state["epoch_ledger"])
        self._worker_extras = list(state.get("worker_extras", ()))
        # A fresh runtime bundle: any transport from this object's
        # pre-restore life belongs to the old worker set.  Acks floor
        # at the restored epoch (workers spawned from here adopt it),
        # and the snapshot's partitions park as pending payloads until
        # their slot spawns.
        self._rt = _PipelineRuntime(
            self.workers, acked_floor=state["epoch"] - 1
        )
        for rank, sub_state in state["partitions"]:
            slot = rank % self.workers
            if self._rt.pending_init[slot] is None:
                self._rt.pending_init[slot] = []
            self._rt.pending_init[slot].append((rank, sub_state))

    # -- diagnostics -------------------------------------------------------------------

    def partition_count(self) -> int:
        if self.workers == 1:
            return PartitionedEngine.partition_count(self)
        return len(self._ranks)

    def state_size(self) -> int:
        """Router-visible state: rows built but not yet flushed.

        Worker-held sub-engine state is deliberately not polled per
        element (that would serialise the pipeline); use
        :meth:`merged_substats` after ``close`` for the full picture.
        """
        if self.workers == 1:
            return PartitionedEngine.state_size(self)
        return sum(
            len(builder) for builder in self._rt.builders if builder is not None
        ) + sum(len(tagged) for tagged in self._blocks.values())

    def merged_substats(self) -> EngineStats:
        if self.workers == 1:
            return PartitionedEngine.merged_substats(self)
        merged = EngineStats()
        for _, (stats_by_rank, _) in sorted(self._worker_extras):
            for _, payload in stats_by_rank:
                stats = EngineStats()
                stats.restore_from(payload)
                merged.merge(stats)
        return merged

    # -- metrics ----------------------------------------------------------------------

    def _note_queue_metrics(self, slot: int, batch_length: int) -> None:
        if self._obs is None or self._obs.registry is None:
            return
        registry = self._obs.registry
        registry.counter(
            "repro_pipeline_batches_total",
            "Columnar batches shipped to pipeline workers.",
            labels={"worker": str(slot)},
        ).inc()
        registry.counter(
            "repro_pipeline_batch_events_total",
            "Events shipped to pipeline workers in columnar batches.",
            labels={"worker": str(slot)},
        ).inc(batch_length)
        inbox = self._rt.inboxes[slot]
        try:
            depth = inbox.qsize()
        except NotImplementedError:  # macOS mp.Queue
            return
        registry.gauge(
            "repro_pipeline_queue_depth",
            "Messages waiting in a pipeline worker's inbox (sampled at "
            "each batch send; sustained values near the queue bound mean "
            "that worker is the bottleneck).",
            labels={"worker": str(slot)},
        ).set(depth)

    def _note_epoch_metrics(self) -> None:
        if self._obs is None or self._obs.registry is None:
            return
        registry = self._obs.registry
        live = self._live_slots()
        lag = 0
        if live:
            lag = max(self._epoch - 1 - self._rt.acked[w] for w in live)
        registry.gauge(
            "repro_pipeline_epoch_lag",
            "Epochs the slowest worker trails the router by at boundary "
            "time (0-1 is healthy; growth means workers can't keep up).",
        ).set(lag)
        registry.gauge(
            "repro_pipeline_epoch",
            "Epochs sealed by the pipeline router so far.",
        ).set(self._epoch)
